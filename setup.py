"""Legacy setup shim.

This offline environment lacks the ``wheel`` package, so pip's PEP 660
editable-install path (which needs ``bdist_wheel``) fails.  With this shim,
``pip install -e . --no-build-isolation --no-use-pep517`` uses the classic
``setup.py develop`` route, which works without wheel.
"""

from setuptools import setup

setup()
