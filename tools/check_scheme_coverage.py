#!/usr/bin/env python3
"""Check that every registered migration scheme is exercised by tests.

Loads the scheme registry (``repro.core.scheme``), then scans every
``test_*.py``/``bench_*.py`` file under ``tests/`` and ``benchmarks/``
for string literals naming each canonical scheme.  A scheme that no test
mentions is a coverage hole: someone added ``@register_scheme`` without
wiring the scheme into the parity/comparison suites, so it would ship
without ever having been run through ``Migrator.migrate``.

Also fails when a test tree references a scheme name that is *not*
registered — usually a typo'd string that would only surface as a
runtime ``unknown migration scheme`` error.

Exit status 0 when every scheme is covered and every reference resolves,
1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("tests", "benchmarks")

#: String literals that look like scheme names: lowercase words joined
#: by dashes (matches every registry key; plain words like "tpm" too).
NAME_RE = re.compile(r"""["']([a-z][a-z0-9]*(?:-[a-z0-9]+)*)["']""")


def registered_schemes() -> tuple[set[str], set[str]]:
    """(canonical names, all registry keys incl. aliases)."""
    sys.path.insert(0, str(ROOT / "src"))
    from repro.core.scheme import scheme_names

    return set(scheme_names()), set(scheme_names(aliases=True))


def scan_literals() -> dict[str, set[str]]:
    """Scheme-shaped string literal -> files containing it."""
    found: dict[str, set[str]] = {}
    for dirname in SCAN_DIRS:
        for path in sorted((ROOT / dirname).rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            text = path.read_text(encoding="utf-8")
            rel = str(path.relative_to(ROOT))
            for match in NAME_RE.finditer(text):
                found.setdefault(match.group(1), set()).add(rel)
    return found


def main() -> int:
    canonical, all_keys = registered_schemes()
    literals = scan_literals()

    errors = []
    for name in sorted(canonical):
        if name not in literals:
            errors.append(
                f"scheme {name!r} is registered but no test or benchmark "
                f"under {'/'.join(SCAN_DIRS)} mentions it")
        else:
            files = sorted(literals[name])
            print(f"{name}: covered by {len(files)} file(s) "
                  f"(e.g. {files[0]})")

    # Literals that *look like* scheme usage but do not resolve.  Only
    # flag dashed names passed near a scheme= keyword to avoid false
    # positives on ordinary strings.
    usage_re = re.compile(
        r"""scheme\s*=\s*["']([a-z0-9-]+)["']""")
    for dirname in SCAN_DIRS:
        for path in sorted((ROOT / dirname).rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            for match in usage_re.finditer(
                    path.read_text(encoding="utf-8")):
                name = match.group(1)
                if name not in all_keys:
                    errors.append(
                        f"{path.relative_to(ROOT)}: scheme={name!r} "
                        f"is not a registered scheme or alias")

    for err in errors:
        print(f"ERROR: {err}")
    print(f"check_scheme_coverage: {len(canonical)} schemes, "
          f"{len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
