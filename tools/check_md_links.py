#!/usr/bin/env python3
"""Check that intra-repository Markdown links resolve.

Scans every ``*.md`` file under the repository root (skipping ``.git``
and other generated directories) for inline links and verifies that each
relative target exists on disk, resolved against the linking file's
directory.  External links (``http://``, ``https://``, ``mailto:``) and
pure-anchor links (``#section``) are ignored; an anchor suffix on a file
link is stripped before the existence check.

Exit status 0 when every link resolves, 1 otherwise (with one line per
broken link: ``file:line: broken link -> target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", ".benchmarks",
             "node_modules", ".claude"}

#: Inline Markdown links: ``[text](target)``, target captured lazily so
#: titles (``[t](x "title")``) keep only the path part.
LINK_RE = re.compile(r"\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def strip_fences(text: str) -> str:
    """Blank out fenced code blocks so example links are not checked."""
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            out.append("")
        else:
            out.append("" if fenced else line)
    return "\n".join(out)


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    text = strip_fences(path.read_text(encoding="utf-8"))
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = (path.parent / target_path).resolve()
            if not resolved.exists():
                rel = path.relative_to(root)
                errors.append(f"{rel}:{lineno}: broken link -> {target}")
    return errors


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 \
        else Path(__file__).resolve().parent.parent
    errors: list[str] = []
    nfiles = 0
    for path in iter_markdown_files(root):
        nfiles += 1
        errors.extend(check_file(path, root))
    for err in errors:
        print(err)
    print(f"check_md_links: {nfiles} files scanned, "
          f"{len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
