#!/usr/bin/env python3
"""Equivalence gate for simulator optimizations.

Hot-path work (engine fast lanes, cached bitmap popcounts, vectorized
dirty-marking, ...) is only admissible when it is *behavior-preserving*:
the optimized simulator must produce :class:`~repro.core.MigrationReport`
objects bit-identical to fixtures captured before the optimization.  This
script runs a fixed set of deterministic scenarios — all five registered
migration schemes plus one fault-injected incremental-retry run — and
compares every field of every report (floats included, exactly) against
``tests/fixtures/equivalence.json``.

Usage::

    PYTHONPATH=src python tools/check_equivalence.py            # verify
    PYTHONPATH=src python tools/check_equivalence.py --capture  # re-baseline

``--capture`` rewrites the fixture file from the current code and is only
legitimate when the simulation semantics intentionally changed (new
scheme behaviour, changed defaults) — never to paper over an optimization
that drifted.  The CI job runs the verify mode on every push.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

FIXTURE_PATH = os.path.join(os.path.dirname(__file__), "..", "tests",
                            "fixtures", "equivalence.json")

#: Bump when scenarios themselves change (forces an explicit re-capture).
SCENARIO_VERSION = 1


def _report_dict(report) -> dict:
    """A plain-JSON projection of a MigrationReport (exact floats)."""
    return dataclasses.asdict(report)


def _run_scheme(scheme: str) -> dict:
    from repro.analysis.experiments import run_baseline_experiment

    report, bed, _migration = run_baseline_experiment(
        scheme, workload="specweb", scale=0.01, seed=0)
    return {"report": _report_dict(report),
            "final_now": bed.env.now,
            "workload_bytes": bed.workload.bytes_processed}


def _run_fault_retry() -> dict:
    from repro.analysis.experiments import build_testbed
    from repro.core import MigrationRetrier
    from repro.faults import FaultInjector, FaultPlan

    bed = build_testbed("specweb", scale=0.01, seed=0)
    bed.start_workload()
    bed.run_for(5.0)
    # Kill the first attempt mid disk pre-copy; the retry resumes from the
    # surviving tracking bitmap (incremental), so the fixture covers the
    # failure-teardown path *and* the IM resume path.
    plan = (FaultPlan(send_timeout=0.05)
            .blackout(duration=0.5, phase="precopy-disk", offset=0.05))
    FaultInjector(bed.env, plan).inject(bed.migrator)
    retrier = MigrationRetrier(bed.migrator, max_attempts=3,
                               initial_backoff=0.3, incremental=True)
    proc = retrier.migrate_process(bed.domain, bed.destination,
                                   workload_name=bed.workload.name)
    report = bed.env.run(until=proc)
    if report.attempts < 2:
        raise AssertionError(
            "fault-retry scenario did not actually fail+retry "
            f"(attempts={report.attempts}); fixture would be meaningless")
    return {"report": _report_dict(report),
            "final_now": bed.env.now,
            "workload_bytes": bed.workload.bytes_processed}


#: The sharded-equivalence wave: (VM name, destination host name).
#: Two contending intra-rack flows per rack plus one cross-rack
#: migration that transplants between shards through the core.
_SHARDED_MOVES = (
    ("vm-host00-0", "host01"),
    ("vm-host00-1", "host01"),
    ("vm-host03-0", "host04"),
    ("vm-host03-1", "host04"),
    ("vm-host02-0", "host05"),
)


def _ledger(topology) -> dict:
    """Directional link name -> bytes sent (non-zero links only)."""
    ledger = {}
    for duplex in topology.links.values():
        for link in (duplex.forward, duplex.backward):
            if link.bytes_sent:
                ledger[link.name] = ledger.get(link.name, 0) + link.bytes_sent
    return dict(sorted(ledger.items()))


def _run_sharded_cluster() -> dict:
    """The same 2-rack migration wave on the monolithic engine and on
    the sharded per-rack engine; asserts reports and byte ledgers are
    identical, then fixtures the (shared) result."""
    from repro.cluster import build_cluster, build_sharded_cluster

    bed = build_cluster(nhosts=6, vms_per_host=2, wiring="rack",
                        rack_size=3, nblocks=512, npages=64,
                        max_concurrent=8)
    by_name = {domain.name: domain for domain in bed.domains}
    mono_jobs = [bed.scheduler.submit(by_name[vm], bed.host(dest))
                 for vm, dest in _SHARDED_MOVES]
    bed.scheduler.drain(mono_jobs)
    mono = {"reports": [_report_dict(job.report) for job in mono_jobs],
            "makespan": bed.scheduler.makespan(mono_jobs),
            "ledger": _ledger(bed.migrator.topology)}

    cluster = build_sharded_cluster(nracks=2, hosts_per_rack=3,
                                    vms_per_host=2, nblocks=512,
                                    npages=64, max_concurrent=8)
    by_name = {domain.name: domain for domain in cluster.domains}
    shard_jobs = [cluster.submit(by_name[vm], dest)
                  for vm, dest in _SHARDED_MOVES]
    cluster.drain(shard_jobs)
    cluster.assert_conserved()
    sharded = {"reports": [_report_dict(job.report) for job in shard_jobs],
               "makespan": cluster.makespan(shard_jobs),
               "ledger": cluster.link_ledger()}

    diffs: list = []
    _diff("sharded-vs-mono", json.loads(json.dumps(mono)),
          json.loads(json.dumps(sharded)), diffs)
    if diffs:
        raise AssertionError(
            "sharded engine diverged from monolithic on the fixture "
            "wave:\n    " + "\n    ".join(diffs[:20]))
    return mono


def _run_sharded_parallel() -> dict:
    """The same migration wave on two identical sharded clusters, one
    drained inline and one with forked workers; asserts job outcomes,
    makespan and byte ledgers are identical, then fixtures the (shared)
    result.  On platforms without fork the parallel side degrades to
    inline execution with identical semantics, so the fixture still
    verifies."""
    from repro.cluster import build_sharded_cluster

    def run_wave(workers: str) -> dict:
        cluster = build_sharded_cluster(nracks=2, hosts_per_rack=3,
                                        vms_per_host=2, nblocks=512,
                                        npages=64, max_concurrent=8,
                                        workers=workers)
        by_name = {domain.name: domain for domain in cluster.domains}
        jobs = [cluster.submit(by_name[vm], dest)
                for vm, dest in _SHARDED_MOVES]
        if workers == "fork":
            cluster.drain(jobs, nworkers=2)
        else:
            cluster.drain(jobs)
            cluster.assert_conserved()
        return {"reports": [_report_dict(job.report) for job in jobs],
                "makespan": cluster.makespan(jobs),
                "ledger": cluster.link_ledger()}

    inline = run_wave("inline")
    parallel = run_wave("fork")
    diffs: list = []
    _diff("parallel-vs-inline", json.loads(json.dumps(inline)),
          json.loads(json.dumps(parallel)), diffs)
    if diffs:
        raise AssertionError(
            "forked drain diverged from inline on the fixture wave:\n    "
            + "\n    ".join(diffs[:20]))
    return inline


def scenarios() -> dict:
    """Name -> thunk for every fixture scenario (deterministic order)."""
    from repro.analysis.experiments import BASELINE_SCHEMES

    table = {}
    for scheme in BASELINE_SCHEMES:
        table[f"scheme:{scheme}"] = (
            lambda scheme=scheme: _run_scheme(scheme))
    table["fault-retry:incremental"] = _run_fault_retry
    table["cluster:sharded-vs-monolithic"] = _run_sharded_cluster
    table["cluster:sharded-parallel-vs-inline"] = _run_sharded_parallel
    return table


def _diff(path: str, expected, actual, out: list) -> None:
    """Collect human-readable leaf differences between two JSON trees."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                out.append(f"{path}.{key}: unexpected (={actual[key]!r})")
            elif key not in actual:
                out.append(f"{path}.{key}: missing (was {expected[key]!r})")
            else:
                _diff(f"{path}.{key}", expected[key], actual[key], out)
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            out.append(f"{path}: length {len(expected)} -> {len(actual)}")
        for i, (e, a) in enumerate(zip(expected, actual)):
            _diff(f"{path}[{i}]", e, a, out)
    elif expected != actual:
        out.append(f"{path}: {expected!r} -> {actual!r}")


def capture(path: str) -> int:
    results = {}
    for name, thunk in scenarios().items():
        print(f"capture {name} ...", flush=True)
        results[name] = thunk()
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump({"version": SCENARIO_VERSION, "scenarios": results},
                  fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(results)} reference scenarios to {path}")
    return 0


def verify(path: str, max_diffs: int = 20) -> int:
    if not os.path.exists(path):
        print(f"ERROR: no fixture file at {path}; "
              "run with --capture on known-good code first")
        return 2
    with open(path) as fh:
        fixture = json.load(fh)
    if fixture.get("version") != SCENARIO_VERSION:
        print(f"ERROR: fixture version {fixture.get('version')} != "
              f"scenario version {SCENARIO_VERSION}; re-capture needed")
        return 2

    failed = []
    for name, thunk in scenarios().items():
        expected = fixture["scenarios"].get(name)
        if expected is None:
            print(f"FAIL {name}: not in fixture file")
            failed.append(name)
            continue
        actual = thunk()
        # Round-trip through JSON so float representation is compared on
        # identical footing with the stored fixture.
        actual = json.loads(json.dumps(actual))
        diffs: list = []
        _diff(name, expected, actual, diffs)
        if diffs:
            print(f"FAIL {name}: {len(diffs)} field(s) differ")
            for line in diffs[:max_diffs]:
                print(f"    {line}")
            if len(diffs) > max_diffs:
                print(f"    ... and {len(diffs) - max_diffs} more")
            failed.append(name)
        else:
            print(f"PASS {name}")

    if failed:
        print(f"\nEQUIVALENCE BROKEN: {len(failed)}/{len(fixture['scenarios'])} "
              f"scenario(s) diverged: {', '.join(failed)}")
        return 1
    print(f"\nAll {len(fixture['scenarios'])} scenarios bit-identical "
          "to the reference fixtures.")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--capture", action="store_true",
                        help="rewrite the reference fixtures from current "
                             "code (only when semantics intentionally change)")
    parser.add_argument("--fixture", default=FIXTURE_PATH,
                        help="fixture file path (default: %(default)s)")
    args = parser.parse_args(argv)
    if args.capture:
        return capture(args.fixture)
    return verify(args.fixture)


if __name__ == "__main__":
    sys.exit(main())
