#!/usr/bin/env python3
"""Chaos gate: seeded fault schedules against the recovery invariants.

Runs randomized-but-reproducible chaos schedules (partitions, link
flaps, host crashes — all drawn from ``numpy.random.default_rng(seed)``)
over a migration wave on both the monolithic and sharded cluster
engines, with retry + health tracking enabled, and checks the four
invariants that must survive any schedule:

1. per-link byte conservation (channel ledgers + aborted in-flight
   sends == wire counters);
2. every domain ends attached to exactly one host, nothing stays in
   flight, every terminal failure is dead-lettered;
3. recovered tracking bitmaps cover every still-pending block
   (an incremental retry would lose nothing);
4. no domain is stranded on a sharded surrogate host.

Usage::

    PYTHONPATH=src python tools/check_chaos.py            # fixed CI seeds
    PYTHONPATH=src python tools/check_chaos.py --smoke    # 2 seeds, fast
    PYTHONPATH=src python tools/check_chaos.py --seeds 0-31

On any violation the offending seed and mode are printed so the failure
replays exactly: ``repro-sim chaos --seed N --mode M``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

#: The fixed seeds CI runs on every push (both modes each).
CI_SEEDS = (0, 1, 2, 3)
SMOKE_SEEDS = (0, 1)


def _parse_seeds(spec: str) -> list[int]:
    """``"0-31"`` or ``"0,3,7"`` or a single ``"5"``."""
    if "-" in spec and "," not in spec:
        lo, hi = spec.split("-", 1)
        return list(range(int(lo), int(hi) + 1))
    return [int(s) for s in spec.split(",") if s]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", default=None, metavar="SPEC",
                        help="seeds to run: '0-31', '0,3,7' or '5' "
                             "(default: the fixed CI set "
                             f"{','.join(map(str, CI_SEEDS))})")
    parser.add_argument("--smoke", action="store_true",
                        help=f"fast pass: seeds "
                             f"{','.join(map(str, SMOKE_SEEDS))} only")
    parser.add_argument("--mode", choices=("monolithic", "sharded", "both"),
                        default="both", help="engine(s) (default: both)")
    args = parser.parse_args(argv)

    from repro.cluster.chaos import ChaosConfig, run_chaos

    if args.seeds is not None:
        seeds = _parse_seeds(args.seeds)
    elif args.smoke:
        seeds = list(SMOKE_SEEDS)
    else:
        seeds = list(CI_SEEDS)
    modes = (("monolithic", "sharded") if args.mode == "both"
             else (args.mode,))

    started = time.time()
    failures: list[tuple[str, int]] = []
    runs = 0
    for mode in modes:
        for seed in seeds:
            report = run_chaos(ChaosConfig(seed=seed, mode=mode))
            runs += 1
            print(("PASS " if report.ok else "FAIL ") + report.summary())
            if not report.ok:
                failures.append((mode, seed))
    elapsed = time.time() - started
    if failures:
        print(f"\n{len(failures)}/{runs} chaos runs violated invariants:")
        for mode, seed in failures:
            print(f"  replay: PYTHONPATH=src python -m repro.cli chaos "
                  f"--seed {seed} --mode {mode}")
        return 1
    print(f"\nAll {runs} chaos runs green ({elapsed:.1f}s).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
