"""Adaptive transfer stack ablation — delta cache, multifd, auto-converge.

Sweeps the three ``MigrationConfig`` transfer knobs (see
``docs/TRANSFER.md``) over the paper's Table-I workloads, one knob at a
time plus all together, and prints the ablation table EXPERIMENTS.md
quotes:

* **delta** — an XBZRLE-style cache sized to the whole device, so every
  re-dirtied block re-sends as a small delta.  Helps exactly the
  rewrite-heavy workloads (Bonnie++, kernel build); streaming writers
  (video) never re-send and gain nothing.
* **multifd** — 4 striped sub-channels over the same wire.  Byte totals
  are unchanged (the NIC is the bottleneck, not per-channel CPU here);
  every run is checked against the per-link byte-conservation audit.
* **auto-converge** — guest write throttling when the dirty rate outruns
  the link.  A no-op on workloads that already converge; the second
  table runs the diabolical case (Bonnie++ behind a thin 8 MB/s link)
  where pre-copy cannot converge without it.

Run standalone::

    python benchmarks/bench_transfer.py            # full geometry
    python benchmarks/bench_transfer.py --smoke    # CI-sized, seconds

Not a pytest module: the sweep *is* the benchmark, and the convergence
contrast only makes sense printed side by side.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import format_table  # noqa: E402
from repro.analysis.experiments import (FULL_DISK_BLOCKS,  # noqa: E402
                                        build_testbed)
from repro.cluster import audit_link_bytes  # noqa: E402
from repro.core import MigrationConfig  # noqa: E402
from repro.units import MB, MiB, fmt_time  # noqa: E402

#: Thin link that makes Bonnie++ diabolical: the workload re-dirties
#: blocks faster than 8 MB/s can drain them, so plain pre-copy hits the
#: proactive stop with most of its working set still dirty.
DIABOLICAL_LINK = 8 * MB


def device_cache_mb(scale: float) -> float:
    """Delta cache sized to cover the whole (scaled) device."""
    nblocks = max(int(FULL_DISK_BLOCKS * scale), 256)
    return nblocks * 4096 / MiB


def variants(scale: float) -> dict[str, dict]:
    cache = device_cache_mb(scale)
    return {
        "baseline": {},
        "delta": dict(delta_cache_mb=cache),
        "multifd": dict(multifd_channels=4),
        "auto-converge": dict(auto_converge=True),
        "all": dict(delta_cache_mb=cache, multifd_channels=4,
                    auto_converge=True),
    }


def migrate_once(workload: str, scale: float, overrides: dict,
                 link_bandwidth: float | None = None, warmup: float = 20.0):
    """One warmed-up migration; returns (report, config)."""
    cfg = MigrationConfig(**overrides)
    kwargs = {} if link_bandwidth is None else dict(
        link_bandwidth=link_bandwidth)
    bed = build_testbed(workload, scale=scale, config=cfg, **kwargs)
    bed.start_workload()
    bed.run_for(warmup)
    report = bed.migrate()
    if not report.consistency_verified:
        raise AssertionError(
            f"{workload}/{overrides}: destination not consistent")
    bad = [audit for audit in audit_link_bytes(bed.migrator.migrations)
           if not audit.conserved]
    if bad:
        raise AssertionError(f"byte accounting not conserved: {bad}")
    return report, cfg


def ablation_table(workloads, scale: float) -> None:
    rows = []
    for workload in workloads:
        for name, overrides in variants(scale).items():
            report, _cfg = migrate_once(workload, scale, overrides)
            saved = (report.extra.get("delta_disk", {}).get("bytes_saved", 0)
                     + report.extra.get("delta_mem", {}).get("bytes_saved",
                                                             0))
            rows.append([
                workload,
                name,
                fmt_time(report.total_migration_time),
                fmt_time(report.downtime),
                f"{report.migrated_bytes / 1e6:.1f}",
                f"{saved / 1e6:.2f}" if saved else "-",
                report.extra.get("auto_converge_steps", "-"),
            ])
        rows.append(None)  # separator between workloads
    rows = [row for row in rows if row is not None]
    print(format_table(
        ["workload", "variant", "migration time", "downtime", "moved MB",
         "delta-saved MB", "throttle steps"],
        rows,
        title=f"Transfer-stack ablation (scale={scale}, "
              f"every run byte-audited)"))


def convergence_table(scale: float) -> None:
    """Diabolical Bonnie++ behind a thin link: only auto-converge makes
    the pre-copy converge; plain pre-copy proactively stops and hands the
    working set to post-copy."""
    rows = []
    for auto in (False, True):
        report, cfg = migrate_once("bonnie", scale, dict(auto_converge=auto),
                                   link_bandwidth=DIABOLICAL_LINK)
        last = report.disk_iterations[-1]
        converged = last.dirty_at_end <= cfg.disk_dirty_threshold_blocks
        if auto and not converged:
            raise AssertionError(
                "auto-converge failed to converge the diabolical workload")
        if not auto and converged:
            raise AssertionError(
                "diabolical workload converged without throttling — "
                "the contrast below is meaningless")
        rows.append([
            "on" if auto else "off",
            len(report.disk_iterations),
            last.dirty_at_end,
            "yes" if converged else "no (post-copy)",
            report.extra.get("auto_converge_steps", "-"),
            report.extra.get("auto_converge_final_factor", "-"),
            fmt_time(report.total_migration_time),
            fmt_time(report.downtime),
        ])
    print(format_table(
        ["auto-converge", "iterations", "final dirty", "converged",
         "throttle steps", "final factor", "migration time", "downtime"],
        rows,
        title=f"Diabolical convergence: bonnie @ "
              f"{DIABOLICAL_LINK / MB:.0f} MB/s link (scale={scale}, "
              f"dirty threshold={MigrationConfig().disk_dirty_threshold_blocks})"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized geometry (seconds instead of minutes)")
    args = parser.parse_args(argv)

    if args.smoke:
        scale, workloads = 0.005, ("specweb", "bonnie")
    else:
        scale, workloads = 0.02, ("specweb", "video", "bonnie",
                                  "kernelbuild")

    ablation_table(workloads, scale)
    print()
    convergence_table(scale)
    print("\nAll runs: destination verified consistent, per-link byte "
          "accounting conserved (multifd stripes included).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
