"""Wall-clock performance suite for the simulator itself.

Unlike the ``bench_*`` modules (which measure *simulated* quantities —
downtime, migrated bytes, makespan), this package measures how fast the
simulator chews through events on the host machine.  Results accumulate
in ``BENCH_PERF.json`` at the repo root; see ``docs/PERFORMANCE.md``.
"""
