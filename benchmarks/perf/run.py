#!/usr/bin/env python3
"""Run the wall-clock perf suite and maintain ``BENCH_PERF.json``.

Modes::

    python benchmarks/perf/run.py                       # measure + print
    python benchmarks/perf/run.py --record optimized    # + write to JSON
    python benchmarks/perf/run.py --smoke --check       # CI regression gate
    python benchmarks/perf/run.py --merge scale_1k_host # update one row

``BENCH_PERF.json`` (repo root) keeps one section per label
(``baseline`` = pre-overhaul engine, ``optimized`` = current code), each
with ``full`` and ``smoke`` geometry results, so the perf trajectory of
the repo is tracked in-tree from this PR forward.

``--check`` compares the measured events/sec of every scenario against
the committed ``optimized`` section (same geometry) and exits non-zero on
a regression beyond ``--tolerance`` (default 25%).  Wall-clock numbers
are machine-dependent; the events/sec ratio against the committed
reference is still the best cheap tripwire for "someone re-introduced an
O(n) scan into the event loop".  Set ``REPRO_PERF_NO_FAIL=1`` to demote
check failures to warnings (e.g. on known-slow shared runners).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from time import perf_counter

sys.path.insert(0, os.path.dirname(__file__))

from scenarios import SCENARIOS  # noqa: E402

DEFAULT_JSON = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_PERF.json")
SCHEMA = 1
DEFAULT_TOLERANCE = 0.25


def run_suite(smoke: bool, repeat: int, only=None) -> dict:
    """Best-of-``repeat`` wall-clock for every scenario."""
    results = {}
    for name, fn in SCENARIOS.items():
        if only and name not in only:
            continue
        best = None
        for _ in range(repeat):
            res = fn(smoke=smoke)
            if best is None or res["wall_s"] < best["wall_s"]:
                best = res
        best["repeats"] = repeat
        results[name] = best
        print(f"  {name:>14}: {best['wall_s']*1e3:9.1f} ms  "
              f"{best['events']:>9} events  "
              f"{best['events_per_sec']/1e3:8.1f}k ev/s", flush=True)
    return results


def load_record(path: str) -> dict:
    if os.path.exists(path):
        with open(path) as fh:
            return json.load(fh)
    return {"schema": SCHEMA, "machine": {}, }


def save_record(path: str, record: dict) -> None:
    with open(path, "w") as fh:
        json.dump(record, fh, indent=1, sort_keys=True)
        fh.write("\n")


def check(results: dict, record: dict, mode: str, tolerance: float) -> int:
    """Fail on events/sec regression beyond tolerance vs committed ref."""
    reference = (record.get("optimized") or record.get("baseline") or {})
    reference = reference.get(mode, {})
    if not reference:
        print(f"check: no committed reference for mode {mode!r}; skipping")
        return 0
    failures = []
    for name, res in results.items():
        ref = reference.get(name)
        if ref is None:
            continue
        ratio = res["events_per_sec"] / ref["events_per_sec"]
        verdict = "ok" if ratio >= 1 - tolerance else "REGRESSION"
        print(f"  check {name:>14}: {ratio:6.2f}x of committed "
              f"{ref['events_per_sec']/1e3:.1f}k ev/s  [{verdict}]")
        if ratio < 1 - tolerance:
            failures.append(name)
    if failures:
        msg = (f"events/sec regressed >"
               f"{tolerance:.0%} on: {', '.join(failures)}")
        if os.environ.get("REPRO_PERF_NO_FAIL"):
            print(f"WARNING (not failing, REPRO_PERF_NO_FAIL set): {msg}")
            return 0
        print(f"FAIL: {msg}")
        return 1
    print("check: all scenarios within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized geometry (seconds)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="best-of-N wall clock (default: 3)")
    parser.add_argument("--only", action="append",
                        choices=sorted(SCENARIOS),
                        help="run a subset of scenarios")
    parser.add_argument("--record", metavar="LABEL",
                        help="store results under this label "
                             "(e.g. baseline, optimized) in the JSON file")
    parser.add_argument("--merge", action="append", metavar="SCENARIO",
                        choices=sorted(SCENARIOS),
                        help="run just this scenario (repeatable) and merge "
                             "its row into the recorded label, preserving "
                             "every other scenario's committed numbers")
    parser.add_argument("--json", default=DEFAULT_JSON,
                        help="record file (default: BENCH_PERF.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against committed reference; exit "
                             "non-zero on regression")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed events/sec drop (default: 0.25)")
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    only = args.only
    if args.merge:
        only = sorted(set(only or []) | set(args.merge))
    print(f"perf suite ({mode}, best of {args.repeat}):")
    start = perf_counter()
    results = run_suite(args.smoke, args.repeat, only=only)
    print(f"suite wall time: {perf_counter() - start:.1f}s")

    status = 0
    record = load_record(args.json)
    if args.check:
        status = check(results, record, mode, args.tolerance)
    if args.merge:
        # Row-level update: only the scenarios just measured are touched,
        # so a new scenario can be added (or one refreshed) without
        # re-measuring — and silently clobbering — the whole suite.
        label = args.record or "optimized"
        record.setdefault("machine", {}).update(
            python=platform.python_version(), platform=platform.platform())
        record.setdefault(label, {}).setdefault(mode, {}).update(results)
        save_record(args.json, record)
        print(f"merged {', '.join(sorted(results))} into "
              f"{label!r}/{mode} in {args.json}")
    elif args.record:
        record.setdefault("machine", {}).update(
            python=platform.python_version(), platform=platform.platform())
        record.setdefault(args.record, {})[mode] = results
        save_record(args.json, record)
        print(f"recorded {mode} results as {args.record!r} in {args.json}")
    return status


if __name__ == "__main__":
    sys.exit(main())
