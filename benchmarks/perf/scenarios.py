"""The three wall-clock scenarios tracked in ``BENCH_PERF.json``.

Each scenario returns a plain dict with at least ``wall_s`` (host
seconds), ``events`` (engine events processed) and ``events_per_sec``.
All scenarios are deterministic in *simulated* behaviour; only the wall
clock varies run to run, which is why the runner takes best-of-N.

* ``engine`` — a synthetic event-loop microbench: timeout ping-pong plus
  contended :class:`~repro.sim.Resource` cycling, no migration machinery.
  Isolates the heap/callback/process-driver cost.
* ``table1_tpm`` — the paper's Table I specweb TPM migration (scaled),
  i.e. the repo's bread-and-butter single-migration path.
* ``evacuate_32vm`` — a 32-VM host evacuation through the cluster
  scheduler: the ROADMAP-scale stress case that motivated the hot-path
  overhaul.
* ``transfer_stack`` — the bonnie Table-I migration with the adaptive
  transfer stack fully enabled (delta cache + multifd + auto-converge),
  guarding the overhead of the opt-in fast paths in
  :mod:`repro.core.transfer`.
* ``scale_1k_host`` — the datacenter evacuation wave from
  ``bench_scale.py`` on the **sharded** per-rack engine (full geometry:
  1,000 hosts / 10,000 VMs, 300 intra-rack evacuations under 10,000
  background tickers).  ``wall_s`` tracks the sharded run; the
  monolithic run of the identical wave rides along in ``mono_wall_s`` /
  ``speedup`` so the sharded engine's advantage is recorded in-tree.
"""

from __future__ import annotations

import os
import sys
from time import perf_counter

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..",
                                "src"))


def _result(wall: float, events: int, sim_time: float, **extra) -> dict:
    out = dict(wall_s=wall, events=events,
               events_per_sec=events / wall if wall > 0 else 0.0,
               sim_time=sim_time)
    out.update(extra)
    return out


def engine(smoke: bool = False) -> dict:
    """Pure event-engine throughput: no disks, no bitmaps, no migration."""
    from repro.sim import Environment
    from repro.sim.resources import Resource

    nprocs = 50
    horizon = 2.0 if smoke else 20.0
    env = Environment()
    resource = Resource(env, capacity=2)

    def worker(env, i):
        delay = 1e-3 + i * 1e-5
        while True:
            request = resource.request()
            yield request
            yield env.timeout(delay)
            resource.release(request)
            yield env.timeout(delay * 2)

    for i in range(nprocs):
        env.process(worker(env, i), name=f"worker:{i}")
    start = perf_counter()
    env.run(until=horizon)
    wall = perf_counter() - start
    return _result(wall, env.events_processed, env.now, nprocs=nprocs)


def table1_tpm(smoke: bool = False) -> dict:
    """Wall-clock for one Table-I specweb TPM migration."""
    from repro.analysis.experiments import run_table1_experiment

    scale = 0.005 if smoke else 0.02
    start = perf_counter()
    report, bed = run_table1_experiment("specweb", scale=scale)
    wall = perf_counter() - start
    return _result(wall, bed.env.events_processed, bed.env.now,
                   scale=scale,
                   total_migration_time=report.total_migration_time,
                   migrated_bytes=report.migrated_bytes)


def evacuate_32vm(smoke: bool = False) -> dict:
    """Wall-clock for evacuating a host carrying 32 VMs (star cluster)."""
    bench_dir = os.path.join(os.path.dirname(__file__), "..")
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from bench_evacuate import evacuate_once

    nblocks, npages = (512, 64) if smoke else (8192, 1024)
    start = perf_counter()
    stats, bed = evacuate_once(concurrency=8, nvms=32,
                               nblocks=nblocks, npages=npages)
    wall = perf_counter() - start
    return _result(wall, bed.env.events_processed, bed.env.now,
                   nvms=32, nblocks=nblocks, npages=npages,
                   makespan=stats["makespan"],
                   mean_downtime=stats["mean_downtime"])


def transfer_stack(smoke: bool = False) -> dict:
    """Wall-clock for a Table-I bonnie migration with the full adaptive
    transfer stack on (delta cache + 4x multifd + auto-converge)."""
    from repro.analysis.experiments import FULL_DISK_BLOCKS, build_testbed
    from repro.core import MigrationConfig
    from repro.units import MiB

    scale = 0.005 if smoke else 0.02
    cache_mb = max(int(FULL_DISK_BLOCKS * scale), 256) * 4096 / MiB
    cfg = MigrationConfig(delta_cache_mb=cache_mb, multifd_channels=4,
                          auto_converge=True)
    start = perf_counter()
    bed = build_testbed("bonnie", scale=scale, config=cfg)
    bed.start_workload()
    bed.run_for(20.0)
    report = bed.migrate()
    wall = perf_counter() - start
    return _result(wall, bed.env.events_processed, bed.env.now,
                   scale=scale, migrated_bytes=report.migrated_bytes,
                   total_migration_time=report.total_migration_time,
                   delta_hits=report.extra["delta_disk"]["hits"])


def scale_1k_host(smoke: bool = False) -> dict:
    """Wall-clock for the sharded datacenter evacuation wave (plus the
    monolithic run of the same wave, for the recorded speedup)."""
    bench_dir = os.path.join(os.path.dirname(__file__), "..")
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import bench_scale

    geometry = dict(bench_scale.SMOKE if smoke else bench_scale.FULL)
    out = bench_scale.compare_once(**geometry)
    sharded = out["sharded"]
    extra = {}
    if "forked" in out:
        extra = dict(fork_wall_s=out["forked"]["wall_s"],
                     fork_makespan=out["forked"]["makespan"],
                     fork_speedup=out["fork_speedup"])
    return _result(sharded["wall_s"], sharded["events"],
                   sharded["sim_time"], **geometry,
                   nvms_migrated=sharded["nvms"],
                   makespan=sharded["makespan"],
                   mono_wall_s=out["mono"]["wall_s"],
                   mono_events=out["mono"]["events"],
                   speedup=out["speedup"], **extra)


#: Name -> callable(smoke) for the runner; insertion order is run order.
SCENARIOS = {
    "engine": engine,
    "table1_tpm": table1_tpm,
    "evacuate_32vm": evacuate_32vm,
    "transfer_stack": transfer_stack,
    "scale_1k_host": scale_1k_host,
}
