"""Host evacuation at cluster scale — makespan and downtime vs concurrency.

The paper migrates one VM between two machines; the ROADMAP north star is
a cluster draining a whole host for maintenance.  This benchmark builds a
star-wired cluster (every host one hop from a shared switch — every
migration crosses two links and all of them contend at the switch),
evacuates one host carrying N VMs through the
:class:`~repro.cluster.scheduler.ClusterScheduler`, and sweeps the
admission-control concurrency cap:

* **concurrency 1** — serial drain: no contention, minimal per-VM
  downtime, worst makespan;
* **concurrency N** — everything at once: the shared uplink is divided N
  ways, per-VM transfer (and hence freeze phase) slows, downtime grows,
  but makespan shrinks until the uplink saturates.

After every run the per-link byte ledger is audited: the sum of channel
bytes routed over each physical link must equal the link's own byte
counter — concurrent contention must not lose or double-count a byte.

Run standalone::

    python benchmarks/bench_evacuate.py            # full geometry
    python benchmarks/bench_evacuate.py --smoke    # CI-sized, seconds

Not a pytest-benchmark module: the sweep *is* the benchmark, and it runs
in one process so the comparison table comes out in one piece.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import format_table  # noqa: E402
from repro.cluster import audit_link_bytes, build_cluster  # noqa: E402
from repro.units import fmt_time  # noqa: E402


def _dirtier(env, domain, nblocks, npages, interval=2e-3, stride=7):
    """Deterministic guest activity: cycle writes over a disk region and
    touch a sliding page window, so the freeze phase actually ships data
    and slows down when the shared uplink is contended."""
    import numpy as np

    block = 0
    page = 0
    while domain.host is not None:
        yield from domain.write(block % max(nblocks // 2, 1), 4)
        if domain.running:
            domain.touch_memory(
                (np.arange(8) + page) % max(npages // 2, 1))
        block += stride
        page += 3
        yield env.timeout(interval)


def evacuate_once(concurrency: int, nvms: int, nblocks: int, npages: int,
                  per_link_limit=None, wiring: str = "star",
                  observe: bool = False):
    """One evacuation run; returns (stats dict, bed)."""
    bed = build_cluster(nhosts=5, vms_per_host=nvms, wiring=wiring,
                        nblocks=nblocks, npages=npages,
                        max_concurrent=concurrency,
                        per_link_limit=per_link_limit, observe=observe)
    victim = bed.hosts[0]
    assert len(victim.domains) == nvms
    for domain in victim.domains:
        bed.env.process(_dirtier(bed.env, domain, nblocks, npages),
                        name=f"dirtier:{domain.name}")
    jobs = bed.scheduler.evacuate(victim)
    bed.scheduler.drain(jobs)

    failed = [job for job in jobs if not job.succeeded]
    if failed:
        raise AssertionError(f"{len(failed)} evacuation jobs failed")
    if victim.domains:
        raise AssertionError(
            f"{len(victim.domains)} domains still on {victim.name}")
    bad = [audit for audit in audit_link_bytes(bed.migrator.migrations)
           if not audit.conserved]
    if bad:
        raise AssertionError(f"byte accounting not conserved: {bad}")

    downtimes = [job.report.downtime for job in jobs]
    stats = dict(
        concurrency=concurrency,
        makespan=bed.scheduler.makespan(jobs),
        mean_downtime=sum(downtimes) / len(downtimes),
        max_downtime=max(downtimes),
        max_queue=max(job.queue_time for job in jobs),
        links_audited=len(audit_link_bytes(bed.migrator.migrations)),
    )
    return stats, bed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized geometry (seconds instead of minutes)")
    parser.add_argument("--vms", type=int, default=8,
                        help="VMs on the evacuated host (default: 8)")
    parser.add_argument("--wiring", choices=("full", "star", "rack"),
                        default="star")
    parser.add_argument("--per-link-limit", type=int, default=None)
    args = parser.parse_args(argv)

    if args.vms < 8:
        parser.error("--vms must be >= 8 (the cluster acceptance bar)")
    if args.smoke:
        nblocks, npages = 512, 64
        sweep = (1, 4, args.vms)
    else:
        nblocks, npages = 8192, 1024
        sweep = (1, 2, 4, args.vms)

    rows = []
    for concurrency in sweep:
        stats, _bed = evacuate_once(concurrency, args.vms, nblocks, npages,
                                    per_link_limit=args.per_link_limit,
                                    wiring=args.wiring)
        rows.append([
            stats["concurrency"],
            fmt_time(stats["makespan"]),
            fmt_time(stats["mean_downtime"]),
            fmt_time(stats["max_downtime"]),
            fmt_time(stats["max_queue"]),
            stats["links_audited"],
        ])
    print(format_table(
        ["concurrency", "makespan", "mean downtime", "max downtime",
         "max queue wait", "links audited"],
        rows,
        title=f"Evacuating {args.vms} VMs over a {args.wiring} cluster "
              f"({nblocks} blocks / {npages} pages per VM)"))

    serial = rows[0]
    print(f"\nAll runs: every job completed, {args.vms} VMs evacuated, "
          f"per-link byte accounting conserved.")
    print(f"Serial drain makespan {serial[1]}; "
          f"full concurrency makespan {rows[-1][1]}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
