"""§IV-A-2 — write-locality study motivating bitmap over delta-queue sync.

Paper: "When we make a Linux kernel, about 11 % of the write operations
rewrite those blocks written before.  The percentage is 25.2 % in SPECweb
Banking Server, and 35.6 % while Bonnie++ is running."  Every such rewrite
is a block a Bradford-style delta queue ships twice but the block-bitmap
coalesces into one transfer.
"""

import pytest

from conftest import dump_trace, emit, observing, run_once
from repro.analysis import PAPER_LOCALITY, format_table, run_locality_experiment

#: (duration, warmup) per workload — bonnie needs to reach its rewrite
#: phase before the window opens.
WINDOWS = {
    "kernelbuild": (120.0, 60.0),
    "specweb": (120.0, 60.0),
    "bonnie": (180.0, 60.0),
}


def test_locality_study(benchmark, scale):
    loc_scale = min(scale, 0.05)  # locality is scale-free past ~1.5 GB

    def run_all():
        out = {}
        for wl, (duration, warmup) in WINDOWS.items():
            stats, bed = run_locality_experiment(wl, duration=duration,
                                                 scale=loc_scale,
                                                 warmup=warmup,
                                                 observe=observing())
            dump_trace(bed.env, f"locality_{wl}")
            out[wl] = stats
        return out

    results = run_once(benchmark, run_all)
    rows = [[wl,
             f"{PAPER_LOCALITY[wl] * 100:.1f} %",
             f"{stats.op_rewrite_fraction * 100:.1f} %",
             stats.write_ops,
             stats.delta_redundancy_blocks]
            for wl, stats in results.items()]
    emit(benchmark, "locality",
         format_table(["workload", "paper rewrite %", "measured rewrite %",
                       "write ops", "delta-queue redundant blocks"], rows,
                      title="§IV-A-2 — write locality"),
         **{f"{wl}_rewrite": s.op_rewrite_fraction
            for wl, s in results.items()})

    # Paper's ordering: kernel build < SPECweb < Bonnie++.
    assert (results["kernelbuild"].op_rewrite_fraction
            < results["specweb"].op_rewrite_fraction
            < results["bonnie"].op_rewrite_fraction)
    # And rough magnitudes.
    assert results["kernelbuild"].op_rewrite_fraction == pytest.approx(
        0.11, abs=0.07)
    assert results["specweb"].op_rewrite_fraction == pytest.approx(
        0.252, abs=0.10)
    # Every rewrite is delta-queue redundancy the bitmap avoids.
    assert all(s.delta_redundancy_blocks > 0 for s in results.values())
