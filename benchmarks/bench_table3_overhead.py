"""Table III — I/O overhead of block-bitmap write tracking.

Paper (CLUSTER'08, §VI-C-5, Table III, KB/s):

=================  ======  ========  =======
                   putc    write(2)  rewrite
=================  ======  ========  =======
Normal             47740   96122     26125
With writes tracked 47604  95569     25887
=================  ======  ========  =======

i.e. less than 1 % throughput loss.  Two measurements here:

* the *simulated* experiment: Bonnie++ throughput with and without the
  per-write tracking cost charged on the I/O path;
* a *real* microbenchmark of this library's interception path (pytest-
  benchmark): marking a 7-block extent in the bitmap must be a tiny
  fraction of the ~50 µs a 4 KiB disk write costs on 2008 hardware.
"""

import numpy as np
import pytest

from conftest import emit, run_once
from repro.analysis import format_table
from repro.analysis.experiments import run_tracking_overhead_experiment
from repro.bitmap import FlatBitmap, LayeredBitmap
from repro.sim import Environment
from repro.storage import BackendDriver, PhysicalDisk, VirtualBlockDevice, write
from repro.units import MiB


def test_table3_simulated(benchmark, scale):
    """Bonnie++ under write tracking vs untracked, in simulation."""
    sim_scale = min(scale, 0.05)  # a 2 GB disk region is plenty here

    def run():
        return run_tracking_overhead_experiment(
            "bonnie", duration=60.0, scale=sim_scale,
            tracking_op_overhead=5e-6)

    normal, tracked = run_once(benchmark, run)
    loss = 1.0 - tracked / normal if normal else 0.0
    rows = [
        ["Normal (KB/s)", "47740 / 96122 / 26125", normal / 1024],
        ["With writes tracked (KB/s)", "47604 / 95569 / 25887",
         tracked / 1024],
        ["Throughput loss", "< 1 %", f"{loss * 100:.2f} %"],
    ]
    emit(benchmark, "Table III (simulated)",
         format_table(["metric", "paper", "measured"], rows,
                      title="Table III — tracking overhead (simulated)"),
         loss_percent=loss * 100)
    assert loss < 0.01  # the paper's "< 1 percent"


@pytest.mark.parametrize("layout", ["flat", "layered"])
def test_table3_real_marking_cost(benchmark, layout):
    """Wall-clock cost of marking one intercepted write in the bitmap."""
    nblocks = 10_000_000  # the paper's 40 GB VBD
    bitmap = (FlatBitmap(nblocks) if layout == "flat"
              else LayeredBitmap(nblocks))
    rng = np.random.default_rng(0)
    starts = rng.integers(0, nblocks - 8, size=4096)
    state = {"i": 0}

    def mark():
        i = state["i"] = (state["i"] + 1) % starts.size
        bitmap.set_range(int(starts[i]), 7)

    benchmark(mark)
    # A 4 KiB write took ~50+ µs on 2008 disks; marking must be far less.
    assert benchmark.stats.stats.mean < 50e-6


def test_table3_real_interception_path(benchmark):
    """Full apply path (VBD update + bitmap marking + observer fan-out)."""
    env = Environment()
    disk = PhysicalDisk(env, 100 * MiB, 100 * MiB, 0)
    vbd = VirtualBlockDevice(1_000_000)
    driver = BackendDriver(env, disk, vbd)
    driver.start_tracking("precopy", FlatBitmap(1_000_000))
    driver.start_tracking("im", FlatBitmap(1_000_000))
    rng = np.random.default_rng(0)
    blocks = rng.integers(0, 1_000_000 - 8, size=4096)
    state = {"i": 0}

    def apply_write():
        i = state["i"] = (state["i"] + 1) % blocks.size
        driver.apply(write(int(blocks[i]), 7))

    benchmark(apply_write)
    assert benchmark.stats.stats.mean < 100e-6
