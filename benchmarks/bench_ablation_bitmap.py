"""Ablation A (§IV-A-2) — layered vs flat block-bitmap.

The paper argues a two-layer bitmap cuts both the per-iteration scan cost
(only parts whose upper bit is set are visited) and the memory/wire size
(clean parts are never allocated or transmitted), because disk writes are
highly local so the map stays sparse.  These microbenchmarks quantify
that on the paper's 40 GB / 10 M-block geometry.
"""

import numpy as np
import pytest

from conftest import emit
from repro.analysis import format_table
from repro.bitmap import FlatBitmap, LayeredBitmap

NBLOCKS = 10_000_000  # 40 GB at 4 KiB blocks

#: Dirty patterns: (name, number of dirty blocks, clustering)
PATTERNS = {
    "sparse-local": ("hot 16 MiB region", 4_096, 4_096),
    "moderate-local": ("hot 256 MiB region", 65_536, 65_536),
    "scattered": ("uniform over disk", 4_096, None),
}


def make_dirty_indices(pattern: str) -> np.ndarray:
    rng = np.random.default_rng(7)
    _, count, cluster = PATTERNS[pattern]
    if cluster is None:
        return np.unique(rng.integers(0, NBLOCKS, size=count))
    start = int(rng.integers(0, NBLOCKS - cluster))
    return start + np.unique(rng.integers(0, cluster, size=count))


@pytest.mark.parametrize("layout", ["flat", "layered"])
@pytest.mark.parametrize("pattern", list(PATTERNS))
def test_scan_cost(benchmark, layout, pattern):
    """Per-iteration scan: find all dirty blocks in the map."""
    bitmap = (FlatBitmap(NBLOCKS) if layout == "flat"
              else LayeredBitmap(NBLOCKS))
    bitmap.set_many(make_dirty_indices(pattern))

    result = benchmark(bitmap.dirty_indices)
    assert result.size == bitmap.count()
    benchmark.extra_info.update(
        layout=layout, pattern=pattern,
        wire_bytes=bitmap.serialized_nbytes(),
        memory_bytes=bitmap.memory_nbytes())


def test_sparse_sizes_summary(benchmark):
    """Wire/memory cost comparison table across patterns."""

    def build():
        rows = []
        for pattern in PATTERNS:
            idx = make_dirty_indices(pattern)
            flat = FlatBitmap(NBLOCKS)
            flat.set_many(idx)
            layered = LayeredBitmap(NBLOCKS)
            layered.set_many(idx)
            rows.append([pattern, idx.size,
                         flat.serialized_nbytes() // 1024,
                         layered.serialized_nbytes() // 1024,
                         layered.memory_nbytes() // 1024,
                         layered.allocated_leaves])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(benchmark, "bitmap sizes",
         format_table(["pattern", "dirty blocks", "flat wire (KiB)",
                       "layered wire (KiB)", "layered mem (KiB)",
                       "allocated leaves"], rows,
                      title="Ablation A — bitmap layouts on a 40 GB disk"))
    # The paper's claim: a local dirty pattern makes the layered map far
    # smaller than the flat 1.2 MiB one.
    sparse = rows[0]
    assert sparse[3] < sparse[2] / 10
