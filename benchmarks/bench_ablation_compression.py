"""Ablation G (§III-A) — compressing the migration stream.

"Decrease the size of transferred data, e.g. to compress the transferred
data before sending it, will show a reduction in total migration time."
Whether it does depends on the bottleneck: the bench runs the same
migration on a fast LAN (disk-bound: compression buys nothing) and on a
WAN-class path (network-bound: time drops roughly with the ratio).
"""

import pytest

from conftest import dump_trace, emit, observing, run_once
from repro.analysis import build_testbed, format_table
from repro.core import MigrationConfig
from repro.units import MB

SCALE = 0.02
#: (label, rate limit emulating the path, compression ratios to sweep)
PATHS = [
    ("gigabit LAN (disk-bound)", None),
    ("100 Mbit WAN (network-bound)", 12.5 * MB),
]


def test_compression_sweep(benchmark, scale):
    sweep_scale = min(scale, SCALE)

    def sweep():
        rows = []
        for path_label, limit in PATHS:
            for ratio in (1.0, 2.0, 4.0):
                cfg = MigrationConfig(rate_limit=limit,
                                      compress=ratio > 1.0,
                                      compression_ratio=max(ratio, 1.0))
                bed = build_testbed("video", scale=sweep_scale, seed=1,
                                    config=cfg, observe=observing())
                bed.start_workload()
                bed.run_for(5.0)
                report = bed.migrate(config=cfg)
                assert report.consistency_verified
                dump_trace(bed.env,
                           f"compression_{'wan' if limit else 'lan'}"
                           f"_{ratio:.0f}x")
                rows.append([path_label,
                             "off" if ratio == 1.0 else f"{ratio:.0f}:1",
                             report.total_migration_time,
                             report.migrated_mb])
        return rows

    rows = run_once(benchmark, sweep)
    emit(benchmark, "compression",
         format_table(["path", "compression", "total time (s)",
                       "data on wire (MB)"], rows,
                      title=f"Ablation G — §III-A compression"
                            f" (scale={sweep_scale})"))

    by_key = {(r[0], r[1]): r for r in rows}
    lan_off = by_key[("gigabit LAN (disk-bound)", "off")]
    lan_2 = by_key[("gigabit LAN (disk-bound)", "2:1")]
    wan_off = by_key[("100 Mbit WAN (network-bound)", "off")]
    wan_2 = by_key[("100 Mbit WAN (network-bound)", "2:1")]
    wan_4 = by_key[("100 Mbit WAN (network-bound)", "4:1")]

    # Wire data shrinks on both paths...
    assert lan_2[3] < 0.6 * lan_off[3]
    # ...but time only improves where the network is the bottleneck.
    assert wan_2[2] < 0.65 * wan_off[2]
    assert wan_4[2] < wan_2[2]
    assert lan_2[2] < 1.15 * lan_off[2]  # no regression on the LAN
