"""Table I — primary TPM migration under the paper's three workloads.

Paper (CLUSTER'08, §VI-C, Table I):

================================  =========  ===========  ==========
                                  Dynamic    Low latency  Diabolical
                                  web server server       server
================================  =========  ===========  ==========
Total migration time (s)          796        798          957
Downtime (ms)                     60         62           110
Amount of migrated data (MB)      39097      39072        40934
================================  =========  ===========  ==========

Plus the per-workload §VI-C detail: the web server performs 3 pre-copy
iterations retransferring 6680 blocks with 62 left to post-copy; the video
server 2 iterations / 610 blocks / 5 left; Bonnie++ 4 iterations
retransferring ~1464 MB.
"""

import pytest

from conftest import dump_trace, emit, observing, run_once
from repro.analysis import (
    PAPER_TABLE1,
    format_table,
    run_table1_experiment,
)

WORKLOAD_LABELS = {
    "specweb": "Dynamic web server",
    "video": "Low latency server",
    "bonnie": "Diabolical server",
}


@pytest.mark.parametrize("workload", ["specweb", "video", "bonnie"])
def test_table1(benchmark, workload, scale):
    report, bed = run_once(benchmark, run_table1_experiment, workload,
                           scale=scale, warmup=20.0, observe=observing())
    dump_trace(bed.env, f"table1_{workload}")
    paper = PAPER_TABLE1[workload]
    rows = [
        ["Total migration time (s)", paper["total_s"],
         report.total_migration_time],
        ["Downtime (ms)", paper["downtime_ms"], report.downtime * 1e3],
        ["Amount of migrated data (MB)", paper["data_mb"],
         report.migrated_mb],
        ["Pre-copy iterations", {"specweb": 3, "video": 2, "bonnie": 4}[
            workload], len(report.disk_iterations)],
        ["Retransferred blocks", {"specweb": 6680, "video": 610,
                                  "bonnie": "~374,800 (1464 MB)"}[workload],
         report.retransferred_blocks],
        ["Dirty blocks left to post-copy", {"specweb": 62, "video": 5,
                                            "bonnie": "n/a"}[workload],
         report.remaining_dirty_blocks],
        ["Post-copy duration (ms)", {"specweb": 349, "video": 380,
                                     "bonnie": "n/a"}[workload],
         report.postcopy.duration * 1e3],
        ["Blocks pulled", {"specweb": 1, "video": 0, "bonnie": "n/a"}[
            workload], report.postcopy.pulled_blocks],
    ]
    emit(benchmark, f"Table I — {workload}",
         format_table(["metric", "paper", "measured"], rows,
                      title=f"Table I — {WORKLOAD_LABELS[workload]}"
                            f" (scale={scale})"),
         total_s=report.total_migration_time,
         downtime_ms=report.downtime * 1e3,
         data_mb=report.migrated_mb)

    # Shape assertions (hold at full scale; relaxed, not exact numbers).
    assert report.consistency_verified
    assert report.downtime < 1.0
    if scale == 1.0:
        assert 0.5 * paper["total_s"] < report.total_migration_time \
            < 2.0 * paper["total_s"]
        assert 0.9 * paper["data_mb"] < report.migrated_mb \
            < 1.2 * paper["data_mb"]
        assert report.downtime < 0.5  # hundreds of ms at most


def test_table1_ordering(benchmark, scale):
    """Cross-workload shape: diabolical costs the most, calm loads tie."""

    def run_all():
        return {wl: run_table1_experiment(wl, scale=scale, warmup=20.0)[0]
                for wl in ("specweb", "video", "bonnie")}

    reports = run_once(benchmark, run_all)
    rows = [[WORKLOAD_LABELS[wl], r.total_migration_time,
             r.downtime * 1e3, r.migrated_mb]
            for wl, r in reports.items()]
    emit(benchmark, "Table I (all)",
         format_table(["workload", "total (s)", "downtime (ms)",
                       "data (MB)"], rows,
                      title=f"Table I — all workloads (scale={scale})"))
    assert (reports["bonnie"].total_migration_time
            > reports["specweb"].total_migration_time)
    assert (reports["bonnie"].migrated_bytes
            > reports["video"].migrated_bytes)
