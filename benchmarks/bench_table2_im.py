"""Table II — Incremental Migration back to the source vs primary TPM.

Paper (CLUSTER'08, §VI-C-4, Table II):

==================  ===================  ===================
workload            IM time (s)          IM data (MB)
==================  ===================  ===================
Dynamic web server  1.0                  52.5
Low-latency server  0.6                  5.5
Diabolical server   17                   911.4
==================  ===================  ===================

(primary TPM rows are Table I).  The paper's IM times are far below what a
full 512 MiB memory transfer needs, so they can only describe the storage
part of the migration; we therefore report the *storage migration time*
(disk pre-copy + freeze + post-copy) and storage bytes for the IM leg —
see EXPERIMENTS.md for the full discussion.
"""

import pytest

from conftest import dump_trace, emit, observing, run_once
from repro.analysis import (
    PAPER_TABLE2,
    format_table,
    run_table2_experiment,
)


@pytest.mark.parametrize("workload", ["specweb", "video", "bonnie"])
def test_table2(benchmark, workload, scale):
    primary, back, bed = run_once(
        benchmark, run_table2_experiment, workload,
        scale=scale, warmup=20.0, dwell=30.0, observe=observing())
    dump_trace(bed.env, f"table2_{workload}")
    paper = PAPER_TABLE2[workload]
    im_storage_mb = back.storage_bytes / 2**20
    rows = [
        ["Primary TPM time (s)", "Table I", primary.total_migration_time],
        ["Primary TPM data (MB)", "Table I", primary.migrated_mb],
        ["IM storage time (s)", paper["time_s"],
         back.storage_migration_time],
        ["IM storage data (MB)", paper["data_mb"], im_storage_mb],
        ["IM total incl. memory (s)", "n/a", back.total_migration_time],
        ["IM total data (MB)", "n/a", back.migrated_mb],
    ]
    emit(benchmark, f"Table II — {workload}",
         format_table(["metric", "paper", "measured"], rows,
                      title=f"Table II — {workload} (scale={scale})"),
         im_storage_s=back.storage_migration_time,
         im_storage_mb=im_storage_mb)

    assert back.incremental
    assert back.consistency_verified
    # The headline claim: IM is drastically cheaper than the primary TPM.
    assert back.storage_bytes < 0.25 * primary.storage_bytes
    assert (back.storage_migration_time
            < 0.25 * primary.storage_migration_time)


def test_table2_workload_ordering(benchmark, scale):
    """Video < web < Bonnie++ in incremental cost, as in the paper."""

    def run_all():
        out = {}
        for wl in ("specweb", "video", "bonnie"):
            _, back, _ = run_table2_experiment(wl, scale=scale, warmup=20.0,
                                               dwell=30.0)
            out[wl] = back
        return out

    backs = run_once(benchmark, run_all)
    rows = [[wl, PAPER_TABLE2[wl]["time_s"], b.storage_migration_time,
             PAPER_TABLE2[wl]["data_mb"], b.storage_bytes / 2**20]
            for wl, b in backs.items()]
    emit(benchmark, "Table II (all)",
         format_table(["workload", "paper t (s)", "measured t (s)",
                       "paper MB", "measured MB"], rows,
                      title=f"Table II — IM cost by workload (scale={scale})"))
    assert (backs["video"].storage_bytes < backs["specweb"].storage_bytes
            < backs["bonnie"].storage_bytes)
