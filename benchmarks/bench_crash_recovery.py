"""Crash recovery — durable block-bitmaps vs losing the tracking state.

`bench_fault_recovery` measures retries after a *link* failure, where the
source keeps its in-memory bitmap.  This benchmark kills the **source
host itself** mid-disk-pre-copy (losing every in-memory structure), lets
it restart, and compares:

* **persisted retry** — ``persist_bitmap=True``: the restarted host
  recovers the pending set from its stable-storage snapshot + journal and
  the retry resumes incrementally, and
* **volatile retry** — no persistence: the crash destroys the tracking
  bitmap, so the retry must re-send the whole device.

A second sweep compares the sync policies (``wal`` / ``batch`` /
``snapshot``): lazier policies write stable storage less often but
recover a fatter, guard-region-padded pending set — the write-
amplification vs recovery-precision trade the store exposes.
"""

from bench_fault_recovery import FaultBed, disk_bytes_all_attempts, \
    disk_precopy_window
from conftest import dump_trace, emit, run_once
from repro.analysis import format_table
from repro.core import MigrationRetrier
from repro.faults import FaultInjector, FaultPlan
from repro.persist import SYNC_POLICIES

SEND_TIMEOUT = 0.25
DOWN_FOR = 2.0
BACKOFF = 1.0
FRACTIONS = (0.25, 0.5, 0.75)


def run_with_crash(scale, fail_at, persist, policy="wal"):
    """One migration whose source dies at ``fail_at`` and restarts."""
    bed = FaultBed(scale)
    cfg = bed.config.replace(persist_bitmap=persist,
                             persist_sync_policy=policy)
    plan = FaultPlan(send_timeout=SEND_TIMEOUT).crash(
        "source", at=fail_at, down_for=DOWN_FOR)
    FaultInjector(bed.env, plan).inject(bed.migrator)
    retrier = MigrationRetrier(bed.migrator, max_attempts=3,
                               initial_backoff=BACKOFF, incremental=True,
                               wait_for_restart=True)
    proc = retrier.migrate_process(bed.domain, bed.destination, cfg)
    report = bed.env.run(until=proc)
    store = bed.source._bitmap_stores.get(
        (bed.domain.domain_id, "precopy"))
    dump_trace(bed.env, f"crash_retry_{'persist' if persist else 'volatile'}"
                        f"_{policy}_at{fail_at:.2f}")
    return report, store


def test_crash_recovery_sweep(benchmark, scale):
    """Persisted vs volatile retry after a full source crash."""

    def sweep():
        t0, t1, baseline = disk_precopy_window(scale)
        out = []
        for frac in FRACTIONS:
            fail_at = t0 + frac * (t1 - t0)
            persisted, store = run_with_crash(scale, fail_at, persist=True)
            volatile, _ = run_with_crash(scale, fail_at, persist=False)
            out.append((frac, persisted, volatile, store))
        return baseline, out

    baseline, results = run_once(benchmark, sweep)

    rows = []
    gaps = []
    for frac, persisted, volatile, store in results:
        p_disk = disk_bytes_all_attempts(persisted)
        v_disk = disk_bytes_all_attempts(volatile)
        gap = v_disk - p_disk
        gaps.append(gap)
        recovery = store.last_recovery
        rows.append([f"{frac:.0%}", p_disk / 2**20, v_disk / 2**20,
                     gap / 2**20, recovery.pending_blocks,
                     recovery.overmarked_blocks])

        # Acceptance criterion: the persisted bitmap survives the host
        # crash, the retry resumes from it, and it moves strictly fewer
        # disk bytes than the volatile restart-from-scratch.
        assert persisted.attempts == 2 and volatile.attempts == 2
        assert persisted.consistency_verified
        assert volatile.consistency_verified
        assert persisted.extra.get("recovered_from_persistence") is True
        assert not volatile.extra.get("recovered_from_persistence")
        assert (persisted.failed_attempts[0].extra
                .get("persisted_bitmap_recoverable") is True)
        assert p_disk < v_disk

    # The later the crash, the more confirmed work persistence saves.
    assert gaps[-1] > gaps[0]

    emit(benchmark, "Crash recovery",
         format_table(
             ["crash point", "persisted (MiB)", "volatile (MiB)",
              "persistence saves (MiB)", "recovered pending",
              "over-marked"], rows,
             title=(f"Disk bytes over all attempts, source host crash at "
                    f"a fraction of disk pre-copy (scale={scale})")),
         baseline_disk_mb=baseline.bytes_by_category["disk"] / 2**20,
         gap_mb=[g / 2**20 for g in gaps])


def test_sync_policy_tradeoff(benchmark, scale):
    """Write amplification vs recovery precision across sync policies."""

    def sweep():
        t0, t1, _baseline = disk_precopy_window(scale)
        fail_at = t0 + 0.5 * (t1 - t0)
        out = []
        for policy in SYNC_POLICIES:
            report, store = run_with_crash(scale, fail_at, persist=True,
                                           policy=policy)
            out.append((policy, report, store))
        return out

    results = run_once(benchmark, sweep)

    rows = []
    flushes = {}
    overmarks = {}
    for policy, report, store in results:
        assert report.consistency_verified
        assert report.extra.get("recovered_from_persistence") is True
        stats = store.collect_stats()
        recovery = store.last_recovery
        flushes[policy] = stats.journal_flushes
        overmarks[policy] = recovery.overmarked_blocks
        rows.append([policy, stats.journal_flushes, stats.area_writes,
                     recovery.pending_blocks, recovery.overmarked_blocks,
                     "yes" if recovery.exact else "no",
                     disk_bytes_all_attempts(report) / 2**20])

    # WAL flushes on every record; the lazy policies flush (far) less.
    # WAL alone guarantees exact recovery; the lazy policies may recover
    # a guard-padded pending set (how padded depends on where the crash
    # fell relative to the last flush/compaction, so only WAL's zero is
    # asserted -- the table reports the rest).
    assert flushes["wal"] > flushes["batch"] >= flushes["snapshot"]
    assert overmarks["wal"] == 0

    emit(benchmark, "Sync policies",
         format_table(
             ["policy", "journal flushes", "area writes",
              "recovered pending", "over-marked", "exact",
              "disk bytes (MiB)"], rows,
             title=(f"Durability write cost vs recovery precision "
                    f"(crash at 50% of disk pre-copy, scale={scale})")))
