#!/usr/bin/env python3
"""Datacenter scale: monolithic engine vs sharded per-rack engines.

Runs the *same* evacuation wave twice — once on a single
:class:`~repro.sim.Environment` (``build_cluster(wiring="rack")``) and
once on :class:`~repro.cluster.sharded.ShardedCluster` (one Environment
per rack under conservative lookahead) — and compares wall clock,
events/sec and simulated makespan.

The scenario is intentionally heap-heavy: every VM runs a background
"ticker" that rewrites two disk blocks every 50 simulated milliseconds
(10,000 concurrent processes at full geometry), while each rack
evacuates its first ``--evacuate-per-rack`` VMs to rack-local
destinations.  All migrations are intra-rack, so the sharded engine
stays on its wide-window fast path; the win is heap size and cache
locality, not parallelism (the comparison is single-threaded).

Both runs make identical simulated decisions, so the makespans must
match exactly — the bench asserts it, making this a correctness check
of the sharded engine at scale, not just a stopwatch.

Usage::

    python benchmarks/bench_scale.py            # 1,000 hosts / 10,000 VMs
    python benchmarks/bench_scale.py --smoke    # 64 hosts, CI-sized
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
from time import perf_counter

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster import (assert_conserved, build_cluster,  # noqa: E402
                           build_sharded_cluster)
from repro.units import fmt_time  # noqa: E402

#: Small VMs: the bench stresses orchestration volume, not copy volume.
NBLOCKS = 256
NPAGES = 32
TICK_INTERVAL = 0.05
FULL = dict(racks=25, hosts_per_rack=40, vms_per_host=10)
SMOKE = dict(racks=4, hosts_per_rack=16, vms_per_host=2)
EVACUATE_PER_RACK = 12


def start_ticker(env, domain, ordinal: int, nblocks: int = NBLOCKS) -> None:
    """Perpetual background writer: 2 blocks every 50 ms, at a per-VM
    offset (``ordinal`` is the VM's creation index — identical across
    the monolithic and sharded builds, unlike ``domain_id``)."""
    base = (ordinal * 13) % (nblocks - 4)

    def proc(env):
        while True:
            yield from domain.write(base, 2)
            yield env.timeout(TICK_INTERVAL)

    env.process(proc(env), name=f"ticker:{domain.name}")


def plan_wave(rack_hosts: list[list], per_rack: int) -> list[tuple]:
    """(vm, destination host name) moves: each rack's first ``per_rack``
    VMs go round-robin to the rack's non-source hosts.  Pure function of
    host/VM names, so both builds plan the identical wave."""
    moves = []
    for hosts in rack_hosts:
        vms = [dom for host in hosts
               for dom in sorted(host.domains, key=lambda d: d.domain_id)]
        victims = vms[:per_rack]
        sources = {vm.host.name for vm in victims}
        targets = [host for host in hosts if host.name not in sources]
        for i, vm in enumerate(victims):
            moves.append((vm, targets[i % len(targets)].name))
    return moves


def run_monolithic(racks: int, hosts_per_rack: int, vms_per_host: int,
                   per_rack: int) -> dict:
    bed = build_cluster(nhosts=racks * hosts_per_rack,
                        vms_per_host=vms_per_host, wiring="rack",
                        rack_size=hosts_per_rack, nblocks=NBLOCKS,
                        npages=NPAGES, max_concurrent=10 ** 6)
    for ordinal, domain in enumerate(bed.domains):
        start_ticker(bed.env, domain, ordinal)
    rack_hosts = [bed.hosts[r * hosts_per_rack:(r + 1) * hosts_per_rack]
                  for r in range(racks)]
    moves = plan_wave(rack_hosts, per_rack)
    by_name = {host.name: host for host in bed.hosts}
    start = perf_counter()
    jobs = [bed.scheduler.submit(vm, by_name[dest]) for vm, dest in moves]
    bed.scheduler.drain(jobs)
    wall = perf_counter() - start
    assert all(job.succeeded for job in jobs), \
        [job.error for job in jobs if not job.succeeded]
    assert_conserved(bed.migrator.migrations)
    return dict(wall_s=wall, events=bed.env.events_processed,
                sim_time=bed.env.now, nvms=len(jobs),
                makespan=bed.scheduler.makespan(jobs))


def run_sharded(racks: int, hosts_per_rack: int, vms_per_host: int,
                per_rack: int, workers: str = "inline") -> dict:
    cluster = build_sharded_cluster(nracks=racks,
                                    hosts_per_rack=hosts_per_rack,
                                    vms_per_host=vms_per_host,
                                    nblocks=NBLOCKS, npages=NPAGES,
                                    max_concurrent=10 ** 6,
                                    workers=workers)
    ordinal = 0
    for shard in cluster.shards:
        for host in shard.hosts:
            for domain in sorted(host.domains, key=lambda d: d.domain_id):
                start_ticker(shard.env, domain, ordinal)
                ordinal += 1
    moves = plan_wave([shard.hosts for shard in cluster.shards], per_rack)
    start = perf_counter()
    jobs = [cluster.submit(vm, dest) for vm, dest in moves]
    cluster.drain(jobs)
    wall = perf_counter() - start
    assert all(job.succeeded for job in jobs), \
        [job.error for job in jobs if not job.succeeded]
    if workers == "inline":
        # Forked drains audit byte conservation inside each worker (the
        # parent only holds the patched-back accounting view).
        cluster.assert_conserved()
    return dict(wall_s=wall, events=cluster.events_processed,
                sim_time=cluster.engine.now, nvms=len(jobs),
                makespan=cluster.makespan(jobs),
                windows=cluster.engine.windows)


def compare_once(racks: int, hosts_per_rack: int, vms_per_host: int,
                 per_rack: int = EVACUATE_PER_RACK,
                 with_fork: bool = True) -> dict:
    """One forked-sharded + one mono + one sharded run of the identical
    wave; asserts the simulated makespans agree to float precision.

    The forked leg runs *first*: fork cost is dominated by
    copy-on-write faults against the resident heap, so forking after
    the mono and inline testbeds have churned hundreds of MB would bill
    their garbage to the fork leg.  The legs build independent
    testbeds, so ordering cannot change any simulated result — only the
    wall clocks — and ``gc.collect()`` between legs keeps each one from
    paying GC debt run up by its predecessor."""
    forked = None
    if with_fork:
        forked = run_sharded(racks, hosts_per_rack, vms_per_host,
                             per_rack, workers="fork")
        gc.collect()
    mono = run_monolithic(racks, hosts_per_rack, vms_per_host, per_rack)
    gc.collect()
    shard = run_sharded(racks, hosts_per_rack, vms_per_host, per_rack)
    gc.collect()
    drift = abs(mono["makespan"] - shard["makespan"])
    assert drift < 1e-9, (
        f"sharded diverged from monolithic: makespan "
        f"{shard['makespan']!r} vs {mono['makespan']!r}")
    out = dict(mono=mono, sharded=shard,
               speedup=mono["wall_s"] / shard["wall_s"]
               if shard["wall_s"] > 0 else float("inf"))
    if forked is not None:
        # The forked drain replays the same inline loop per rack group,
        # so its makespan must be *exactly* the inline sharded one.
        assert forked["makespan"] == shard["makespan"], (
            f"forked drain diverged: makespan {forked['makespan']!r} "
            f"vs {shard['makespan']!r}")
        assert forked["events"] == shard["events"]
        out["forked"] = forked
        out["fork_speedup"] = (mono["wall_s"] / forked["wall_s"]
                               if forked["wall_s"] > 0 else float("inf"))
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="64-host geometry (seconds, CI-sized)")
    parser.add_argument("--racks", type=int, default=None)
    parser.add_argument("--hosts-per-rack", type=int, default=None)
    parser.add_argument("--vms-per-host", type=int, default=None)
    parser.add_argument("--evacuate-per-rack", type=int,
                        default=EVACUATE_PER_RACK)
    args = parser.parse_args(argv)

    geo = dict(SMOKE if args.smoke else FULL)
    for key in ("racks", "hosts_per_rack", "vms_per_host"):
        override = getattr(args, key)
        if override is not None:
            geo[key] = override
    nhosts = geo["racks"] * geo["hosts_per_rack"]
    nvms = nhosts * geo["vms_per_host"]
    moved = geo["racks"] * args.evacuate_per_rack
    print(f"scale bench: {nhosts} hosts / {nvms} VMs in {geo['racks']} "
          f"racks; evacuating {moved} VMs intra-rack "
          f"(+{nvms} background tickers)")

    out = compare_once(per_rack=args.evacuate_per_rack, **geo)
    rows = [("monolithic", out["mono"]), ("sharded", out["sharded"])]
    if "forked" in out:
        rows.append(("shard+fork", out["forked"]))
    print(f"{'engine':<12} {'wall':>10} {'events':>10} {'ev/s':>10} "
          f"{'sim makespan':>14}")
    for label, res in rows:
        print(f"{label:<12} {res['wall_s'] * 1e3:8.1f}ms "
              f"{res['events']:>10} "
              f"{res['events'] / res['wall_s'] / 1e3:>8.1f}k "
              f"{fmt_time(res['makespan']):>14}")
    print(f"speedup: {out['speedup']:.2f}x inline, "
          f"{out.get('fork_speedup', float('nan')):.2f}x forked "
          f"({out['sharded']['windows']} sync windows); "
          f"makespans identical; byte ledgers conserved on both engines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
