"""Ablations E & F — the paper's §IV/§VII proposals, implemented & measured.

* **E — guest-aware migration** (§VII future work): "If the Guest OS ...
  can tell the migration process which part is not used, the amount of
  migrated data can be reduced further."  We track writes since guest
  installation (generation stamps) and let the first pre-copy iteration
  skip never-written blocks.  The bench sweeps disk usage.

* **F — secondary NIC** (§IV-A-4): "use a secondary NIC for the
  migration, which can help limit the overhead on network I/O
  performance, but it has no effect on releasing the stress on disk."
  We run a network-bound web server with migration sharing its port vs
  using a dedicated one, and a disk-bound Bonnie++ to confirm the caveat.
"""

import pytest

from conftest import dump_trace, emit, observing, run_once
from repro.analysis import (
    build_testbed,
    format_table,
    mean_rate,
    performance_overhead,
)
from repro.core import MigrationConfig
from repro.units import MB

E_SCALE = 0.05
F_SCALE = 0.01


def test_guest_aware_usage_sweep(benchmark, scale):
    """Migrated data and time versus how full the disk actually is."""
    sweep_scale = min(scale, E_SCALE)

    def sweep():
        rows = []
        for usage in (0.1, 0.25, 0.5, 0.75, 1.0):
            for aware in (False, True):
                cfg = MigrationConfig(guest_aware=aware)
                bed = build_testbed("idle", scale=sweep_scale,
                                    prefill=usage, config=cfg,
                                    observe=observing())
                bed.start_workload()
                bed.run_for(1.0)
                report = bed.migrate(config=cfg)
                assert report.consistency_verified
                dump_trace(bed.env,
                           f"guest_aware_{usage:.2f}_"
                           f"{'aware' if aware else 'blind'}")
                if aware:
                    rows.append([f"{usage * 100:.0f} %",
                                 prev_data, report.migrated_mb,
                                 prev_time, report.total_migration_time])
                else:
                    prev_data = report.migrated_mb
                    prev_time = report.total_migration_time
        return rows

    rows = run_once(benchmark, sweep)
    emit(benchmark, "guest aware",
         format_table(["disk usage", "blind data (MB)", "aware data (MB)",
                       "blind time (s)", "aware time (s)"], rows,
                      title=f"Ablation E — guest-aware migration"
                            f" (scale={sweep_scale})"))
    # Data and time scale with usage when aware; blind is flat.
    ten_pct, full = rows[0], rows[-1]
    assert ten_pct[2] < 0.2 * ten_pct[1]     # 10% full: ~10x less data
    assert full[2] == pytest.approx(full[1], rel=0.05)  # 100%: no gain
    assert ten_pct[4] < 0.3 * ten_pct[3]     # ...and much faster


def test_multi_host_im(benchmark, scale):
    """Paper §VII: IM among any recently used machines (A->B->C->A)."""
    from repro.sim import Environment
    from repro.storage import PhysicalDisk
    from repro.units import MiB
    from repro.vm import Host

    def run_ring(multi):
        bed = build_testbed("kernelbuild", scale=min(scale, 0.02), seed=2,
                            observe=observing())
        bed.migrator.multi_host_im = multi
        third = Host(bed.env, "third",
                     PhysicalDisk(bed.env, 60 * MiB, 52 * MiB, 0.5e-3),
                     bed.source.clock)
        bed.migrator.connect(bed.destination, third)
        bed.migrator.connect(third, bed.source)
        bed.start_workload()
        bed.run_for(10.0)
        bed.migrate(destination=bed.destination)   # A -> B
        bed.run_for(10.0)
        bed.migrate(destination=third)             # B -> C
        bed.run_for(10.0)
        back = bed.migrate(destination=bed.source)  # C -> A
        dump_trace(bed.env, f"multi_host_im_{'multi' if multi else 'single'}")
        return back

    def run_both():
        return {"paper (single-hop IM)": run_ring(False),
                "multi-host IM": run_ring(True)}

    results = run_once(benchmark, run_both)
    rows = [[label,
             "incremental" if r.incremental else "FULL",
             r.storage_migration_time,
             r.storage_bytes / 2**20]
            for label, r in results.items()]
    emit(benchmark, "multi-host IM",
         format_table(["mode", "return trip A<-C", "storage time (s)",
                       "disk data (MB)"], rows,
                      title="Extension — multi-host IM (A->B->C->A)"))
    single = results["paper (single-hop IM)"]
    multi = results["multi-host IM"]
    assert not single.incremental          # paper's design: full again
    assert multi.incremental               # extension: incremental
    assert multi.storage_bytes < 0.3 * single.storage_bytes
    assert multi.consistency_verified


def test_secondary_nic(benchmark, scale):
    """Service throughput during migration: shared port vs secondary NIC."""
    nic_scale = min(scale, F_SCALE)

    def run_modes():
        out = {}
        for mode in ("shared", "secondary"):
            bed = build_testbed("specweb", scale=nic_scale, seed=5,
                                service_nic=mode, link_bandwidth=80 * MB,
                                observe=observing())
            bed.start_workload()
            bed.run_for(20.0)
            report = bed.migrate()
            dump_trace(bed.env, f"secondary_nic_{mode}")
            base = mean_rate(bed.timeline, "specweb:throughput", 0, 20)
            during = mean_rate(bed.timeline, "specweb:throughput",
                               report.started_at, report.ended_at)
            out[mode] = (base, during, report)
        # The caveat: a disk-bound guest gains nothing from the 2nd NIC.
        bed = build_testbed("bonnie", scale=nic_scale, seed=5,
                            service_nic="secondary", link_bandwidth=80 * MB)
        bed.start_workload()
        bed.run_for(20.0)
        report = bed.migrate()
        disk_bound = performance_overhead(
            bed.timeline, "bonnie:write",
            migration_window=(report.precopy_disk_started_at,
                              report.precopy_disk_ended_at),
            baseline_window=(0.0, 20.0))
        return out, disk_bound

    out, disk_bound = run_once(benchmark, run_modes)
    rows = [[mode, base / 1e6, during / 1e6,
             f"{(1 - during / base) * 100:.0f} %"]
            for mode, (base, during, _r) in out.items()]
    rows.append(["secondary + disk-bound guest", "-", "-",
                 f"{disk_bound.overhead_fraction * 100:.0f} % (disk!)"])
    emit(benchmark, "secondary nic",
         format_table(["NIC mode", "baseline (MB/s)", "during (MB/s)",
                       "service loss"], rows,
                      title=f"Ablation F — secondary NIC for migration"
                            f" (scale={nic_scale})"))
    shared_loss = 1 - out["shared"][1] / out["shared"][0]
    secondary_loss = 1 - out["secondary"][1] / out["secondary"][0]
    assert secondary_loss < shared_loss - 0.1   # 2nd NIC protects service
    assert disk_bound.overhead_fraction > 0.2   # ...but not the disk
