"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures on the
simulated testbed and prints a paper-vs-measured comparison.  By default
experiments run at the paper's full geometry (39 070 MiB VBD, 512 MiB
RAM); set ``REPRO_BENCH_SCALE`` (e.g. ``0.05``) to shrink everything for a
quick pass.

Run with::

    pytest benchmarks/ --benchmark-only -s

Set ``REPRO_BENCH_TRACE`` to a directory to additionally record a
Chrome-format trace of each benchmark's main run (loadable in
``chrome://tracing``; see ``docs/OBSERVABILITY.md``)::

    REPRO_BENCH_TRACE=traces REPRO_BENCH_SCALE=0.05 \
        pytest benchmarks/bench_table1_tpm.py --benchmark-only -s
"""

import os
from typing import Optional

import pytest


def bench_scale() -> float:
    """Experiment scale factor, from ``REPRO_BENCH_SCALE`` (default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def trace_dir() -> Optional[str]:
    """Trace output directory from ``REPRO_BENCH_TRACE`` (unset = no traces)."""
    return os.environ.get("REPRO_BENCH_TRACE") or None


def observing() -> bool:
    """True when benchmarks should run with the tracer installed."""
    return trace_dir() is not None


def dump_trace(env, name: str) -> Optional[str]:
    """Write ``env``'s trace to ``$REPRO_BENCH_TRACE/<name>.trace.json``.

    A no-op (returns None) when tracing is off or the environment has no
    live tracer, so benchmarks can call it unconditionally.
    """
    directory = trace_dir()
    if directory is None or not getattr(env.tracer, "enabled", False):
        return None
    from repro.obs import dump_chrome_trace

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.trace.json")
    return dump_chrome_trace(path, env.tracer, env.metrics)


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def run_once(benchmark, func, *args, **kwargs):
    """Run a whole-experiment function exactly once under pytest-benchmark.

    These experiments simulate hundreds of seconds of virtual time;
    repeating them for statistical rounds would add minutes of wall time
    for no insight (they are deterministic given the seed).
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def emit(benchmark, title: str, text: str, **extra) -> None:
    """Print a result table and attach key numbers to the benchmark record."""
    print(f"\n{text}\n")
    benchmark.extra_info.update(extra)
