"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures on the
simulated testbed and prints a paper-vs-measured comparison.  By default
experiments run at the paper's full geometry (39 070 MiB VBD, 512 MiB
RAM); set ``REPRO_BENCH_SCALE`` (e.g. ``0.05``) to shrink everything for a
quick pass.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest


def bench_scale() -> float:
    """Experiment scale factor, from ``REPRO_BENCH_SCALE`` (default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def run_once(benchmark, func, *args, **kwargs):
    """Run a whole-experiment function exactly once under pytest-benchmark.

    These experiments simulate hundreds of seconds of virtual time;
    repeating them for statistical rounds would add minutes of wall time
    for no insight (they are deterministic given the seed).
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def emit(benchmark, title: str, text: str, **extra) -> None:
    """Print a result table and attach key numbers to the benchmark record."""
    print(f"\n{text}\n")
    benchmark.extra_info.update(extra)
