"""Ablation B (§IV-A-2) — bit granularity: 512 B sector vs 4 KiB block.

The paper picks one bit per 4 KiB block: for a 32 GB disk that costs 1 MiB
of bitmap instead of 8 MiB at sector granularity, at the price of *false
dirt* (a sub-block write forces retransmission of the whole block).  This
bench sweeps granularities over realistic write traces and reports the
bitmap-size vs write-amplification trade-off.
"""

import numpy as np
import pytest

from conftest import emit
from repro.analysis import format_table
from repro.bitmap import bitmap_wire_nbytes, granularity_cost
from repro.units import GiB, KiB, MiB

DISK = 32 * GiB
GRANULARITIES = [512, 1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB]


def make_trace(kind: str, nwrites: int = 5_000) -> list:
    rng = np.random.default_rng(11)
    writes = []
    if kind == "small-log":  # many sub-block appends (512 B log records)
        base = int(rng.integers(0, DISK // 2))
        for i in range(nwrites):
            writes.append((base + i * 512, 512))
    elif kind == "block-aligned":  # well-behaved 4 KiB page writes
        offs = rng.integers(0, DISK // (4 * KiB) - 1, size=nwrites)
        for o in offs:
            writes.append((int(o) * 4 * KiB, 4 * KiB))
    else:  # mixed sizes, arbitrary alignment
        offs = rng.integers(0, DISK - 128 * KiB, size=nwrites)
        lens = rng.integers(512, 64 * KiB, size=nwrites)
        for o, l in zip(offs, lens):
            writes.append((int(o), int(l)))
    return writes


def test_paper_size_arithmetic(benchmark):
    """The paper's headline numbers: 1 MiB vs 8 MiB for a 32 GB disk."""

    def sizes():
        return (bitmap_wire_nbytes(DISK, 4 * KiB),
                bitmap_wire_nbytes(DISK, 512))

    block_size, sector_size = benchmark.pedantic(sizes, rounds=1,
                                                 iterations=1)
    assert block_size == 1 * MiB
    assert sector_size == 8 * MiB


@pytest.mark.parametrize("trace_kind", ["small-log", "block-aligned",
                                        "mixed"])
def test_granularity_tradeoff(benchmark, trace_kind):
    trace = make_trace(trace_kind)

    def sweep():
        return [granularity_cost(trace, DISK, g) for g in GRANULARITIES]

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"{c.granularity // 1024 or c.granularity}"
             f"{' KiB' if c.granularity >= 1024 else ' B'}",
             c.bitmap_nbytes // 1024,
             c.dirty_units,
             c.dirty_bytes // 1024,
             f"{c.amplification:.2f}x"] for c in costs]
    emit(benchmark, f"granularity {trace_kind}",
         format_table(["bit granularity", "bitmap (KiB)", "dirty units",
                       "retransfer (KiB)", "amplification"], rows,
                      title=f"Ablation B — granularity sweep"
                            f" ({trace_kind} trace)"))
    # Monotone trade-off: finer bits = bigger map, less amplification.
    sizes = [c.bitmap_nbytes for c in costs]
    amps = [c.amplification for c in costs]
    assert sizes == sorted(sizes, reverse=True)
    assert all(a2 >= a1 - 1e-9 for a1, a2 in zip(amps, amps[1:]))
    # And the paper's 4 KiB choice stays benign for block-aligned writes.
    four_k = costs[GRANULARITIES.index(4 * KiB)]
    if trace_kind == "block-aligned":
        assert four_k.amplification == pytest.approx(1.0)
