"""Figure 6 — impact on Bonnie++ throughput, and the §VI-C-3 rate-limit study.

Paper (CLUSTER'08, §VI-C-3, Fig. 6): the four Bonnie++ curves (putc,
write(2), rewrite, getc) drop markedly while the migration reads the disk
at a high rate, and recover afterwards.  Limiting the migration's
bandwidth reduces the impact by about 50 % but lengthens the pre-copy
phase by about 37 % — "disk I/O throughput is the bottleneck of the whole
system performance".
"""

import numpy as np
import pytest

from conftest import dump_trace, emit, observing, run_once
from repro.analysis import (
    ascii_timeseries,
    format_table,
    performance_overhead,
    run_figure_experiment,
)
from repro.core import MigrationConfig
from repro.units import MB

SERIES = ["putc", "write", "rewrite", "getc"]


def _phase_overheads(bed, report, baseline_end):
    out = {}
    for s in SERIES:
        result = performance_overhead(
            bed.timeline, f"bonnie:{s}",
            migration_window=(report.precopy_disk_started_at,
                              report.precopy_disk_ended_at),
            baseline_window=(0.0, baseline_end))
        out[s] = result
    return out


def test_fig6_series(benchmark, scale):
    """The four throughput curves around an unthrottled migration."""
    warmup = 120.0 if scale >= 0.5 else 60.0
    report, bed = run_once(benchmark, run_figure_experiment, "bonnie",
                           scale=scale, migration_start=warmup, tail=120.0,
                           observe=observing())
    dump_trace(bed.env, "fig6_bonnie")
    overheads = _phase_overheads(bed, report, warmup)
    rows = [[s,
             overheads[s].baseline_rate / 1024,
             overheads[s].migration_rate / 1024,
             f"{overheads[s].overhead_fraction * 100:.0f} %"]
            for s in SERIES]
    # Render the figure's curve: aggregate write-phase throughput.
    times, values = bed.timeline.series("bonnie:write")
    chart = ""
    if times.size:
        import numpy as _np

        window = max(bed.env.now / 72, 1.0)
        edges = _np.arange(0.0, bed.env.now + window, window)
        sums, _ = _np.histogram(times, bins=edges, weights=values)
        chart = ascii_timeseries(
            (edges[:-1] + edges[1:]) / 2, sums / window / 1024,
            width=72, height=10,
            title=f"Figure 6 — Bonnie++ write(2) throughput (KB/s),"
                  f" scale={scale}",
            marks={"migration start": report.started_at,
                   "migration end": report.ended_at}) + "\n\n"
    emit(benchmark, "Figure 6",
         chart + format_table(
             ["series", "baseline (KB/s)", "during mig (KB/s)", "drop"],
             rows,
             title=f"Figure 6 — Bonnie++ during migration (scale={scale})"),
         **{f"{s}_drop": overheads[s].overhead_fraction for s in SERIES})
    # Paper's shape: clearly visible degradation on the write-heavy curves.
    write_drops = [overheads[s].overhead_fraction
                   for s in ("write", "rewrite")]
    assert max(write_drops) > 0.2
    assert report.consistency_verified


def test_fig6_rate_limit_study(benchmark, scale):
    """§VI-C-3: limiting migration bandwidth halves the impact, +37 % time."""
    warmup = 60.0

    def run_both():
        out = {}
        # ~36 MB/s = ~73 % of the unthrottled effective rate, the paper's
        # trade-off point (+37 % pre-copy for ~half the guest impact).
        for label, limit in (("unlimited", None), ("limited", 36 * MB)):
            cfg = MigrationConfig(rate_limit=limit)
            report, bed = run_figure_experiment(
                "bonnie", scale=scale, migration_start=warmup, tail=60.0,
                config=cfg)
            overheads = _phase_overheads(bed, report, warmup)
            impact = float(np.mean([overheads[s].overhead_fraction
                                    for s in ("write", "rewrite")]))
            precopy = (report.precopy_disk_ended_at
                       - report.precopy_disk_started_at)
            out[label] = (impact, precopy, report)
        return out

    results = run_once(benchmark, run_both)
    unl_impact, unl_pre, _ = results["unlimited"]
    lim_impact, lim_pre, _ = results["limited"]
    lengthening = (lim_pre / unl_pre - 1.0) * 100 if unl_pre else 0.0
    reduction = (1.0 - lim_impact / unl_impact) * 100 if unl_impact else 0.0
    rows = [
        ["impact reduction from limiting", "~50 %", f"{reduction:.0f} %"],
        ["pre-copy lengthening", "~37 %", f"{lengthening:.0f} %"],
        ["unlimited impact", "-", f"{unl_impact * 100:.0f} %"],
        ["limited impact", "-", f"{lim_impact * 100:.0f} %"],
        ["unlimited pre-copy (s)", "-", unl_pre],
        ["limited pre-copy (s)", "-", lim_pre],
    ]
    emit(benchmark, "Figure 6 rate limit",
         format_table(["metric", "paper", "measured"], rows,
                      title=f"§VI-C-3 — migration rate limiting"
                            f" (scale={scale})"),
         impact_reduction=reduction, precopy_lengthening=lengthening)
    assert lim_impact < unl_impact          # limiting helps the guest
    assert lim_pre > 1.15 * unl_pre         # ...at the cost of a longer copy
