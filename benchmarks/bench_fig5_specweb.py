"""Figure 5 — SPECweb banking throughput during migration.

Paper (CLUSTER'08, §VI-C-1, Fig. 5): the server's throughput curve over
~1700 s, with the migration in the middle, shows **no noticeable drop**.
This benchmark regenerates the series (time, MB/s) and checks the
overhead/disruption metrics quantitatively.
"""

import numpy as np

from conftest import dump_trace, emit, observing, run_once
from repro.analysis import (
    ascii_timeseries,
    disruption_time,
    format_table,
    mean_rate,
    performance_overhead,
    run_figure_experiment,
)


def test_fig5_series(benchmark, scale):
    report, bed = run_once(benchmark, run_figure_experiment, "specweb",
                           scale=scale, migration_start=60.0, tail=120.0,
                           observe=observing())
    dump_trace(bed.env, "fig5_specweb")
    tl = bed.timeline
    window = 10.0
    centres, rates = tl.windowed_rate("specweb:throughput", window,
                                      t_end=bed.env.now)
    # Print a decimated series: the figure's curve, one row per ~60 s.
    step = max(len(centres) // 24, 1)
    rows = [[f"{t:.0f}", r / 2**20] for t, r in
            zip(centres[::step], rates[::step])]
    overhead = performance_overhead(
        tl, "specweb:throughput",
        migration_window=(report.started_at, report.ended_at),
        baseline_window=(0.0, 60.0))
    baseline = mean_rate(tl, "specweb:throughput", 0.0, 60.0)
    disrupted = disruption_time(tl, "specweb:throughput",
                                (report.started_at, report.ended_at),
                                baseline, bin_width=5.0, threshold=0.85)
    chart = ascii_timeseries(
        centres, rates / 2**20, width=72, height=10,
        title=f"Figure 5 — SPECweb throughput (MB/s), scale={scale}",
        marks={"migration start": report.started_at,
               "migration end": report.ended_at})
    table = format_table(["time (s)", "throughput (MB/s)"], rows,
                         title=f"Figure 5 — series (migration "
                               f"{report.started_at:.0f}-{report.ended_at:.0f} s)")
    table = chart + "\n\n" + table
    summary = format_table(
        ["metric", "paper", "measured"],
        [["throughput drop during migration", "no noticeable drop",
          f"{overhead.overhead_fraction * 100:.1f} %"],
         ["disruption time (s)", "~0", disrupted]],
        title="Figure 5 — summary")
    emit(benchmark, "Figure 5", table + "\n\n" + summary,
         overhead_percent=overhead.overhead_fraction * 100,
         disruption_s=disrupted)

    # The paper's claim: the curve stays flat through the migration.
    assert overhead.overhead_fraction < 0.12
    assert report.consistency_verified
