"""Ablation C (§II) — TPM against the four competing migration schemes.

All five schemes run on the identical simulated testbed and workload, so
the paper's comparative claims become one table:

* freeze-and-copy has downtime equal to the whole transfer;
* shared-storage live migration has tiny downtime but moves no disk;
* on-demand fetching has tiny downtime but an unbounded source dependency;
* delta-queue (Bradford) is live but blocks I/O after resume and ships
  rewritten blocks redundantly;
* TPM is live, has tiny downtime, finite dependency, and no redundancy
  beyond pre-copy retransfers.
"""

import pytest

from conftest import dump_trace, emit, observing, run_once
from repro.analysis import format_table
from repro.analysis.experiments import run_baseline_experiment

#: Scale for the scheme comparison: large enough that transfer dominates,
#: small enough that five schemes run in seconds.
ABLATION_SCALE = 0.02


def test_scheme_comparison(benchmark, scale):
    comp_scale = min(scale, ABLATION_SCALE)

    def run_all():
        rows = {}
        for scheme in ("tpm", "shared-storage", "freeze-and-copy",
                       "delta-queue", "on-demand"):
            report, bed, mig = run_baseline_experiment(
                scheme, "specweb", scale=comp_scale, warmup=10.0, tail=10.0,
                observe=observing())
            rows[scheme] = (report, mig)
            if scheme == "on-demand":
                mig.stop()
                bed.env.run(until=bed.env.now + 0.1)
            dump_trace(bed.env, f"baseline_{scheme}")
        return rows

    results = run_once(benchmark, run_all)

    def describe(scheme):
        report, mig = results[scheme]
        if scheme == "on-demand":
            dependency = f"UNBOUNDED ({mig.residual_blocks} blocks left)"
        else:
            dependency = {
                "tpm": "finite (post-copy)",
                "shared-storage": "none (shared disk)",
                "freeze-and-copy": "none",
                "delta-queue": "none after replay",
            }[scheme]
        moves_disk = "no" if scheme == "shared-storage" else "yes"
        io_block = report.extra.get("io_block_time", 0.0)
        return [scheme, report.downtime * 1e3,
                report.total_migration_time, report.migrated_mb,
                moves_disk, f"{io_block * 1e3:.0f} ms", dependency]

    rows = [describe(s) for s in results]
    emit(benchmark, "schemes",
         format_table(["scheme", "downtime (ms)", "total (s)", "data (MB)",
                       "moves disk", "I/O block", "source dependency"],
                      rows,
                      title=f"Ablation C — migration schemes"
                            f" (SPECweb, scale={comp_scale})"))

    tpm, _ = results["tpm"]
    fc, _ = results["freeze-and-copy"]
    dq, _ = results["delta-queue"]
    od, od_mig = results["on-demand"]
    # The paper's qualitative matrix:
    assert tpm.downtime < 0.05 * fc.downtime
    assert fc.downtime == pytest.approx(fc.total_migration_time, rel=0.01)
    assert od_mig.residual_blocks > 0          # irremovable dependency
    assert dq.extra["io_block_time"] >= 0      # replay blocks guest I/O
    assert tpm.consistency_verified and dq.consistency_verified


def test_delta_redundancy_vs_bitmap(benchmark, scale):
    """§IV-A-2's punchline: rewrites cost the delta queue, not the bitmap."""
    comp_scale = min(scale, ABLATION_SCALE)

    def run_pair():
        dq, _, dq_mig = run_baseline_experiment(
            "delta-queue", "kernelbuild", scale=comp_scale,
            warmup=30.0, tail=5.0)
        tpm, _, _ = run_baseline_experiment(
            "tpm", "kernelbuild", scale=comp_scale, warmup=30.0, tail=5.0)
        return dq, dq_mig, tpm

    dq, dq_mig, tpm = run_once(benchmark, run_pair)
    rows = [
        ["deltas forwarded", dq.extra["delta_count"]],
        ["redundant blocks in delta queue", dq.extra["redundant_blocks"]],
        ["post-resume I/O block time (ms)",
         dq.extra["io_block_time"] * 1e3],
        ["TPM retransferred blocks (pre-copy)", tpm.retransferred_blocks],
        ["TPM post-copy blocks",
         tpm.postcopy.pushed_blocks + tpm.postcopy.pulled_blocks],
        ["TPM I/O block time", "0 (lazy synchronization)"],
    ]
    emit(benchmark, "delta redundancy",
         format_table(["metric", "value"], rows,
                      title="Ablation C — delta-queue redundancy vs bitmap"
                            " (kernel build)"))
    assert dq.extra["redundant_blocks"] > 0
