"""Fault recovery — bitmap-based incremental retry vs restart-from-scratch.

The paper motivates Incremental Migration (§V) as cheap recovery: "if the
migration fails, the user can resume the virtual machine on the source
machine and retry later".  This benchmark quantifies that story.  A link
blackout is injected at a fraction of the way through the disk pre-copy;
the migration dies, the source keeps its write-tracking bitmap, and the
retry either

* **bitmap retry** — resumes incrementally, transferring only the blocks
  dirtied or never confirmed before the failure, or
* **scratch retry** — discards the recovery state and re-sends the whole
  device (what a bitmap-less implementation must do), or
* **delta baseline** — the Bradford-style delta-queue migration, which has
  no partial-copy bookkeeping at all: every byte of the failed attempt is
  wasted and the retry pays the full clean cost again.

All runs are seeded and deterministic; the gap is reported per
failure-injection time.
"""

import numpy as np
import pytest

from conftest import dump_trace, emit, observing, run_once
from repro.analysis import format_table
from repro.baselines import DeltaQueueMigration
from repro.core import MigrationConfig, MigrationRetrier, Migrator
from repro.errors import ReproError
from repro.faults import FaultInjector, FaultPlan
from repro.net import Channel
from repro.sim import Environment
from repro.storage import GenerationClock, PhysicalDisk
from repro.units import Gbps, MiB
from repro.vm import Domain, GuestMemory, Host

SEND_TIMEOUT = 0.25
BLACKOUT = 1.0
BACKOFF = 1.0
FRACTIONS = (0.25, 0.5, 0.75)


class FaultBed:
    """Two machines, one domain, a seeded writer — fresh env per run."""

    def __init__(self, scale, seed=42):
        self.env = env = Environment()
        if observing():
            from repro.obs import install

            install(env)
        self.clock = GenerationClock()
        self.nblocks = max(20_000, int(200_000 * scale))
        self.npages = 8_192
        self.config = MigrationConfig(
            chunk_blocks=256, disk_dirty_threshold_blocks=64,
            mem_dirty_threshold_pages=64, mem_chunk_pages=512)
        self.source = Host(env, "source",
                           PhysicalDisk(env, 200 * MiB, 200 * MiB, 0.2e-3),
                           self.clock)
        self.destination = Host(
            env, "destination",
            PhysicalDisk(env, 200 * MiB, 200 * MiB, 0.2e-3), self.clock)
        self.vbd = self.source.prepare_vbd(self.nblocks)
        self.vbd.write(0, self.nblocks)
        self.domain = Domain(env, GuestMemory(self.npages, clock=self.clock),
                             name="vm")
        self.source.attach_domain(self.domain, self.vbd)
        self.migrator = Migrator(env, self.config)
        self.migrator.connect(self.source, self.destination,
                              bandwidth=1 * Gbps, latency=100e-6)
        self._start_writer(seed)

    def _start_writer(self, seed):
        rng = np.random.default_rng(seed)
        domain = self.domain
        region = self.nblocks // 4

        def proc(env):
            while True:
                yield from domain.ensure_running()
                block = int(rng.integers(0, region))
                yield from domain.write(block, 4)
                # A host crash may have suspended the domain mid-write;
                # never dirty memory while frozen.
                yield from domain.ensure_running()
                domain.touch_memory(rng.integers(0, domain.memory.npages,
                                                 size=8))
                yield env.timeout(0.002)

        self.env.process(proc(self.env), name="writer")


def disk_precopy_window(scale):
    """Disk pre-copy [start, end) of an identical fault-free migration."""
    bed = FaultBed(scale)
    proc = bed.migrator.migrate_process(bed.domain, bed.destination)
    report = bed.env.run(until=proc)
    assert report.consistency_verified
    return (report.precopy_disk_started_at, report.precopy_disk_ended_at,
            report)


def disk_bytes_all_attempts(report):
    attempts = list(report.failed_attempts) + [report]
    return sum(r.bytes_by_category.get("disk", 0) for r in attempts)


def run_tpm_with_fault(scale, fail_at, incremental):
    bed = FaultBed(scale)
    plan = FaultPlan(send_timeout=SEND_TIMEOUT).blackout(duration=BLACKOUT,
                                                         at=fail_at)
    FaultInjector(bed.env, plan).inject(bed.migrator)
    retrier = MigrationRetrier(bed.migrator, max_attempts=3,
                               initial_backoff=BACKOFF,
                               incremental=incremental)
    proc = retrier.migrate_process(bed.domain, bed.destination)
    report = bed.env.run(until=proc)
    dump_trace(bed.env,
               f"fault_retry_{'bitmap' if incremental else 'scratch'}"
               f"_at{fail_at:.2f}")
    return report


def run_delta(scale, fail_at=None):
    """One delta-queue migration; returns (ok, forward-link wire bytes)."""
    bed = FaultBed(scale)
    if fail_at is not None:
        plan = FaultPlan(send_timeout=SEND_TIMEOUT).blackout(
            duration=BLACKOUT, at=fail_at)
        FaultInjector(bed.env, plan).inject(bed.migrator)
    fwd_link, rev_link = bed.migrator.link_between(bed.source,
                                                   bed.destination)
    fwd = Channel(bed.env, fwd_link, name="delta:fwd")
    rev = Channel(bed.env, rev_link, name="delta:rev")
    migration = DeltaQueueMigration(bed.env, bed.domain, bed.source,
                                    bed.destination, fwd, rev, bed.config)
    proc = bed.env.process(migration.run(), name="delta")
    try:
        bed.env.run(until=proc)
        return True, fwd_link.bytes_sent
    except ReproError:
        # The delta scheme has no recovery machinery: the attempt is dead
        # and every byte it moved is wasted.
        return False, fwd_link.bytes_sent


def test_fault_recovery_sweep(benchmark, scale):
    def sweep():
        t0, t1, baseline = disk_precopy_window(scale)
        _, clean_delta_bytes = run_delta(scale)
        out = []
        for frac in FRACTIONS:
            fail_at = t0 + frac * (t1 - t0)
            inc = run_tpm_with_fault(scale, fail_at, incremental=True)
            scratch = run_tpm_with_fault(scale, fail_at, incremental=False)
            ok, wasted = run_delta(scale, fail_at=fail_at)
            assert not ok  # the fault kills the recovery-free baseline
            out.append((frac, inc, scratch, wasted))
        return baseline, clean_delta_bytes, out

    baseline, clean_delta_bytes, results = run_once(benchmark, sweep)

    rows = []
    gaps = []
    for frac, inc, scratch, wasted in results:
        inc_disk = disk_bytes_all_attempts(inc)
        scratch_disk = disk_bytes_all_attempts(scratch)
        delta_total = wasted + clean_delta_bytes
        gap = scratch_disk - inc_disk
        gaps.append(gap)
        rows.append([f"{frac:.0%}", inc_disk / 2**20, scratch_disk / 2**20,
                     delta_total / 2**20, gap / 2**20])

        # Acceptance criterion: the bitmap retry moves strictly fewer
        # disk bytes than restarting from scratch, at every fail time.
        assert inc.attempts == 2 and scratch.attempts == 2
        assert inc.consistency_verified and scratch.consistency_verified
        assert inc_disk < scratch_disk
        # And both beat the bookkeeping-free delta baseline's restart.
        assert scratch_disk <= delta_total

    # The later the failure, the more confirmed blocks the bitmap saves.
    assert gaps[-1] > gaps[0]

    emit(benchmark, "Fault recovery",
         format_table(
             ["fail point", "bitmap retry (MiB)", "scratch retry (MiB)",
              "delta restart (MiB)", "bitmap saves (MiB)"], rows,
             title=(f"Disk bytes over all attempts, blackout at a fraction "
                    f"of disk pre-copy (scale={scale})")),
         baseline_disk_mb=baseline.bytes_by_category["disk"] / 2**20,
         gap_mb=[g / 2**20 for g in gaps])


def run_rack_evacuation(scale, retry):
    """Drain rack0 into rack1 while a partition isolates rack1.

    All three rack0 hosts enter maintenance, so every evacuation job is
    forced across the fabric — straight into a partition that heals at
    t=1.0.  With recovery off the jobs hitting the cut are dead; with a
    RetryPolicy they back off, optionally re-place, and finish on the
    preserved bitmap once the cut heals.
    """
    from repro.cluster import (RetryPolicy, build_cluster, check_invariants)

    policy = (RetryPolicy(max_attempts=5, initial_backoff=0.4,
                          max_backoff=2.0) if retry else None)
    bed = build_cluster(nhosts=6, vms_per_host=2, wiring="rack",
                        rack_size=3, nblocks=max(256, int(4096 * scale)),
                        npages=64, retry=policy, health=retry)
    expected_ids = {domain.domain_id for domain in bed.domains}
    plan = (FaultPlan(send_timeout=SEND_TIMEOUT)
            .partition(["rack1"], duration=1.0, at=0.0))
    injector = FaultInjector(bed.env, plan).inject(bed.migrator)
    if bed.scheduler.health is not None:
        bed.scheduler.health.attach(injector)
    jobs = []
    for host in bed.hosts[:3]:  # rack0
        host.enter_maintenance()
    for host in bed.hosts[:3]:
        jobs.append(bed.scheduler.evacuate(host))
    jobs = [job for group in jobs for job in group]
    bed.scheduler.drain(jobs)
    violations = check_invariants(bed, expected_ids)
    assert violations == [], violations
    return bed, jobs


def test_cluster_evacuation_under_partition(benchmark, scale):
    """Cluster-level recovery: a rack drain interrupted by a partition
    loses every crossing job without a RetryPolicy and none with one."""

    def run_pair():
        return run_rack_evacuation(scale, retry=False), \
               run_rack_evacuation(scale, retry=True)

    (bed_off, jobs_off), (bed_on, jobs_on) = run_once(benchmark, run_pair)

    ok_off = sum(1 for job in jobs_off if job.succeeded)
    ok_on = sum(1 for job in jobs_on if job.succeeded)
    attempts_on = sum(max(job.attempts, 1) for job in jobs_on)

    # Acceptance criteria: the partition kills work without recovery,
    # and the retry path saves every job via bitmap-incremental
    # reattempts (so attempts > jobs).
    assert len(bed_off.scheduler.dead_letter) >= 1
    assert ok_on == len(jobs_on)
    assert not bed_on.scheduler.dead_letter
    assert ok_on > ok_off
    assert attempts_on > len(jobs_on)
    # Every surviving rack0 host is empty on the retry path.
    assert all(not host.domains for host in bed_on.hosts[:3])

    rows = [
        ["retry off", ok_off, len(bed_off.scheduler.dead_letter),
         sum(max(job.attempts, 1) for job in jobs_off),
         bed_off.scheduler.makespan(jobs_off)],
        ["retry on", ok_on, len(bed_on.scheduler.dead_letter),
         attempts_on, bed_on.scheduler.makespan(jobs_on)],
    ]
    emit(benchmark, "Evacuation under partition",
         format_table(
             ["policy", "jobs ok", "dead-lettered", "attempts",
              "makespan (s)"], rows,
             title=(f"Rack drain through a 1s partition of rack1 "
                    f"(6 jobs, scale={scale})")),
         ok_with_retry=ok_on, ok_without_retry=ok_off,
         dead_lettered_without_retry=len(bed_off.scheduler.dead_letter))


def test_fault_free_run_matches_baseline(benchmark, scale):
    """Zero-cost criterion: attaching an injector with an empty plan
    changes not a single reported number."""

    def run_pair():
        plain_bed = FaultBed(scale)
        proc = plain_bed.migrator.migrate_process(plain_bed.domain,
                                                  plain_bed.destination)
        plain = plain_bed.env.run(until=proc)

        faulted_bed = FaultBed(scale)
        FaultInjector(faulted_bed.env, FaultPlan()).inject(
            faulted_bed.migrator)
        proc = faulted_bed.migrator.migrate_process(faulted_bed.domain,
                                                    faulted_bed.destination)
        faulted = faulted_bed.env.run(until=proc)
        return plain, faulted

    plain, faulted = run_once(benchmark, run_pair)
    assert plain.bytes_by_category == faulted.bytes_by_category
    assert plain.total_migration_time == faulted.total_migration_time
    assert plain.downtime == faulted.downtime
    emit(benchmark, "Zero-cost check",
         f"fault layer idle: {plain.migrated_bytes} B == "
         f"{faulted.migrated_bytes} B, "
         f"t={plain.total_migration_time:.3f}s identical",
         migrated_bytes=plain.migrated_bytes)
