"""Ablation D (§IV-A-1/3) — push-and-pull vs pure pull post-copy.

The paper combines push and pull "to make the post migration convergent,
avoiding a long residual dependency on the source by the pure on-demand
fetching approach".  This ablation fabricates the post-freeze state (a
known dirty set, both bitmaps marking it) and runs the synchronizer in
both modes against the same guest, then sweeps the push batch size.
"""

import numpy as np
import pytest

from conftest import dump_trace, emit, observing, run_once
from repro.analysis import format_table
from repro.bitmap import FlatBitmap
from repro.core import MigrationConfig, PostCopySynchronizer
from repro.net import Channel
from repro.sim import Environment
from repro.storage import GenerationClock, PhysicalDisk
from repro.units import MB, MiB
from repro.vm import Domain, GuestMemory, Host

NBLOCKS = 50_000         # ~195 MiB disk
DIRTY_BLOCKS = 2_000     # ~8 MiB left for post-copy


def make_postcopy_scenario(config, guest_read_interval=0.002, seed=0):
    """Post-freeze state: domain on the destination, DIRTY_BLOCKS dirty."""
    env = Environment()
    if observing():
        from repro.obs import install

        install(env)
    clock = GenerationClock()
    source = Host(env, "src", PhysicalDisk(env, 60 * MiB, 52 * MiB, 0.5e-3),
                  clock)
    dest = Host(env, "dst", PhysicalDisk(env, 60 * MiB, 52 * MiB, 0.5e-3),
                clock)
    src_vbd = source.prepare_vbd(NBLOCKS)
    src_vbd.write(0, NBLOCKS)
    dest_vbd = dest.prepare_vbd(NBLOCKS)
    all_idx = np.arange(NBLOCKS, dtype=np.int64)
    stamps, data = src_vbd.export_blocks(all_idx)
    dest_vbd.import_blocks(all_idx, stamps, data)

    rng = np.random.default_rng(seed)
    dirty = np.sort(rng.choice(NBLOCKS, size=DIRTY_BLOCKS, replace=False))
    for b in dirty.tolist():
        src_vbd.write(int(b))  # source copy is newer for the whole set
    # Mark the whole dirty set as unsynchronized on both sides.
    bm1 = FlatBitmap(NBLOCKS)
    bm1.set_many(dirty)
    bm2 = bm1.copy()

    domain = Domain(env, GuestMemory(64, clock=clock))
    driver = dest.attach_domain(domain, dest_vbd)
    driver.start_tracking("im", FlatBitmap(NBLOCKS))

    from repro.net import Link
    fwd = Channel(env, Link(env, 125 * MB, 100e-6))
    rev = Channel(env, Link(env, 125 * MB, 100e-6))
    sync = PostCopySynchronizer(env, source.disk, src_vbd, dest.disk,
                                dest_vbd, driver, fwd, rev,
                                source_bitmap=bm1, transferred_bitmap=bm2,
                                config=config)
    driver.interceptor = sync.intercept

    # A guest that scans the dirty region front to back (so pull-only can
    # converge at all) at a realistic read rate.
    def guest(env):
        for b in dirty.tolist():
            yield from domain.read(int(b))
            yield env.timeout(guest_read_interval)

    guest_proc = env.process(guest(env))
    return env, sync, guest_proc


def run_mode(push: bool):
    cfg = MigrationConfig(postcopy_push=push, suspend_overhead=0,
                          resume_overhead=0)
    env, sync, guest = make_postcopy_scenario(cfg)

    def runner(env):
        return (yield from sync.run())

    stats = env.run(until=env.process(runner(env)))
    dump_trace(env, f"postcopy_{'push_pull' if push else 'pull_only'}")
    return stats


def test_push_vs_pull_only(benchmark, scale):
    """Pure pull leaves the phase hostage to the guest's access pattern."""

    def run_both():
        return {"push-and-pull": run_mode(True),
                "pull-only": run_mode(False)}

    results = run_once(benchmark, run_both)
    rows = [[label, stats.duration, stats.pushed_blocks,
             stats.pulled_blocks, stats.stalled_reads,
             stats.stall_time * 1e3]
            for label, stats in results.items()]
    emit(benchmark, "push vs pull",
         format_table(["mode", "post-copy (s)", "pushed", "pulled",
                       "stalled reads", "guest stall (ms)"], rows,
                      title="Ablation D — post-copy convergence"
                            f" ({DIRTY_BLOCKS} dirty blocks)"))
    push, pull = results["push-and-pull"], results["pull-only"]
    # Push drains the dirty set orders faster than waiting for the guest.
    assert push.duration < 0.25 * pull.duration
    assert pull.pushed_blocks == 0
    assert pull.pulled_blocks == DIRTY_BLOCKS
    # ...and spares the guest most of its read stalls.
    assert push.stalled_reads < pull.stalled_reads


def test_push_batch_size_sweep(benchmark, scale):
    """Batch size trades post-copy duration against pull-reply latency."""

    def sweep():
        rows = []
        for batch in (4, 16, 64, 256):
            cfg = MigrationConfig(push_chunk_blocks=batch,
                                  suspend_overhead=0, resume_overhead=0)
            env, sync, guest = make_postcopy_scenario(cfg)

            def runner(env):
                return (yield from sync.run())

            stats = env.run(until=env.process(runner(env)))
            rows.append([batch, stats.duration * 1e3,
                         stats.stall_time * 1e3, stats.pulled_blocks,
                         stats.pushed_blocks])
        return rows

    rows = run_once(benchmark, sweep)
    emit(benchmark, "batch sweep",
         format_table(["push batch (blocks)", "post-copy (ms)",
                       "guest stall (ms)", "pulled", "pushed"], rows,
                      title="Ablation D — push batch size"))
    durations = [r[1] for r in rows]
    # Bigger batches must not slow the phase down materially.
    assert durations[-1] <= durations[0] * 1.5
