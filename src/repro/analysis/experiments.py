"""Canned experiment setups reproducing the paper's evaluation (§VI).

The full-scale testbed mirrors the paper's environment: two machines with
SATA2-class disks on a Gigabit LAN, one unprivileged VM with 512 MiB of
memory and a 39 070 MiB VBD.  ``scale`` shrinks everything proportionally
so unit/integration tests run in milliseconds while benchmarks run the
real geometry.

Every function here is deterministic given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

import numpy as np

from ..core import MigrationConfig, MigrationReport, Migrator
from ..errors import ReproError
from ..sim import Environment, Timeline
from ..storage import PhysicalDisk
from ..units import Gbps, KiB, MiB
from ..vm import Domain, GuestMemory, Host
from ..storage.vbd import GenerationClock
from ..workloads import (
    BonniePlusPlus,
    IdleWorkload,
    KernelBuild,
    MemoryDirtier,
    SpecWebBanking,
    VideoStreamServer,
    Workload,
)

#: Paper geometry.
FULL_DISK_MIB = 39_070
FULL_MEM_PAGES = 131_072  # 512 MiB of 4 KiB pages
FULL_DISK_BLOCKS = FULL_DISK_MIB * MiB // (4 * KiB)

#: Paper's Table I, for paper-vs-measured reporting.
PAPER_TABLE1 = {
    "specweb": {"total_s": 796, "downtime_ms": 60, "data_mb": 39097},
    "video": {"total_s": 798, "downtime_ms": 62, "data_mb": 39072},
    "bonnie": {"total_s": 957, "downtime_ms": 110, "data_mb": 40934},
}

#: Paper's Table II (IM back-migration).
PAPER_TABLE2 = {
    "specweb": {"time_s": 1.0, "data_mb": 52.5},
    "video": {"time_s": 0.6, "data_mb": 5.5},
    "bonnie": {"time_s": 17.0, "data_mb": 911.4},
}

#: Paper's §IV-A-2 write-locality measurements.
PAPER_LOCALITY = {"kernelbuild": 0.11, "specweb": 0.252, "bonnie": 0.356}


@dataclass
class Testbed:
    """A ready-to-run two-machine experiment."""

    env: Environment
    source: Host
    destination: Host
    domain: Domain
    workload: Workload
    migrator: Migrator
    timeline: Timeline
    config: MigrationConfig
    scale: float = 1.0

    def start_workload(self) -> None:
        self.workload.start(self.env)

    @property
    def tracer(self):
        """The environment's tracer (a no-op unless built with observe)."""
        return self.env.tracer

    @property
    def metrics(self):
        """The environment's metrics registry (no-op unless observing)."""
        return self.env.metrics

    def dump_trace(self, path: str, fmt: str = "chrome") -> str:
        """Write the collected trace to ``path`` (``chrome`` or ``json``)."""
        from ..obs import dump_chrome_trace, dump_json

        if fmt == "chrome":
            return dump_chrome_trace(path, self.env.tracer, self.env.metrics)
        if fmt == "json":
            return dump_json(path, self.env.tracer, self.env.metrics)
        raise ReproError(f"unknown trace format {fmt!r}")

    def run_for(self, seconds: float) -> None:
        """Advance the simulation by ``seconds``."""
        self.env.run(until=self.env.now + seconds)

    def migrate(self, destination: Optional[Host] = None,
                config: Optional[MigrationConfig] = None) -> MigrationReport:
        """Migrate the domain (default: away from its current host)."""
        if destination is None:
            destination = (self.destination
                           if self.domain.host is self.source
                           else self.source)
        proc = self.migrator.migrate_process(
            self.domain, destination, config,
            workload_name=self.workload.name)
        return self.env.run(until=proc)


def _scaled_memory_dirtier(npages: int, wss: int, rate: float,
                           hot_prob: float = 0.9) -> MemoryDirtier:
    wss = max(min(wss, npages // 4), 1)
    return MemoryDirtier(npages, wss_pages=wss, pages_per_second=max(rate, 1.0),
                         hot_prob=hot_prob)


def make_workload(name: str, nblocks: int, npages: int, seed: int,
                  mem_scale: float = 1.0) -> Workload:
    """Build one of the paper's workloads with regions scaled to the disk."""
    n = nblocks
    if name == "specweb":
        return SpecWebBanking(
            seed=seed,
            data_region=(0, max(int(n * 0.20), 64)),
            log_region=(int(n * 0.20), max(int(n * 0.012), 64)),
            memory_dirtier=_scaled_memory_dirtier(
                npages, 6_000, 2_500.0 * mem_scale),
        )
    if name == "video":
        video_blocks = min(max(int(n * 0.01), 32), 53_760)
        return VideoStreamServer(
            seed=seed,
            video_region=(max(int(n * 0.02), 0), video_blocks),
            log_region=(int(n * 0.40), max(int(n * 0.001), 16)),
            memory_dirtier=_scaled_memory_dirtier(
                npages, 1_500, 400.0 * mem_scale, hot_prob=0.95),
        )
    if name == "bonnie":
        file_blocks = min(max(int(n * 0.026), 64), 262_144)
        return BonniePlusPlus(
            seed=seed,
            file_region=(max(int(n * 0.05), 0), file_blocks),
            # Seek count proportional to the file keeps the per-pass op mix
            # (and hence the rewrite-locality fraction) scale-invariant.
            seeks_per_pass=max(file_blocks // 11, 16),
            memory_dirtier=_scaled_memory_dirtier(
                npages, 4_000, 1_500.0 * mem_scale),
        )
    if name == "kernelbuild":
        # The output region must comfortably exceed what one build writes,
        # or the append frontier wraps and every write looks like a rewrite
        # (the real build tree is far larger than its object output).
        out_start = max(int(n * 0.02), 64)
        out_blocks = min(max(int(n * 0.01), 24_000), max(int(n * 0.3), 64))
        return KernelBuild(
            seed=seed,
            source_region=(0, max(int(n * 0.02), 64)),
            output_region=(out_start, out_blocks),
            memory_dirtier=_scaled_memory_dirtier(
                npages, 8_000, 4_000.0 * mem_scale, hot_prob=0.85),
        )
    if name == "idle":
        return IdleWorkload(seed=seed)
    raise ReproError(f"unknown workload {name!r}")


def build_testbed(
    workload: str = "specweb",
    scale: float = 1.0,
    seed: int = 0,
    config: Optional[MigrationConfig] = None,
    link_bandwidth: float = 1 * Gbps,
    link_latency: float = 100e-6,
    #: SATA2-era sustained rates; calibrated so the effective migration
    #: rate lands near the paper's ~49 MB/s (39 GB in ~800 s).
    disk_read_bw: float = 60 * MiB,
    disk_write_bw: float = 52 * MiB,
    seek_time: float = 0.5e-3,
    prefill: "bool | float" = True,
    service_nic: Optional[str] = None,
    observe: bool = False,
) -> Testbed:
    """Assemble the two-machine testbed of §VI-A at the given scale.

    ``prefill`` may be a fraction in [0, 1]: how much of the VBD has ever
    been written (``True`` = 1.0).  Partially-filled disks are what the
    guest-aware migration extension exploits.

    ``service_nic`` selects how client-facing traffic is modelled
    (paper §IV-A-4): ``None`` — not modelled (service bytes are free, the
    default used by the main calibration); ``"shared"`` — responses ride
    the same link the migration uses; ``"secondary"`` — responses get
    their own dedicated NIC at ``link_bandwidth``.

    ``observe=True`` installs a live :class:`~repro.obs.Tracer` and
    :class:`~repro.obs.MetricsRegistry` on the environment (see
    ``docs/OBSERVABILITY.md``); recording never advances the simulated
    clock, so results are numerically identical either way.
    """
    if not 0 < scale <= 1:
        raise ReproError(f"scale must be in (0, 1], got {scale}")
    env = Environment()
    if observe:
        from ..obs import install

        install(env)
    timeline = Timeline(env)
    clock = GenerationClock()
    source = Host(env, "source",
                  PhysicalDisk(env, disk_read_bw, disk_write_bw, seek_time),
                  clock)
    destination = Host(env, "destination",
                       PhysicalDisk(env, disk_read_bw, disk_write_bw,
                                    seek_time),
                       clock)

    nblocks = max(int(FULL_DISK_BLOCKS * scale), 256)
    npages = max(int(FULL_MEM_PAGES * scale), 64)
    vbd = source.prepare_vbd(nblocks)
    fill = 1.0 if prefill is True else (0.0 if prefill is False
                                        else float(prefill))
    if not 0.0 <= fill <= 1.0:
        raise ReproError(f"prefill fraction must be in [0, 1], got {fill}")
    filled_blocks = int(nblocks * fill)
    if filled_blocks:
        vbd.write(0, filled_blocks)

    domain = Domain(env, GuestMemory(npages, clock=clock), name="domU")
    source.attach_domain(domain, vbd)

    wl = make_workload(workload, nblocks, npages, seed, mem_scale=scale)

    cfg = config if config is not None else MigrationConfig()
    migrator = Migrator(env, cfg)
    duplex = migrator.connect(source, destination, link_bandwidth,
                              link_latency)

    service_link = None
    if service_nic == "shared":
        service_link = duplex.forward  # responses contend with migration
    elif service_nic == "secondary":
        from ..net.link import Link

        service_link = Link(env, link_bandwidth, link_latency,
                            name="service-nic")
    elif service_nic is not None:
        raise ReproError(f"unknown service_nic mode {service_nic!r}")
    wl.bind(domain, timeline, service_link=service_link)

    return Testbed(env, source, destination, domain, wl, migrator, timeline,
                   cfg, scale)


# ---------------------------------------------------------------------------
# Experiment runners (one per table / figure)
# ---------------------------------------------------------------------------


def run_table1_experiment(workload: str, scale: float = 1.0, seed: int = 0,
                          config: Optional[MigrationConfig] = None,
                          warmup: float = 20.0,
                          observe: bool = False) -> tuple[MigrationReport, Testbed]:
    """Table I: one primary TPM migration under the given workload."""
    bed = build_testbed(workload, scale=scale, seed=seed, config=config,
                        observe=observe)
    bed.start_workload()
    bed.run_for(warmup)
    report = bed.migrate()
    return report, bed


def run_table2_experiment(workload: str, scale: float = 1.0, seed: int = 0,
                          config: Optional[MigrationConfig] = None,
                          warmup: float = 20.0, dwell: float = 30.0,
                          observe: bool = False,
                          ) -> tuple[MigrationReport, MigrationReport, Testbed]:
    """Table II: primary TPM, dwell on the destination, IM back."""
    bed = build_testbed(workload, scale=scale, seed=seed, config=config,
                        observe=observe)
    bed.start_workload()
    bed.run_for(warmup)
    primary = bed.migrate()
    bed.run_for(dwell)
    back = bed.migrate()
    if not back.incremental:
        raise ReproError("back-migration unexpectedly ran as a full TPM")
    return primary, back, bed


def run_figure_experiment(workload: str, scale: float = 1.0, seed: int = 0,
                          config: Optional[MigrationConfig] = None,
                          migration_start: float = 60.0,
                          tail: float = 120.0,
                          observe: bool = False,
                          ) -> tuple[MigrationReport, Testbed]:
    """Figures 5/6: throughput time series around one migration."""
    bed = build_testbed(workload, scale=scale, seed=seed, config=config,
                        observe=observe)
    bed.start_workload()
    bed.run_for(migration_start)
    report = bed.migrate()
    bed.run_for(tail)
    bed.workload.stop()
    bed.env.run()
    return report, bed


def run_locality_experiment(workload: str, duration: float = 120.0,
                            scale: float = 0.05, seed: int = 0,
                            warmup: float = 30.0, observe: bool = False):
    """§IV-A-2: measure a workload's rewrite locality (no migration).

    For steady-flow workloads the counters are reset after ``warmup``
    (keeping the seen-block history) so the startup all-fresh transient
    does not dilute the steady-state fraction.  For phased Bonnie++ the
    paper's number describes one benchmark *run*: the file is created
    fresh (putc) and then rewritten by the later phases, so the window is
    aligned to exactly one full pass via the pass-start hook.
    """
    from .locality import attach_tracker

    bed = build_testbed(workload, scale=scale, seed=seed, observe=observe)
    tracker = attach_tracker(bed.source.driver_of(bed.domain.domain_id))
    bed.start_workload()

    if workload == "bonnie":
        captured: dict = {}

        def on_pass(index: int) -> None:
            if index == 1:
                tracker.reset()  # fresh file, fresh history: pass 2 starts
            elif index == 2 and "stats" not in captured:
                captured["stats"] = tracker.stats()

        bed.workload.pass_observers.append(on_pass)
        deadline = bed.env.now + warmup + duration * 20
        while "stats" not in captured and bed.env.now < deadline:
            bed.run_for(5.0)
        bed.workload.stop()
        bed.env.run(until=bed.env.now + 0.1)
        if "stats" not in captured:
            raise ReproError(
                "Bonnie++ never completed a full pass; raise duration/scale")
        return captured["stats"], bed

    bed.run_for(warmup)
    tracker.reset(counters_only=True)
    bed.run_for(duration)
    bed.workload.stop()
    bed.env.run(until=bed.env.now + 0.1)
    return tracker.stats(), bed


#: The five registered schemes (TPM + the four §II baselines); kept as a
#: tuple for CLI choices.  The authoritative list is the scheme registry
#: (:func:`repro.core.scheme.scheme_names`).
BASELINE_SCHEMES = ("tpm", "freeze-and-copy", "on-demand", "delta-queue",
                    "shared-storage")


def run_baseline_experiment(scheme: str, workload: str = "specweb",
                            scale: float = 0.01, seed: int = 0,
                            config: Optional[MigrationConfig] = None,
                            warmup: float = 10.0, tail: float = 20.0,
                            observe: bool = False,
                            **scheme_kwargs):
    """Run one migration scheme (TPM or a baseline) on the shared testbed.

    Every scheme — TPM included — goes through
    :meth:`~repro.core.manager.Migrator.migrate`'s registry dispatch, so
    they all share the same harness: channel wiring, rate limiting,
    history recording, fault injection, and tracing.

    Returns ``(report, bed, migration_object_or_None)``; the migration
    object (None for TPM, for backwards compatibility) exposes
    scheme-specific state such as the on-demand baseline's residual
    dependency.  ``tail`` seconds of post-migration run time let the
    on-demand baseline accumulate that behaviour before the experiment
    ends.
    """
    from ..core.scheme import get_scheme

    get_scheme(scheme)  # validate before building anything
    bed = build_testbed(workload, scale=scale, seed=seed, config=config,
                        observe=observe)
    bed.start_workload()
    bed.run_for(warmup)

    proc = bed.migrator.migrate_process(
        bed.domain, bed.destination, config, workload_name=workload,
        scheme=scheme, scheme_kwargs=scheme_kwargs or None)
    report = bed.env.run(until=proc)
    bed.run_for(tail)
    migration = (None if scheme == "tpm"
                 else bed.migrator.last_migration)
    return report, bed, migration


def run_tracking_overhead_experiment(
    workload: str = "bonnie", duration: float = 60.0, scale: float = 0.02,
    seed: int = 0, tracking_op_overhead: float = 5e-6,
) -> tuple[float, float]:
    """Table III (simulated side): guest throughput with vs without the
    block-bitmap marking cost on the write path.

    Returns ``(normal_rate, tracked_rate)`` in bytes/second.  The *real*
    cost of our bitmap implementation is measured separately by
    ``benchmarks/bench_table3_overhead.py`` with pytest-benchmark.
    """
    from ..bitmap import make_bitmap

    rates = []
    for tracked in (False, True):
        bed = build_testbed(workload, scale=scale, seed=seed)
        driver = bed.source.driver_of(bed.domain.domain_id)
        driver.tracking_op_overhead = tracking_op_overhead
        if tracked:
            driver.start_tracking(
                "im", make_bitmap(driver.vbd.nblocks, "flat"))
        bed.start_workload()
        bed.run_for(duration)
        bed.workload.stop()
        bed.env.run()
        rates.append(bed.workload.bytes_processed / duration)
    return rates[0], rates[1]
