"""Write-locality measurement (paper §IV-A-2).

The paper motivates bitmap-based synchronization over Bradford-style delta
queues by measuring how often workloads rewrite blocks they already wrote:
~11 % of write operations for a Linux kernel build, 25.2 % for SPECweb
banking, 35.6 % for Bonnie++.  Every rewrite is a block the delta queue
carries twice but the bitmap marks once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..storage.blkback import BackendDriver
from ..storage.block import IORequest


@dataclass
class LocalityStats:
    """Rewrite-locality figures for one observation window."""

    write_ops: int
    rewrite_ops: int
    blocks_written: int
    blocks_rewritten: int

    @property
    def op_rewrite_fraction(self) -> float:
        """Fraction of write *operations* touching a previously written
        block — the paper's metric."""
        return self.rewrite_ops / self.write_ops if self.write_ops else 0.0

    @property
    def block_rewrite_fraction(self) -> float:
        """Fraction of written *blocks* that were written before."""
        return (self.blocks_rewritten / self.blocks_written
                if self.blocks_written else 0.0)

    @property
    def delta_redundancy_blocks(self) -> int:
        """Blocks a forward-every-write delta queue would carry redundantly
        (a bitmap would coalesce them)."""
        return self.blocks_rewritten


class WriteLocalityTracker:
    """Observes a driver's writes and measures rewrite locality.

    Register on a backend driver::

        tracker = WriteLocalityTracker(vbd.nblocks)
        driver.write_observers.append(tracker)
    """

    def __init__(self, nblocks: int) -> None:
        self._seen = np.zeros(nblocks, dtype=bool)
        self.write_ops = 0
        self.rewrite_ops = 0
        self.blocks_written = 0
        self.blocks_rewritten = 0

    def __call__(self, request: IORequest) -> None:
        lo, hi = request.block, request.block + request.nblocks
        window = self._seen[lo:hi]
        rewritten = int(window.sum())
        self.write_ops += 1
        if rewritten:
            self.rewrite_ops += 1
        self.blocks_written += request.nblocks
        self.blocks_rewritten += rewritten
        window[:] = True

    def stats(self) -> LocalityStats:
        return LocalityStats(self.write_ops, self.rewrite_ops,
                             self.blocks_written, self.blocks_rewritten)

    def reset(self, counters_only: bool = False) -> None:
        """Start a fresh observation window.

        ``counters_only=True`` keeps the seen-blocks history — use it after
        a warm-up period so the window measures steady-state locality
        instead of the all-fresh startup transient.
        """
        if not counters_only:
            self._seen[:] = False
        self.write_ops = self.rewrite_ops = 0
        self.blocks_written = self.blocks_rewritten = 0


def attach_tracker(driver: BackendDriver) -> WriteLocalityTracker:
    """Create a tracker sized for the driver's VBD and register it."""
    tracker = WriteLocalityTracker(driver.vbd.nblocks)
    driver.write_observers.append(tracker)
    return tracker
