"""Terminal plotting: render the paper's figures as ASCII charts.

The benchmark harness regenerates Figures 5 and 6 as time series; these
helpers draw them directly in the captured pytest output so the curve
shape (flat for SPECweb, collapsed-then-recovered for Bonnie++) is
visible without any plotting dependency.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: Characters from empty to full for sparkline rendering.
SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], vmax: Optional[float] = None) -> str:
    """A one-line sparkline of ``values`` (empty string for no data)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    top = vmax if vmax is not None else float(arr.max())
    if top <= 0:
        return SPARK_LEVELS[0] * arr.size
    scaled = np.clip(arr / top, 0.0, 1.0) * (len(SPARK_LEVELS) - 1)
    return "".join(SPARK_LEVELS[int(round(s))] for s in scaled)


def ascii_timeseries(
    times: np.ndarray,
    values: np.ndarray,
    width: int = 72,
    height: int = 12,
    title: str = "",
    ylabel: str = "",
    xlabel: str = "time (s)",
    marks: Optional[dict] = None,
) -> str:
    """A multi-line ASCII chart of one series.

    ``marks`` maps labels to x positions (e.g. migration start/end); they
    are drawn as vertical guides in the plot area.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0:
        return f"{title}\n(no data)"

    t_lo, t_hi = float(times.min()), float(times.max())
    span = max(t_hi - t_lo, 1e-12)
    v_hi = max(float(values.max()), 1e-12)

    # Bin the series to the plot width (mean per column).
    columns = np.full(width, np.nan)
    idx = np.minimum(((times - t_lo) / span * (width - 1)).astype(int),
                     width - 1)
    for col in range(width):
        mask = idx == col
        if mask.any():
            columns[col] = values[mask].mean()
    # Forward-fill gaps so the curve is continuous.
    last = 0.0
    for col in range(width):
        if np.isnan(columns[col]):
            columns[col] = last
        else:
            last = columns[col]

    mark_cols = {}
    for label, x in (marks or {}).items():
        col = int(np.clip((x - t_lo) / span * (width - 1), 0, width - 1))
        mark_cols[col] = label

    rows = []
    if title:
        rows.append(title)
    levels = np.clip(columns / v_hi, 0.0, 1.0) * height
    for row in range(height, 0, -1):
        cells = []
        for col in range(width):
            if col in mark_cols:
                cells.append("|")
            elif levels[col] >= row - 0.5:
                cells.append("█" if levels[col] >= row else "▄")
            else:
                cells.append(" ")
        prefix = (f"{v_hi * row / height:10.3g} ┤" if row in (height, 1)
                  else " " * 10 + " │")
        rows.append(prefix + "".join(cells))
    rows.append(" " * 10 + " └" + "─" * width)
    left = f"{t_lo:.0f}"
    right = f"{t_hi:.0f} {xlabel}"
    rows.append(" " * 12 + left
                + " " * max(width - len(left) - len(right), 1) + right)
    if mark_cols:
        legend = ", ".join(f"| = {label}" for label in mark_cols.values())
        rows.append(" " * 12 + legend)
    if ylabel:
        rows.append(" " * 12 + f"y: {ylabel}")
    return "\n".join(rows)
