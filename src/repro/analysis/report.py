"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's tables report;
this module renders them readably in a terminal and in captured pytest
output.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Numbers are right-aligned, strings left-aligned; floats render with a
    magnitude-appropriate precision.
    """
    materialized = [list(row) for row in rows]
    str_rows = [[_cell(v) for v in row] for row in materialized]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))

    def fmt_row(texts: Sequence[str], original: Sequence[Any] | None) -> str:
        parts = []
        for i, text in enumerate(texts):
            source = original[i] if original is not None else text
            numeric = isinstance(source, (int, float)) and not isinstance(source, bool)
            parts.append(text.rjust(widths[i]) if numeric else text.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers), None))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for original, row in zip(materialized, str_rows):
        lines.append(fmt_row(row, original))
    return "\n".join(lines)


def paper_vs_measured(title: str, metric_rows: list[tuple[str, Any, Any]]) -> str:
    """Render a three-column paper-vs-measured comparison."""
    return format_table(
        ["metric", "paper", "measured"],
        [list(r) for r in metric_rows],
        title=title,
    )
