"""Throughput-derived metrics: performance overhead and disruption time.

These are the paper's two client-perspective metrics (§III-A): *overhead*
compares service throughput during migration with the unmigrated baseline;
*disruption time* is how long clients observe degraded responsiveness.
Both are computed post-hoc from the per-operation samples a workload
records into its :class:`~repro.sim.timeline.Timeline`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim import Timeline


def mean_rate(timeline: Timeline, series: str, t_start: float,
              t_end: float) -> float:
    """Mean bytes/second of ``series`` over ``[t_start, t_end)``."""
    if t_end <= t_start:
        return 0.0
    times, values = timeline.series(series)
    if times.size == 0:
        return 0.0
    mask = (times >= t_start) & (times < t_end)
    return float(values[mask].sum()) / (t_end - t_start)


@dataclass
class OverheadResult:
    """Throughput comparison across a migration window."""

    baseline_rate: float      #: bytes/s without migration influence
    migration_rate: float     #: bytes/s while migrating

    @property
    def relative_throughput(self) -> float:
        """``migration / baseline`` (1.0 = no visible impact)."""
        if self.baseline_rate == 0:
            return 1.0
        return self.migration_rate / self.baseline_rate

    @property
    def overhead_fraction(self) -> float:
        """Throughput lost to the migration (0.0 = none)."""
        return max(0.0, 1.0 - self.relative_throughput)


def performance_overhead(
    timeline: Timeline, series: str,
    migration_window: tuple[float, float],
    baseline_window: tuple[float, float],
) -> OverheadResult:
    """Paper metric: service throughput during vs without migration."""
    return OverheadResult(
        baseline_rate=mean_rate(timeline, series, *baseline_window),
        migration_rate=mean_rate(timeline, series, *migration_window),
    )


def disruption_time(
    timeline: Timeline, series: str,
    window: tuple[float, float],
    baseline_rate: float,
    bin_width: float = 1.0,
    threshold: float = 0.9,
) -> float:
    """Seconds within ``window`` where throughput fell below
    ``threshold * baseline_rate`` — the client-visible degradation time."""
    if baseline_rate <= 0 or window[1] <= window[0]:
        return 0.0
    times, values = timeline.series(series)
    if times.size == 0:
        return window[1] - window[0]
    edges = np.arange(window[0], window[1] + bin_width, bin_width)
    if edges.size < 2:
        return 0.0
    sums, _ = np.histogram(times, bins=edges, weights=values)
    rates = sums / bin_width
    degraded = rates < threshold * baseline_rate
    return float(degraded.sum()) * bin_width


def stall_free(timeline: Timeline, series: str, window: tuple[float, float],
               threshold: float) -> bool:
    """True if no sample of ``series`` in ``window`` exceeds ``threshold``.

    Used for the video experiment: playback is fluent iff every read
    latency stayed under the player-buffer threshold.
    """
    times, values = timeline.series(series)
    if times.size == 0:
        return True
    mask = (times >= window[0]) & (times < window[1])
    return bool((values[mask] <= threshold).all())
