"""Measurement and reporting: throughput metrics, write locality,
table rendering, and canned experiment setups for the paper's evaluation."""

from .experiments import (
    FULL_DISK_BLOCKS,
    FULL_DISK_MIB,
    FULL_MEM_PAGES,
    PAPER_LOCALITY,
    PAPER_TABLE1,
    PAPER_TABLE2,
    Testbed,
    build_testbed,
    make_workload,
    run_figure_experiment,
    run_locality_experiment,
    run_table1_experiment,
    run_table2_experiment,
    run_tracking_overhead_experiment,
)
from .locality import LocalityStats, WriteLocalityTracker, attach_tracker
from .plotting import ascii_timeseries, sparkline
from .report import format_table, paper_vs_measured
from .throughput import (
    OverheadResult,
    disruption_time,
    mean_rate,
    performance_overhead,
    stall_free,
)

__all__ = [
    "FULL_DISK_BLOCKS",
    "FULL_DISK_MIB",
    "FULL_MEM_PAGES",
    "LocalityStats",
    "OverheadResult",
    "PAPER_LOCALITY",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "Testbed",
    "WriteLocalityTracker",
    "ascii_timeseries",
    "attach_tracker",
    "build_testbed",
    "disruption_time",
    "format_table",
    "make_workload",
    "mean_rate",
    "paper_vs_measured",
    "sparkline",
    "performance_overhead",
    "run_figure_experiment",
    "run_locality_experiment",
    "run_table1_experiment",
    "run_table2_experiment",
    "run_tracking_overhead_experiment",
    "stall_free",
]
