"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is a schedule of adverse events — link blackouts,
bandwidth/latency degradation windows, and host crashes — that a
:class:`~repro.faults.injector.FaultInjector` wires into a testbed's
links and hosts.  Every fault is triggered either at an absolute
simulated time (``at=``) or at a named migration phase (``phase=``, with
an optional ``offset`` after the phase begins), so a plan replays
identically run after run: there is no randomness anywhere in the layer.

Phase names match the marks :class:`~repro.core.tpm.ThreePhaseMigration`
announces: ``"init"``, ``"precopy-disk"``, ``"precopy-mem"``,
``"freeze"``, ``"postcopy"``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..errors import FaultError

#: Phase marks emitted by the migration, usable as fault triggers.
PHASES = ("init", "precopy-disk", "precopy-mem", "freeze", "postcopy")

#: Valid link directions, relative to the ``Migrator.connect(a, b)`` order:
#: ``"forward"`` is the a→b direction, ``"backward"`` is b→a.
DIRECTIONS = ("forward", "backward", "both")


def _check_trigger(at: Optional[float], phase: Optional[str],
                   offset: float) -> None:
    if (at is None) == (phase is None):
        raise FaultError("exactly one of 'at' and 'phase' must be given")
    if at is not None and (not math.isfinite(at) or at < 0):
        raise FaultError(f"trigger time must be finite and >= 0, got {at!r}")
    if phase is not None and phase not in PHASES:
        raise FaultError(f"unknown phase {phase!r}; valid phases: {PHASES}")
    if offset < 0:
        raise FaultError(f"offset cannot be negative, got {offset!r}")


def _check_direction(direction: str) -> None:
    if direction not in DIRECTIONS:
        raise FaultError(
            f"unknown direction {direction!r}; valid: {DIRECTIONS}")


@dataclass(frozen=True)
class BlackoutSpec:
    """A window during which the link carries nothing at all."""

    duration: float
    at: Optional[float] = None
    phase: Optional[str] = None
    offset: float = 0.0
    direction: str = "both"

    def __post_init__(self) -> None:
        _check_trigger(self.at, self.phase, self.offset)
        _check_direction(self.direction)
        if self.duration <= 0:
            raise FaultError(
                f"blackout duration must be positive, got {self.duration!r}")


@dataclass(frozen=True)
class DegradeSpec:
    """A window of reduced bandwidth and/or added latency (WAN weather)."""

    duration: float
    at: Optional[float] = None
    phase: Optional[str] = None
    offset: float = 0.0
    direction: str = "both"
    #: Multiplier on the link's line rate while active (0 < factor <= 1).
    bandwidth_factor: float = 0.5
    #: Extra one-way propagation latency while active, in seconds.
    extra_latency: float = 0.0

    def __post_init__(self) -> None:
        _check_trigger(self.at, self.phase, self.offset)
        _check_direction(self.direction)
        if self.duration <= 0:
            raise FaultError(
                f"degradation duration must be positive, got {self.duration!r}")
        if not 0 < self.bandwidth_factor <= 1:
            raise FaultError(
                f"bandwidth_factor must be in (0, 1], got {self.bandwidth_factor!r}")
        if self.extra_latency < 0:
            raise FaultError(
                f"extra_latency cannot be negative, got {self.extra_latency!r}")


@dataclass(frozen=True)
class PartitionSpec:
    """A network partition along topology boundaries.

    ``isolate`` names the nodes on the minority side of the split —
    rack/pod switch names or individual host names; a host is on the
    isolated side when it (or, transitively, the switch it hangs off)
    is listed.  Every link *crossing* the cut blacks out in both
    directions for ``duration`` seconds and then heals.  Links interior
    to either side keep carrying traffic, so intra-rack migrations ride
    out a rack-level partition untouched while anything crossing the
    fabric times out (``send_timeout``) and fails cleanly.
    """

    isolate: tuple[str, ...]
    duration: float
    at: Optional[float] = None
    phase: Optional[str] = None
    offset: float = 0.0

    def __post_init__(self) -> None:
        _check_trigger(self.at, self.phase, self.offset)
        object.__setattr__(self, "isolate",
                           tuple(sorted(set(self.isolate))))
        if not self.isolate:
            raise FaultError("partition needs at least one node to isolate")
        if self.duration <= 0:
            raise FaultError(
                f"partition duration must be positive, got {self.duration!r}")


@dataclass(frozen=True)
class FlapSpec:
    """Deterministic link flapping: ``count`` outages of ``down_time``
    seconds separated by ``up_time`` seconds of calm, starting at the
    trigger.

    ``link`` selects one duplex link by its endpoint node names (order
    irrelevant); ``link=None`` flaps every inter-rack fabric link —
    the classic mis-crimped-uplink failure mode.  Unlike
    :class:`BlackoutSpec` (which darkens *every* attached link), a flap
    is targeted, which is what chaos schedules and the sharded
    window-boundary tests need.
    """

    down_time: float
    up_time: float = 0.5
    count: int = 1
    link: Optional[tuple[str, str]] = None
    at: Optional[float] = None
    phase: Optional[str] = None
    offset: float = 0.0
    direction: str = "both"

    def __post_init__(self) -> None:
        _check_trigger(self.at, self.phase, self.offset)
        _check_direction(self.direction)
        if self.down_time <= 0:
            raise FaultError(
                f"flap down_time must be positive, got {self.down_time!r}")
        if self.up_time <= 0:
            raise FaultError(
                f"flap up_time must be positive, got {self.up_time!r}")
        if self.count < 1:
            raise FaultError(f"flap count must be >= 1, got {self.count!r}")
        if self.link is not None:
            if len(self.link) != 2 or not all(self.link):
                raise FaultError(
                    f"flap link must be two node names, got {self.link!r}")
            object.__setattr__(self, "link", tuple(self.link))

    def windows(self, start: float) -> list[tuple[float, float]]:
        """The ``(start, end)`` blackout windows of one flap episode."""
        period = self.down_time + self.up_time
        return [(start + k * period, start + k * period + self.down_time)
                for k in range(self.count)]


@dataclass(frozen=True)
class CrashSpec:
    """A host failure.

    With ``down_for=None`` (the default) the machine drops off the
    network for good; with a positive ``down_for`` it restarts after that
    many seconds — in-memory state is still lost, but anything persisted
    to the host's stable storage (see :mod:`repro.persist`) becomes
    recoverable once it is back up.
    """

    host: str
    at: Optional[float] = None
    phase: Optional[str] = None
    offset: float = 0.0
    down_for: Optional[float] = None

    def __post_init__(self) -> None:
        _check_trigger(self.at, self.phase, self.offset)
        if not self.host:
            raise FaultError("crash needs a host name")
        if self.down_for is not None and self.down_for <= 0:
            raise FaultError(
                f"down_for must be positive when set, got {self.down_for!r}")


@dataclass
class FaultPlan:
    """A deterministic schedule of faults for one experiment.

    ``send_timeout`` is the failure-detection knob: a send that would have
    to wait longer than this inside a blackout raises
    :class:`~repro.errors.NetworkError` instead (TCP-timeout analogue);
    shorter stalls are invisible to the sender apart from the added delay.
    """

    send_timeout: float = 0.25
    blackouts: list[BlackoutSpec] = field(default_factory=list)
    degradations: list[DegradeSpec] = field(default_factory=list)
    crashes: list[CrashSpec] = field(default_factory=list)
    partitions: list[PartitionSpec] = field(default_factory=list)
    flaps: list[FlapSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.send_timeout <= 0:
            raise FaultError(
                f"send_timeout must be positive, got {self.send_timeout!r}")

    # -- builder helpers (each returns self, for chaining) ---------------

    def blackout(self, duration: float, at: Optional[float] = None,
                 phase: Optional[str] = None, offset: float = 0.0,
                 direction: str = "both") -> "FaultPlan":
        """Schedule a total link outage of ``duration`` seconds."""
        self.blackouts.append(BlackoutSpec(duration, at, phase, offset,
                                           direction))
        return self

    def degrade(self, duration: float, at: Optional[float] = None,
                phase: Optional[str] = None, offset: float = 0.0,
                direction: str = "both", bandwidth_factor: float = 0.5,
                extra_latency: float = 0.0) -> "FaultPlan":
        """Schedule a bandwidth/latency degradation window."""
        self.degradations.append(DegradeSpec(
            duration, at, phase, offset, direction, bandwidth_factor,
            extra_latency))
        return self

    def crash(self, host: str, at: Optional[float] = None,
              phase: Optional[str] = None, offset: float = 0.0,
              down_for: Optional[float] = None) -> "FaultPlan":
        """Schedule a host failure (permanent unless ``down_for`` is set)."""
        self.crashes.append(CrashSpec(host, at, phase, offset, down_for))
        return self

    def partition(self, isolate, duration: float,
                  at: Optional[float] = None, phase: Optional[str] = None,
                  offset: float = 0.0) -> "FaultPlan":
        """Schedule a topology partition isolating the named nodes."""
        self.partitions.append(PartitionSpec(tuple(isolate), duration,
                                             at, phase, offset))
        return self

    def flap(self, down_time: float, up_time: float = 0.5, count: int = 1,
             link: Optional[tuple[str, str]] = None,
             at: Optional[float] = None, phase: Optional[str] = None,
             offset: float = 0.0, direction: str = "both") -> "FaultPlan":
        """Schedule deterministic flapping on one link (or all fabric)."""
        self.flaps.append(FlapSpec(down_time, up_time, count, link,
                                   at, phase, offset, direction))
        return self

    @property
    def empty(self) -> bool:
        """True when the plan schedules no fault at all."""
        return not (self.blackouts or self.degradations or self.crashes
                    or self.partitions or self.flaps)

    def narrowed_to(self, hosts) -> "FaultPlan":
        """A copy whose crash specs are restricted to ``hosts`` (names).

        Link-scoped specs (blackouts, degradations, partitions, flaps)
        are kept verbatim — they simply match nothing on topologies that
        lack the named links.  This is how a single cluster-wide plan is
        split across :class:`~repro.cluster.sharded.ShardedCluster`
        shards, each of which knows only its own hosts.
        """
        known = set(hosts)
        plan = FaultPlan(send_timeout=self.send_timeout)
        plan.blackouts = list(self.blackouts)
        plan.degradations = list(self.degradations)
        plan.partitions = list(self.partitions)
        plan.flaps = list(self.flaps)
        plan.crashes = [spec for spec in self.crashes if spec.host in known]
        return plan
