"""Deterministic fault injection for migration experiments.

The simulation's perfect network is a lie production systems cannot
afford: the paper's own robustness story (§V — incremental migration as
cheap recovery) only matters because migrations fail.  This package makes
them fail on purpose, reproducibly:

* :class:`FaultPlan` — a declarative schedule of link blackouts,
  bandwidth/latency degradation windows, host crashes, topology
  partitions (:class:`PartitionSpec`) and deterministic link flapping
  (:class:`FlapSpec`), triggered at absolute simulated times or at
  migration phase marks;
* :class:`FaultInjector` — wires a plan into the links and hosts of a
  testbed (``FaultInjector(env, plan).inject(migrator)``).

A failed pre-copy raises :class:`~repro.errors.MigrationFailed`, keeps
the source's write-tracking bitmap registered, and preserves the
destination's partial copy; :class:`~repro.core.manager.MigrationRetrier`
then retries with exponential backoff, transferring only the blocks
dirtied or unconfirmed since the failure.
"""

from .injector import FaultInjector, LinkFaultState
from .plan import (
    DIRECTIONS,
    PHASES,
    BlackoutSpec,
    CrashSpec,
    DegradeSpec,
    FaultPlan,
    FlapSpec,
    PartitionSpec,
)

__all__ = [
    "BlackoutSpec",
    "CrashSpec",
    "DIRECTIONS",
    "DegradeSpec",
    "FaultInjector",
    "FaultPlan",
    "FlapSpec",
    "LinkFaultState",
    "PHASES",
    "PartitionSpec",
]
