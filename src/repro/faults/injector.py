"""Wiring a :class:`~repro.faults.plan.FaultPlan` into a live testbed.

The injector owns one :class:`LinkFaultState` per link direction and
installs it as the link's ``faults`` hook; a link with no hook runs the
exact pre-fault code path, so the layer costs nothing when unused.

Blackout semantics (failure detection): a transmit that starts inside a
blackout waits for the window to end, but if the remaining wait would
exceed the plan's ``send_timeout`` the sender burns exactly the timeout
and then raises :class:`~repro.errors.NetworkError` — the deterministic
analogue of a TCP connection timing out.  Adjacent windows chain: the
timeout budget spans consecutive outages, not each one separately.

A host crash marks ``host.crashed`` and puts every attached link into a
permanent blackout, so both the victim's peers and any in-flight
migration observe it as an unrecoverable network failure.

This is the failure model behind the paper's §V motivation for
Incremental Migration ("if the migration fails, the user can resume the
virtual machine on the source machine and retry later"): the injector
kills an attempt deterministically, and the retrier's bitmap-based retry
demonstrates the cheap-recovery claim.

Observability (see docs/OBSERVABILITY.md): with a real tracer installed
the injector emits ``fault:*`` instants (blackout start/end, degradation
windows, crashes, send timeouts) and counts ``faults.send_timeouts``, so
a fault-recovery trace shows exactly where each attempt died.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..errors import FaultError, NetworkError
from ..net.link import DuplexLink, Link
from .plan import (BlackoutSpec, CrashSpec, DegradeSpec, FaultPlan,
                   FlapSpec, PartitionSpec)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.manager import Migrator
    from ..net.topology import Topology
    from ..sim import Environment


def _direction_matches(spec_direction: str, link_tag: str) -> bool:
    return spec_direction == "both" or spec_direction == link_tag


class LinkFaultState:
    """Fault windows affecting one :class:`~repro.net.link.Link` direction."""

    def __init__(self, env: "Environment", send_timeout: float) -> None:
        self.env = env
        self.send_timeout = float(send_timeout)
        #: Blackout windows as ``(start, end)``; ``end`` may be ``inf``.
        self._blackouts: list[tuple[float, float]] = []
        #: Degradation windows as ``(start, end, bw_factor, extra_latency)``.
        self._degradations: list[tuple[float, float, float, float]] = []
        #: Sends that died in a blackout (observability for tests/benchmarks).
        self.timed_out_sends = 0

    # -- window management -------------------------------------------------

    def add_blackout(self, start: float, end: float) -> None:
        self._blackouts.append((float(start), float(end)))

    def end_permanent_blackouts(self, at: float) -> None:
        """Close every open-ended blackout at ``at`` (host restarted)."""
        self._blackouts = [
            (start, float(at) if end == float("inf") else end)
            for start, end in self._blackouts]

    def add_degradation(self, start: float, end: float, factor: float,
                        extra_latency: float) -> None:
        self._degradations.append((float(start), float(end), float(factor),
                                   float(extra_latency)))

    # -- queries -----------------------------------------------------------

    def blackout_until(self, now: float) -> Optional[float]:
        """End of the blackout active at ``now``, or None when the link is up."""
        end: Optional[float] = None
        for start, stop in self._blackouts:
            if start <= now < stop and (end is None or stop > end):
                end = stop
        return end

    def bandwidth_factor(self, now: float) -> float:
        """Combined line-rate multiplier of the degradations active at ``now``."""
        factor = 1.0
        for start, stop, bw, _lat in self._degradations:
            if start <= now < stop:
                factor *= bw
        return factor

    def extra_latency(self, now: float) -> float:
        """Summed extra propagation latency of active degradations."""
        return sum(lat for start, stop, _bw, lat in self._degradations
                   if start <= now < stop)

    # -- the transmit gate -------------------------------------------------

    def gate(self, link: Link) -> Generator:
        """Hold a transmit while a blackout is active (``yield from``).

        Raises :class:`NetworkError` once the accumulated stall exceeds
        ``send_timeout``, spending exactly the timeout in simulated time
        first so failure detection is never free.
        """
        waited = 0.0
        while True:
            until = self.blackout_until(self.env.now)
            if until is None:
                return
            remaining = until - self.env.now
            if waited + remaining > self.send_timeout:
                grace = self.send_timeout - waited
                if grace > 0:
                    yield self.env.timeout(grace)
                self.timed_out_sends += 1
                self.env.metrics.counter("faults.send_timeouts").inc()
                self.env.tracer.instant("fault:send-timeout",
                                        category="fault", link=link.name,
                                        waited=self.send_timeout)
                raise NetworkError(
                    f"link {link.name!r}: send timed out after "
                    f"{self.send_timeout:.3f}s of blackout")
            yield self.env.timeout(remaining)
            waited += remaining


class FaultInjector:
    """Applies one :class:`FaultPlan` to the links and hosts of a testbed.

    Typical use::

        plan = FaultPlan().blackout(duration=2.0, at=5.0)
        injector = FaultInjector(env, plan).inject(migrator)

    ``inject`` attaches fault state to every connected link, registers the
    injector for migration phase marks (phase-triggered faults), and
    schedules time-triggered crashes.  ``detach`` restores every link to
    the pristine fault-free fast path.
    """

    def __init__(self, env: "Environment", plan: FaultPlan) -> None:
        self.env = env
        self.plan = plan
        #: ``id(link)`` -> fault state, for every attached link direction.
        self._states: dict[int, LinkFaultState] = {}
        #: ``(link, direction_tag)`` pairs, for direction-filtered specs.
        self._links: list[tuple[Link, str]] = []
        #: ``(duplex, (a, b))`` per attached duplex, for link-named specs
        #: (flaps) and partition cuts.
        self._duplexes: list[tuple[DuplexLink, tuple[str, str]]] = []
        self._hosts: dict[str, object] = {}
        #: host name -> links touching that host (for crash isolation).
        self._host_links: dict[str, list[Link]] = {}
        #: Specs already activated (phase triggers fire once).
        self._fired: set[tuple] = set()
        #: ``(time, description)`` log of every activated fault.
        self.log: list[tuple[float, str]] = []
        #: Set by :meth:`inject`; partitions and fabric-wide flaps need
        #: the graph to find crossing/fabric links.
        self._topology: "Optional[Topology]" = None
        #: Called as ``fn(host_name, now)`` when a planned crash fires /
        #: a crashed host restarts — the feed for
        #: :class:`~repro.cluster.health.HealthMonitor`.
        self.crash_listeners: list = []
        self.restart_listeners: list = []

    # -- attachment --------------------------------------------------------

    def _state_for(self, link: Link) -> LinkFaultState:
        state = self._states.get(id(link))
        if state is None:
            state = LinkFaultState(self.env, self.plan.send_timeout)
            self._states[id(link)] = state
            link.faults = state
        return state

    def attach(self, duplex: DuplexLink,
               hosts: tuple[str, str] = ("", "")) -> "FaultInjector":
        """Wire the plan into one full-duplex link (both directions).

        Time-triggered windows are installed immediately on the new link;
        phase-triggered ones wait for :meth:`on_phase`.  Re-attaching an
        already-attached duplex is a no-op, so lazily created links
        (e.g. sharded surrogate fabric) can be offered unconditionally.
        """
        if id(duplex.forward) in self._states:
            return self
        new_links = []
        for link, tag in ((duplex.forward, "forward"),
                          (duplex.backward, "backward")):
            self._state_for(link)
            self._links.append((link, tag))
            new_links.append((link, tag))
            for host in hosts:
                if host:
                    self._host_links.setdefault(host, []).append(link)
        ends = (hosts[0] or duplex.forward.name, hosts[1] or "")
        self._duplexes.append((duplex, ends))
        for spec in self.plan.flaps:
            if spec.at is None or not self._flap_covers(spec, ends):
                continue
            for link, tag in new_links:
                if _direction_matches(spec.direction, tag):
                    state = self._state_for(link)
                    for start, end in spec.windows(spec.at):
                        state.add_blackout(start, end)
        for spec in self.plan.partitions:
            if spec.at is None or self._topology is None:
                continue
            cut = frozenset(spec.isolate)
            if (hosts[0] and hosts[1]
                    and self._topology.partition_side(hosts[0], cut)
                    != self._topology.partition_side(hosts[1], cut)):
                for link, _tag in new_links:
                    self._state_for(link).add_blackout(
                        spec.at, spec.at + spec.duration)
        for spec in self.plan.blackouts:
            if spec.at is None:
                continue
            for link, tag in new_links:
                if _direction_matches(spec.direction, tag):
                    self._state_for(link).add_blackout(
                        spec.at, spec.at + spec.duration)
        for spec in self.plan.degradations:
            if spec.at is None:
                continue
            for link, tag in new_links:
                if _direction_matches(spec.direction, tag):
                    self._state_for(link).add_degradation(
                        spec.at, spec.at + spec.duration,
                        spec.bandwidth_factor, spec.extra_latency)
        return self

    def _flap_covers(self, spec: FlapSpec, ends: tuple[str, str]) -> bool:
        """Does this flap spec target the duplex with endpoints ``ends``?"""
        if spec.link is not None:
            return frozenset(spec.link) == frozenset(ends)
        if self._topology is None:
            return True  # attach-only use: no graph to scope to, flap all
        fabric = {"rack", "pod", "core"}
        return all(end and self._topology.tier_of(end) in fabric
                   for end in ends)

    def inject(self, migrator: "Migrator") -> "FaultInjector":
        """Attach to every link and host a :class:`Migrator` knows about."""
        self._topology = migrator.topology
        for (a, b), duplex in migrator._links.items():
            self.attach(duplex, hosts=(a, b))
        self._hosts.update(migrator._hosts)
        for spec in self.plan.crashes:
            if spec.host not in self._hosts:
                raise FaultError(
                    f"crash names unknown host {spec.host!r}; "
                    f"known: {sorted(self._hosts)}")
        for i, spec in enumerate(self.plan.crashes):
            if spec.at is not None:
                self.env.process(self._crash_later(spec, spec.at, ("c", i)),
                                 name=f"fault:crash:{spec.host}")
        for spec in self.plan.blackouts:
            if spec.at is not None:
                self.env.tracer.instant(
                    "fault:blackout", category="fault",
                    direction=spec.direction, start=spec.at,
                    duration=spec.duration)
        for spec in self.plan.degradations:
            if spec.at is not None:
                self.env.tracer.instant(
                    "fault:degrade", category="fault",
                    direction=spec.direction, start=spec.at,
                    duration=spec.duration,
                    bandwidth_factor=spec.bandwidth_factor,
                    extra_latency=spec.extra_latency)
        for spec in self.plan.partitions:
            if spec.at is not None:
                crossing = self._topology.crossing_links(spec.isolate)
                self.log.append((spec.at, f"partition {list(spec.isolate)} "
                                          f"{spec.duration:.3f}s "
                                          f"({len(crossing)} links cut)"))
                self.env.tracer.instant(
                    "fault:partition", category="fault",
                    isolate=list(spec.isolate), start=spec.at,
                    duration=spec.duration, links_cut=len(crossing))
        for spec in self.plan.flaps:
            if spec.at is not None:
                self.log.append((spec.at, f"flap "
                                          f"{spec.link or 'fabric'} "
                                          f"x{spec.count} "
                                          f"{spec.down_time:.3f}s down / "
                                          f"{spec.up_time:.3f}s up"))
                self.env.tracer.instant(
                    "fault:flap", category="fault",
                    link=list(spec.link) if spec.link else None,
                    start=spec.at, count=spec.count,
                    down_time=spec.down_time, up_time=spec.up_time)
        migrator.fault_injector = self
        return self

    def detach(self) -> None:
        """Remove every fault hook, restoring the fault-free fast path."""
        for link, _tag in self._links:
            link.faults = None
        self._links.clear()
        self._duplexes.clear()
        self._states.clear()

    # -- phase triggers ----------------------------------------------------

    def on_phase(self, name: str, at: Optional[float] = None) -> None:
        """Activate phase-triggered faults (called by the migration)."""
        now = self.env.now if at is None else at
        for i, spec in enumerate(self.plan.blackouts):
            if spec.phase == name:
                self._install_blackout(spec, now + spec.offset, key=("b", i))
        for i, spec in enumerate(self.plan.degradations):
            if spec.phase == name:
                self._install_degrade(spec, now + spec.offset, key=("d", i))
        for i, spec in enumerate(self.plan.partitions):
            if spec.phase == name:
                self._install_partition(spec, now + spec.offset,
                                        key=("p", i))
        for i, spec in enumerate(self.plan.flaps):
            if spec.phase == name:
                self._install_flap(spec, now + spec.offset, key=("f", i))
        for i, spec in enumerate(self.plan.crashes):
            if spec.phase == name and ("c", i) not in self._fired:
                self._fired.add(("c", i))
                self.env.process(
                    self._crash_later(spec, now + spec.offset, ("c", i)),
                    name=f"fault:crash:{spec.host}")

    # -- installation (phase-triggered, one-shot) ------------------------

    def _matching_links(self, direction: str) -> list[Link]:
        return [link for link, tag in self._links
                if _direction_matches(direction, tag)]

    def _install_blackout(self, spec: BlackoutSpec, start: float,
                          key: tuple) -> None:
        if key in self._fired:
            return
        self._fired.add(key)
        for link in self._matching_links(spec.direction):
            self._state_for(link).add_blackout(start, start + spec.duration)
        self.log.append((start, f"blackout[{spec.direction}] "
                                f"{spec.duration:.3f}s"))
        self.env.tracer.instant("fault:blackout", category="fault",
                                direction=spec.direction, start=start,
                                duration=spec.duration)

    def _install_degrade(self, spec: DegradeSpec, start: float,
                         key: tuple) -> None:
        if key in self._fired:
            return
        self._fired.add(key)
        for link in self._matching_links(spec.direction):
            self._state_for(link).add_degradation(
                start, start + spec.duration, spec.bandwidth_factor,
                spec.extra_latency)
        self.log.append((start, f"degrade[{spec.direction}] "
                                f"x{spec.bandwidth_factor:.2f} "
                                f"+{spec.extra_latency * 1e3:.1f}ms "
                                f"{spec.duration:.3f}s"))
        self.env.tracer.instant("fault:degrade", category="fault",
                                direction=spec.direction, start=start,
                                duration=spec.duration,
                                bandwidth_factor=spec.bandwidth_factor,
                                extra_latency=spec.extra_latency)

    def _install_partition(self, spec: PartitionSpec, start: float,
                           key: tuple) -> None:
        if key in self._fired:
            return
        self._fired.add(key)
        if self._topology is None:
            raise FaultError(
                "partition faults need a topology; use inject(migrator), "
                "not bare attach()")
        cut = frozenset(spec.isolate)
        ncut = 0
        for (a, b), duplex in self._topology.links.items():
            if (self._topology.partition_side(a, cut)
                    == self._topology.partition_side(b, cut)):
                continue
            ncut += 1
            for link in (duplex.forward, duplex.backward):
                self._state_for(link).add_blackout(
                    start, start + spec.duration)
        self.log.append((start, f"partition {list(spec.isolate)} "
                                f"{spec.duration:.3f}s ({ncut} links cut)"))
        self.env.tracer.instant("fault:partition", category="fault",
                                isolate=list(spec.isolate), start=start,
                                duration=spec.duration, links_cut=ncut)

    def _install_flap(self, spec: FlapSpec, start: float, key: tuple) -> None:
        if key in self._fired:
            return
        self._fired.add(key)
        windows = spec.windows(start)
        for duplex, ends in self._duplexes:
            if not self._flap_covers(spec, ends):
                continue
            for link, tag in ((duplex.forward, "forward"),
                              (duplex.backward, "backward")):
                if _direction_matches(spec.direction, tag):
                    state = self._state_for(link)
                    for lo, hi in windows:
                        state.add_blackout(lo, hi)
        self.log.append((start, f"flap {spec.link or 'fabric'} "
                                f"x{spec.count} {spec.down_time:.3f}s"))
        self.env.tracer.instant("fault:flap", category="fault",
                                link=list(spec.link) if spec.link else None,
                                start=start, count=spec.count,
                                down_time=spec.down_time,
                                up_time=spec.up_time)

    def _crash_later(self, spec: CrashSpec, at: float, key: tuple) -> Generator:
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        self._apply_crash(spec)
        return None

    def _apply_crash(self, spec: CrashSpec) -> None:
        host = self._hosts.get(spec.host)
        if host is not None:
            if hasattr(host, "crash"):
                # Full lifecycle: suspend domains, drop in-memory bitmaps,
                # lose un-flushed journal tails (see Host.crash).
                host.crash()
            else:
                host.crashed = True
        for link in self._host_links.get(spec.host, []):
            self._state_for(link).add_blackout(self.env.now, float("inf"))
        self.log.append((self.env.now, f"crash {spec.host}"))
        self.env.tracer.instant("fault:crash", category="fault",
                                host=spec.host, down_for=spec.down_for)
        for listener in self.crash_listeners:
            listener(spec.host, self.env.now)
        if spec.down_for is not None:
            self.env.process(self._restart_later(spec),
                             name=f"fault:restart:{spec.host}")

    def _restart_later(self, spec: CrashSpec) -> Generator:
        yield self.env.timeout(spec.down_for)
        self._apply_restart(spec)
        return None

    def _apply_restart(self, spec: CrashSpec) -> None:
        host = self._hosts.get(spec.host)
        if host is not None:
            if hasattr(host, "restart"):
                host.restart()
            else:
                host.crashed = False
        for link in self._host_links.get(spec.host, []):
            self._state_for(link).end_permanent_blackouts(self.env.now)
        self.log.append((self.env.now, f"restart {spec.host}"))
        self.env.tracer.instant("fault:restart", category="fault",
                                host=spec.host)
        for listener in self.restart_listeners:
            listener(spec.host, self.env.now)
