"""Multifd-style parallel sub-channels over one migration link.

QEMU's multifd splits the migration stream across N TCP connections so
that per-connection CPU work (compression, checksumming) and kernel
socket processing parallelise while the NIC stays the shared bottleneck.
This module models that split for the simulator:

* :class:`MultiFD` builds N :class:`~repro.net.channel.Channel`\\ s over
  the **same** ``Link``/``RoutedPath`` as the base channel.  The wire is
  a capacity-1 resource, so sub-channel transmissions serialise and
  interleave on it exactly like competing TCP streams on one NIC — total
  wire time is conserved, but per-channel CPU stages (compression, delta
  encoding) overlap across stripes.
* All sub-channels **share** the base channel's rate limiter (the token
  bucket paces the aggregate, not each stripe) and compressor.
* Chunks are striped round-robin: chunk ``k`` rides sub-channel
  ``k % nchannels``.  Each sub-channel individually preserves the
  channel layer's in-order delivery invariant, so the receiver sees
  every stripe in send order; *global* cross-stripe ordering is not
  guaranteed (and the streamers do not rely on it — each chunk carries
  its own block/page indices).
* **Byte accounting is conserved**: each sub-channel keeps its own
  per-category ledger, and the migration registers all sub-channels in
  ``MigrationScheme.extra_channels`` so the cluster audit
  (:func:`repro.cluster.accounting.audit_link_bytes`) sums them against
  the shared link's byte counter.

The streamers in :mod:`repro.core.transfer` implement the actual striped
send/receive with a completion barrier (every stripe's writer must finish
before the batch commits); this module only owns the channel fan-out and
the striping arithmetic.  Driven by ``MigrationConfig.multifd_channels``
and **off by default** (``1`` keeps the single pipelined channel).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import NetworkError
from .channel import Channel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class MultiFD:
    """N parallel sub-channels striped over one base channel's link."""

    def __init__(self, env: "Environment", base: Channel, nchannels: int,
                 name: str | None = None) -> None:
        if nchannels < 2:
            raise NetworkError(
                f"multifd needs at least 2 sub-channels, got {nchannels}")
        self.env = env
        self.base = base
        self.nchannels = int(nchannels)
        prefix = name if name is not None else base.name
        #: The sub-channels, ``<base>:fd0 .. fdN-1`` — same link, shared
        #: limiter (aggregate pacing) and compressor.
        self.channels = [
            Channel(env, base.link, limiter=base.limiter,
                    name=f"{prefix}:fd{i}", compressor=base.compressor)
            for i in range(self.nchannels)
        ]

    def lanes(self, chunks: list) -> list[list]:
        """Round-robin stripe assignment: lane ``i`` gets ``chunks[i::N]``.

        The position of lane ``i``'s ``j``-th chunk in the original send
        order is ``i + j * N`` — the streamers use this to mark per-chunk
        completion without threading sequence numbers through the wire.
        """
        return [chunks[i::self.nchannels] for i in range(self.nchannels)]

    @property
    def total_bytes(self) -> int:
        """Wire bytes sent across all sub-channels."""
        return sum(chan.total_bytes for chan in self.channels)

    def __repr__(self) -> str:
        return (f"<MultiFD {self.nchannels}x over {self.base.name!r} "
                f"{self.total_bytes} B>")
