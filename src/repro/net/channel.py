"""Typed message channel between two machines.

A :class:`Channel` is one direction of the migration control/data path:
messages are paced by an optional rate limiter, serialized onto the link,
delivered after the propagation latency into the receiver's mailbox, and
accounted against a per-category byte ledger (disk / memory / bitmap /
pull / control ...) so the "amount of migrated data" metric can be broken
down exactly as the paper reports it (Table I's "migrated data" row and
the ~protocol-overhead discussion of §VI-B).

Observability (see docs/OBSERVABILITY.md): every send also increments the
``chan.<category>.bytes`` counter on ``env.metrics``, mirroring the byte
ledger one-for-one — a traced run's counter totals equal the final
report's ``bytes_by_category`` exactly.

Invariants the rest of the stack relies on (see docs/TRANSFER.md):

* **In-order delivery.**  Messages arrive in send order, always.  The
  wire itself serialises sends, but per-message decompression delay could
  let a small message overtake a large one still being inflated — the
  ``_delivery_floor`` clamp forbids exactly that.  The transfer pipeline's
  fixed-count receive loops and post-copy's pull matching both assume it.
* **Exact byte accounting.**  Every wire byte lands in exactly one
  ``(channel, category)`` ledger cell, and ``link.bytes_sent`` equals the
  sum over all channels routed through that link — the cluster-level
  conservation audit (:mod:`repro.cluster.accounting`) enforces this,
  including across multifd sub-channels.
* **Compression is size-gated.**  Payloads under
  :attr:`Channel.COMPRESS_THRESHOLD` skip the compressor entirely, so
  control chatter never pays codec CPU; the compressor's per-kind ratio
  is looked up by the send *category* (memory pages vs disk blocks vs
  already-delta-encoded chunks compress very differently).
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Generator, Optional, Union

from ..errors import NetworkError
from ..sim import Event, Store
from .link import Link
from .messages import Message
from .ratelimit import NullLimiter, TokenBucket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment

Limiter = Union[TokenBucket, NullLimiter]


class Channel:
    """One direction of a reliable, ordered message pipe."""

    #: Messages smaller than this are sent uncompressed (headers, pulls,
    #: control traffic): the codec setup cost is not worth it.
    COMPRESS_THRESHOLD = 4096

    def __init__(
        self,
        env: "Environment",
        link: Link,
        limiter: Optional[Limiter] = None,
        name: str = "chan",
        compressor=None,
    ) -> None:
        self.env = env
        self.link = link
        self.limiter: Limiter = limiter if limiter is not None else NullLimiter()
        self.name = name
        #: Optional :class:`~repro.net.compression.Compressor` applied to
        #: bulk payloads (paper §III-A's size-reduction suggestion).
        self.compressor = compressor
        self._mailbox: Store = Store(env)
        #: Byte ledger: category -> wire bytes sent.
        self.bytes_by_category: dict[str, int] = defaultdict(int)
        self.messages_sent = 0
        #: Payload bytes saved by compression (pre-wire minus on-wire).
        self.bytes_saved = 0
        #: Earliest time the next delivery may happen: deliveries are FIFO
        #: even when decompression gives messages different pipe delays.
        self._delivery_floor = 0.0
        #: Cached ``(registry, {category: counter})`` for the per-send byte
        #: metric: the counter handle is resolved once per category instead
        #: of name-building and registry-looking-up on every chunk.  Keyed
        #: on registry identity so instrumenting the env rebuilds the cache.
        self._counter_cache: tuple = (None, {})

    # -- sending -------------------------------------------------------------

    def send(self, message: Message, category: str = "control",
             priority: int = 0, limited: bool = True) -> Generator:
        """Transmit ``message``; ``yield from`` inside a process.

        Returns when the last byte is on the wire.  Delivery into the remote
        mailbox happens :attr:`Link.latency` later, preserving send order.
        ``limited=False`` bypasses the rate limiter (e.g. the tiny control
        handshakes, or post-copy traffic when only pre-copy is throttled).
        ``category`` both labels the byte ledger entry and selects the
        compressor's per-kind ratio.
        """
        if not isinstance(message, Message):
            raise NetworkError(f"cannot send non-Message {message!r}")
        payload = message.payload_nbytes
        decompress = 0.0
        if (self.compressor is not None
                and payload >= self.COMPRESS_THRESHOLD):
            yield self.env.timeout(self.compressor.compress_time(payload))
            wire_payload = self.compressor.wire_nbytes(payload, kind=category)
            decompress = self.compressor.decompress_time(payload)
            self.bytes_saved += payload - wire_payload
            nbytes = wire_payload + (message.wire_nbytes - payload)
        else:
            nbytes = message.wire_nbytes
        if limited:
            yield from self.limiter.consume(nbytes)
        try:
            yield from self.link.transmit(nbytes, priority=priority)
        except NetworkError as exc:
            raise NetworkError(f"{self.name}: send failed: {exc}") from exc
        self.bytes_by_category[category] += nbytes
        self.messages_sent += 1
        metrics = self.env.metrics
        registry, by_category = self._counter_cache
        if registry is not metrics:
            by_category = {}
            self._counter_cache = (metrics, by_category)
        counter = by_category.get(category)
        if counter is None:
            counter = by_category[category] = metrics.counter(
                f"chan.{category}.bytes")
        counter.inc(nbytes)
        self.env.process(self._deliver(message, decompress),
                         name=f"{self.name}:deliver")

    def _deliver(self, message: Message, decompress_time: float = 0.0
                 ) -> Generator:
        arrival = self.env.now + self.link.effective_latency + decompress_time
        # A small fast message must not overtake a large one still being
        # decompressed: clamp to the previous message's arrival.
        arrival = max(arrival, self._delivery_floor)
        self._delivery_floor = arrival
        if arrival > self.env.now:
            yield self.env.timeout(arrival - self.env.now)
        yield self._mailbox.put(message)

    # -- receiving -------------------------------------------------------

    def recv(self) -> Event:
        """Event that fires with the next delivered message (``yield`` it)."""
        return self._mailbox.get()

    @property
    def pending(self) -> int:
        """Messages delivered but not yet received."""
        return len(self._mailbox)

    # -- accounting ------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """All wire bytes sent on this channel, headers included."""
        return sum(self.bytes_by_category.values())

    def ledger(self) -> dict[str, int]:
        """A copy of the per-category byte ledger."""
        return dict(self.bytes_by_category)

    def __repr__(self) -> str:
        return f"<Channel {self.name!r} {self.total_bytes} B sent>"


def channel_pair(
    env: "Environment",
    forward_link: Link,
    backward_link: Link,
    limiter: Optional[Limiter] = None,
    name: str = "mig",
) -> tuple[Channel, Channel]:
    """Build the (source→dest, dest→source) channel pair for a migration.

    Only the forward (bulk data) direction is rate-limited; the backward
    direction carries small pull requests and acks.
    """
    fwd = Channel(env, forward_link, limiter=limiter, name=f"{name}:s->d")
    rev = Channel(env, backward_link, limiter=None, name=f"{name}:d->s")
    return fwd, rev
