"""Wire messages exchanged by the migration protocol.

Every message knows its payload size; the channel adds a fixed per-message
header so that "amount of migrated data" includes protocol overhead, as the
paper's metric definition requires (§III-A: the amount is always larger
than the raw state size "because there must be some redundancy for
synchronization and protocols").

Wire format (see docs/TRANSFER.md for the full layer description)::

    wire_nbytes = payload_nbytes + HEADER_NBYTES

* ``payload_nbytes`` is message-specific: bulk messages charge their
  content plus a per-unit locator (8 bytes per block/page index), control
  messages a small fixed size.
* ``HEADER_NBYTES`` is the fixed framing every message pays (type tag,
  lengths, checksum).  Headers are never compressed.

Bulk messages (:class:`BlockDataMsg`, :class:`MemoryPagesMsg`) support an
:attr:`encoded_nbytes` override: when the transfer pipeline's
:class:`~repro.net.delta.DeltaCache` re-encodes a chunk as deltas against
previously-sent contents, it stamps the smaller on-wire payload size here.
``None`` (the default) keeps the nominal full-content size, so runs
without delta compression are bit-identical.  The simulated *content*
(indices, generation stamps, optional data) always travels whole — only
the charged wire bytes change, exactly as a real delta codec reconstructs
the full block at the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..units import BLOCK_SIZE, PAGE_SIZE

#: Fixed framing overhead per message (type tag, lengths, checksum).
HEADER_NBYTES = 64


@dataclass
class Message:
    """Base class; concrete messages define :attr:`payload_nbytes`."""

    @property
    def payload_nbytes(self) -> int:
        raise NotImplementedError

    @property
    def wire_nbytes(self) -> int:
        """Bytes this message occupies on the wire, header included."""
        return self.payload_nbytes + HEADER_NBYTES


@dataclass
class BlockDataMsg(Message):
    """A batch of disk blocks (pre-copy chunk, post-copy push, or pull reply)."""

    indices: np.ndarray
    stamps: np.ndarray
    data: Optional[np.ndarray] = None
    block_size: int = BLOCK_SIZE
    #: True when this batch answers a pull request (sent preferentially).
    pulled: bool = False
    #: Delta-encoded on-wire payload size; None = full content.  Stamped
    #: by :meth:`repro.net.delta.DeltaCache.encode`.
    encoded_nbytes: Optional[int] = None

    @property
    def nblocks(self) -> int:
        return int(np.asarray(self.indices).size)

    @property
    def payload_nbytes(self) -> int:
        if self.encoded_nbytes is not None:
            return self.encoded_nbytes
        # Block content dominates; per-block index costs 8 bytes.
        return self.nblocks * (self.block_size + 8)


@dataclass
class BitmapMsg(Message):
    """The block-bitmap shipped during freeze-and-copy."""

    nbits: int
    dirty_indices: np.ndarray
    serialized_nbytes: int

    @property
    def payload_nbytes(self) -> int:
        return self.serialized_nbytes


@dataclass
class PullRequestMsg(Message):
    """Destination asks the source for one still-dirty block."""

    block: int
    request_id: int = 0

    @property
    def payload_nbytes(self) -> int:
        return 16


@dataclass
class MemoryPagesMsg(Message):
    """A batch of guest memory pages (pre-copy round or final dirty set)."""

    indices: np.ndarray
    stamps: np.ndarray
    page_size: int = PAGE_SIZE
    #: Delta-encoded on-wire payload size; None = full content.  Stamped
    #: by :meth:`repro.net.delta.DeltaCache.encode`.
    encoded_nbytes: Optional[int] = None

    @property
    def npages(self) -> int:
        return int(np.asarray(self.indices).size)

    @property
    def payload_nbytes(self) -> int:
        if self.encoded_nbytes is not None:
            return self.encoded_nbytes
        return self.npages * (self.page_size + 8)


@dataclass
class CPUStateMsg(Message):
    """Run-time CPU state (registers, pending interrupts, ...)."""

    state_nbytes: int = 8 * 1024

    @property
    def payload_nbytes(self) -> int:
        return self.state_nbytes


@dataclass
class DeltaMsg(Message):
    """Bradford-style delta: written data + location + size (baseline only)."""

    block: int
    nblocks: int
    block_size: int = BLOCK_SIZE
    stamps: Optional[np.ndarray] = None
    data: Optional[np.ndarray] = None

    @property
    def payload_nbytes(self) -> int:
        return self.nblocks * self.block_size + 16


@dataclass
class ControlMsg(Message):
    """Protocol control traffic (handshakes, phase transitions, acks)."""

    tag: str = "ctl"
    info: Any = None
    extra_nbytes: int = 0

    @property
    def payload_nbytes(self) -> int:
        return 32 + self.extra_nbytes


@dataclass
class PhaseMark:
    """Not a wire message: a locally recorded phase-transition timestamp."""

    phase: str
    time: float
    detail: dict = field(default_factory=dict)
