"""XBZRLE-style delta compression for re-sent blocks and pages.

Iterative pre-copy re-sends whatever the guest dirtied during the last
iteration.  A re-sent unit usually differs from its previously-sent
version in only a few bytes (a counter bumped, a record appended), so
QEMU's XBZRLE keeps a cache of previously-transferred page contents and
ships only an encoded run-length delta on a re-send.  The
:class:`DeltaCache` models exactly that economy for this simulator:

* **Bounded LRU keyed by unit index.**  The cache holds the (simulated)
  contents of the most recently sent ``capacity_units`` blocks or pages.
  Sending a unit inserts/refreshes its entry; inserting past capacity
  evicts the least-recently-sent entry.
* **Hit → delta encoding.**  A unit whose previous contents are still
  cached is charged ``unit_nbytes / delta_ratio`` wire bytes (plus its
  8-byte locator) instead of the full unit.  The generation-stamp disk
  model carries no real bytes, so the achieved ratio is a parameter
  (:attr:`delta_ratio`) rather than measured — docs/TRANSFER.md discusses
  the fidelity trade.
* **Miss or overflow → full send.**  Units never sent, or evicted under
  cache pressure, ship whole — delta compression degrades gracefully to
  the baseline when the write working set exceeds the cache.
* **CPU cost on hits only.**  The encoder scans old+new contents of every
  hit unit at :attr:`encode_throughput` bytes/s; misses just copy into
  the cache, which the model treats as free.

:meth:`encode` stamps the resulting on-wire payload size onto the
message's ``encoded_nbytes`` field (see :mod:`repro.net.messages`); the
receiver reconstructs full contents, so destination-side state is
unchanged.  The whole feature is driven by ``MigrationConfig.delta_cache_mb``
and is **off by default** — no :class:`DeltaCache` is ever constructed
then, keeping default runs bit-identical.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Generator

import numpy as np

from ..errors import NetworkError
from ..units import MiB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment

#: Per-unit locator (index) bytes, matching the bulk messages' charge.
UNIT_LOCATOR_NBYTES = 8


class DeltaCache:
    """Bounded LRU of previously-sent unit contents, keyed by unit index."""

    def __init__(
        self,
        capacity_nbytes: float,
        unit_nbytes: int,
        delta_ratio: float = 8.0,
        encode_throughput: float = 800 * MiB,
        name: str = "delta",
    ) -> None:
        if capacity_nbytes <= 0:
            raise NetworkError("delta cache capacity must be positive")
        if unit_nbytes <= 0:
            raise NetworkError("delta cache unit size must be positive")
        if delta_ratio < 1.0:
            raise NetworkError(
                f"delta_ratio must be >= 1, got {delta_ratio}")
        if encode_throughput <= 0:
            raise NetworkError("encode_throughput must be positive")
        self.unit_nbytes = int(unit_nbytes)
        #: Entries the cache can hold (at least one, so a 1-unit cache is
        #: usable in tests and degenerate configs).
        self.capacity_units = max(int(capacity_nbytes) // self.unit_nbytes, 1)
        self.delta_ratio = float(delta_ratio)
        self.encode_throughput = float(encode_throughput)
        self.name = name
        #: Encoded size of one hit unit: changed bytes survive the delta.
        self.delta_unit_nbytes = max(
            int(self.unit_nbytes / self.delta_ratio), 1)
        # index -> generation stamp of the version last sent.  Ordered by
        # recency of send: first entry = coldest, evicted on overflow.
        self._lru: OrderedDict[int, int] = OrderedDict()
        # -- statistics (surfaced in report.extra and obs metrics) --------
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Payload bytes the delta encoding avoided sending.
        self.bytes_saved = 0
        #: Sender CPU seconds spent scanning hit units.
        self.encode_seconds = 0.0

    def __len__(self) -> int:
        return len(self._lru)

    def encode(self, env: "Environment", msg) -> Generator:
        """Delta-encode one bulk message in place; ``yield from`` it.

        Charges the encoder's CPU time on the sender, updates the LRU and
        statistics, and stamps ``msg.encoded_nbytes`` with the on-wire
        payload size.  Misses leave their units at full size, so a run
        whose working set never fits the cache converges to baseline
        wire bytes (plus the encoder finding no hits to scan = no time).
        """
        indices = np.asarray(msg.indices)
        stamps = np.asarray(msg.stamps)
        lru = self._lru
        capacity = self.capacity_units
        hits = 0
        for pos, index in enumerate(indices.tolist()):
            if index in lru:
                hits += 1
                lru.move_to_end(index)
                lru[index] = int(stamps[pos])
            else:
                lru[index] = int(stamps[pos])
                if len(lru) > capacity:
                    lru.popitem(last=False)
                    self.evictions += 1
        misses = int(indices.size) - hits
        encoded = (hits * (self.delta_unit_nbytes + UNIT_LOCATOR_NBYTES)
                   + misses * (self.unit_nbytes + UNIT_LOCATOR_NBYTES))
        full = msg.payload_nbytes
        msg.encoded_nbytes = encoded
        self.hits += hits
        self.misses += misses
        self.bytes_saved += full - encoded
        env.metrics.counter(f"{self.name}.hits").inc(hits)
        env.metrics.counter(f"{self.name}.misses").inc(misses)
        env.metrics.counter(f"{self.name}.bytes_saved").inc(full - encoded)
        if hits:
            encode_time = hits * self.unit_nbytes / self.encode_throughput
            self.encode_seconds += encode_time
            yield env.timeout(encode_time)

    def summary(self) -> dict:
        """JSON-friendly statistics for ``report.extra``."""
        return dict(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            bytes_saved=int(self.bytes_saved),
            encode_seconds=self.encode_seconds,
            capacity_units=self.capacity_units,
            resident_units=len(self._lru),
        )

    def __repr__(self) -> str:
        return (f"<DeltaCache {self.name!r} {len(self._lru)}/"
                f"{self.capacity_units} units, {self.hits} hits>")
