"""Point-to-point network link model.

One :class:`Link` is a single transmission direction with a serialization
resource (one frame on the wire at a time), a line rate, and a propagation
latency.  A :class:`DuplexLink` bundles the two directions of a full-duplex
Ethernet connection — migration data flows source→destination while pull
requests flow destination→source without contending with it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..errors import NetworkError
from ..sim import Resource
from ..units import Gbps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class Link:
    """One direction of a network path."""

    def __init__(
        self,
        env: "Environment",
        bandwidth: float = 1 * Gbps,
        latency: float = 100e-6,
        name: str = "link",
    ) -> None:
        if bandwidth <= 0:
            raise NetworkError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise NetworkError(f"latency cannot be negative, got {latency}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.name = name
        self._wire = Resource(env, capacity=1)
        self.bytes_sent = 0
        self.busy_time = 0.0
        #: Cached ``(registry, counter)`` for the per-transmit byte metric,
        #: so the hot path skips the name build and registry lookup.  Keyed
        #: on registry identity: instrumenting the env rebuilds the cache.
        self._bytes_counter = None
        #: Optional :class:`~repro.faults.injector.LinkFaultState` installed
        #: by a fault injector.  None (the default) keeps the pristine
        #: fast path: no extra branches taken, timing byte-identical.
        self.faults = None

    def transmission_time(self, nbytes: int) -> float:
        """Serialization delay for ``nbytes`` at line rate."""
        return nbytes / self.bandwidth

    @property
    def effective_latency(self) -> float:
        """Propagation latency including any active degradation window."""
        if self.faults is None:
            return self.latency
        return self.latency + self.faults.extra_latency(self.env.now)

    def transmit(self, nbytes: int, priority: int = 0) -> Generator:
        """Occupy the wire for ``nbytes``; ``yield from`` inside a process.

        Returns once the last byte is on the wire — add :attr:`latency`
        before the receiver may see it (the channel does this).  ``priority``
        lets urgent traffic (pulled blocks) jump the queue.

        With a fault state installed, a transmit starting inside a blackout
        stalls until the window ends (or raises
        :class:`~repro.errors.NetworkError` once the stall exceeds the
        plan's send timeout), and active degradation windows stretch the
        serialization delay by the inverse of their bandwidth factor.
        """
        if nbytes < 0:
            raise NetworkError(f"negative transmit size {nbytes}")
        with self._wire.request(priority=priority) as grant:
            yield grant
            if self.faults is not None:
                yield from self.faults.gate(self)
                duration = (self.transmission_time(nbytes)
                            / self.faults.bandwidth_factor(self.env.now))
            else:
                duration = self.transmission_time(nbytes)
            yield self.env.timeout(duration)
            self.busy_time += duration
        self.bytes_sent += nbytes
        metrics = self.env.metrics
        cached = self._bytes_counter
        if cached is None or cached[0] is not metrics:
            cached = self._bytes_counter = (
                metrics, metrics.counter(f"link.{self.name}.bytes"))
        cached[1].inc(nbytes)

    @property
    def queue_length(self) -> int:
        return self._wire.queue_length

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(self.busy_time / elapsed, 1.0)

    def __repr__(self) -> str:
        return (f"<Link {self.name!r} {self.bandwidth / Gbps:.2f} Gbps "
                f"lat={self.latency * 1e6:.0f} µs>")


class DuplexLink:
    """A full-duplex connection between two machines."""

    def __init__(
        self,
        env: "Environment",
        bandwidth: float = 1 * Gbps,
        latency: float = 100e-6,
        name: str = "lan",
    ) -> None:
        self.forward = Link(env, bandwidth, latency, name=f"{name}:fwd")
        self.backward = Link(env, bandwidth, latency, name=f"{name}:rev")

    @property
    def bytes_sent(self) -> int:
        return self.forward.bytes_sent + self.backward.bytes_sent
