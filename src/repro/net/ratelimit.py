"""Token-bucket rate limiting for the migration stream.

The paper's §VI-C-3 experiment limits "the network bandwidth used by the
migration process in the pre-copy phase" to halve the impact on the guest's
disk throughput, at the cost of a ~37 % longer pre-copy.  The limiter paces
*only* flows that opt in — guest service traffic is never throttled.

**Debt semantics** (the invariant consumers rely on): a blocking
:meth:`TokenBucket.consume` books its bytes *immediately* — the token
count may go negative — and then sleeps exactly ``deficit / rate``.
Consequences:

* aggregate throughput is paced to ``rate`` even for single requests
  larger than the burst (they simply go deeper into debt and sleep
  longer);
* concurrent consumers are served in arrival order, because each books
  its debt before sleeping — a later consumer always sees the earlier
  one's debt and sleeps behind it;
* one bucket instance can safely be **shared** across channels: multifd
  sub-channels deliberately share the migration limiter so the token
  bucket paces the aggregate stripe throughput, not N× the configured
  rate (see docs/TRANSFER.md);
* :meth:`TokenBucket.try_consume` never observes phantom capacity while
  the bucket is in debt (``tokens < 0``), except that a zero-byte probe
  always succeeds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class TokenBucket:
    """Classic token bucket: ``rate`` bytes/s, up to ``burst`` banked bytes.

    ``consume(n)`` is a generator to ``yield from``; it returns immediately
    while tokens last and otherwise waits exactly long enough for the
    deficit to refill.  Consumers are served in the order they block.
    """

    def __init__(self, env: "Environment", rate: float, burst: float | None = None) -> None:
        if rate <= 0:
            raise NetworkError(f"rate must be positive, got {rate}")
        self.env = env
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else float(rate)
        if self.burst <= 0:
            raise NetworkError(f"burst must be positive, got {self.burst}")
        self._tokens = self.burst
        self._last_refill = env.now
        self.consumed = 0.0

    def _refill(self) -> None:
        now = self.env.now
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last_refill = now

    def try_consume(self, nbytes: float) -> bool:
        """Non-blocking: take ``nbytes`` of budget if immediately available."""
        if nbytes < 0:
            raise NetworkError(f"negative consume {nbytes}")
        self._refill()
        if nbytes == 0:
            # A zero-byte probe always succeeds, even while the bucket is
            # in debt from a prior blocking consume (tokens < 0 would make
            # the >= test below spuriously fail).
            return True
        if self._tokens >= nbytes:
            self._tokens -= nbytes
            self.consumed += nbytes
            return True
        return False

    def consume(self, nbytes: float) -> Generator:
        """Blocking consume; ``yield from`` inside a process.

        Uses the *debt* formulation: the consumption is booked immediately
        (tokens may go negative) and the caller waits until the deficit has
        refilled.  This paces aggregate throughput to ``rate`` even for
        requests larger than the burst, and serves concurrent consumers in
        arrival order because each books its debt before sleeping.
        """
        if nbytes < 0:
            raise NetworkError(f"negative consume {nbytes}")
        self._refill()
        self._tokens -= nbytes
        self.consumed += nbytes
        if self._tokens < 0:
            yield self.env.timeout(-self._tokens / self.rate)

    @property
    def available(self) -> float:
        """Tokens currently available (refreshes the bucket first)."""
        self._refill()
        return self._tokens


class NullLimiter:
    """A limiter that never delays — used when migration bandwidth is uncapped."""

    rate = float("inf")

    def __init__(self) -> None:
        self.consumed = 0.0

    def try_consume(self, nbytes: float) -> bool:
        self.consumed += nbytes
        return True

    def consume(self, nbytes: float) -> Generator:
        self.consumed += nbytes
        return
        yield  # pragma: no cover - makes this a generator function
