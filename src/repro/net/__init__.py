"""Network substrate: links, rate limiting, and typed migration channels.

The adaptive transfer stack (delta compression, multifd parallel
channels) lives here too — see docs/TRANSFER.md for the layer guide.
"""

from .channel import Channel, channel_pair
from .compression import Compressor
from .delta import DeltaCache
from .link import DuplexLink, Link
from .multifd import MultiFD
from .messages import (
    HEADER_NBYTES,
    BitmapMsg,
    BlockDataMsg,
    ControlMsg,
    CPUStateMsg,
    DeltaMsg,
    MemoryPagesMsg,
    Message,
    PhaseMark,
    PullRequestMsg,
)
from .ratelimit import NullLimiter, TokenBucket

__all__ = [
    "BitmapMsg",
    "BlockDataMsg",
    "CPUStateMsg",
    "Channel",
    "Compressor",
    "ControlMsg",
    "DeltaCache",
    "DeltaMsg",
    "DuplexLink",
    "MultiFD",
    "HEADER_NBYTES",
    "Link",
    "MemoryPagesMsg",
    "Message",
    "NullLimiter",
    "PhaseMark",
    "PullRequestMsg",
    "TokenBucket",
    "channel_pair",
]
