"""Network substrate: links, rate limiting, and typed migration channels."""

from .channel import Channel, channel_pair
from .compression import Compressor
from .link import DuplexLink, Link
from .messages import (
    HEADER_NBYTES,
    BitmapMsg,
    BlockDataMsg,
    ControlMsg,
    CPUStateMsg,
    DeltaMsg,
    MemoryPagesMsg,
    Message,
    PhaseMark,
    PullRequestMsg,
)
from .ratelimit import NullLimiter, TokenBucket

__all__ = [
    "BitmapMsg",
    "BlockDataMsg",
    "CPUStateMsg",
    "Channel",
    "Compressor",
    "ControlMsg",
    "DeltaMsg",
    "DuplexLink",
    "HEADER_NBYTES",
    "Link",
    "MemoryPagesMsg",
    "Message",
    "NullLimiter",
    "PhaseMark",
    "PullRequestMsg",
    "TokenBucket",
    "channel_pair",
]
