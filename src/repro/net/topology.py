"""Cluster network topology: hosts, switches, links, multi-hop routes.

The paper's testbed is a pair of machines on one switched LAN, but the
ROADMAP's cluster experiments need rack/star topologies where several
concurrent migrations share links.  A :class:`Topology` is an undirected
graph whose nodes are host names (plus plain-string switch names) and
whose edges are full-duplex :class:`~repro.net.link.DuplexLink`\\ s.

Routing is shortest-path BFS with a deterministic (lexicographic)
tie-break.  A single-hop route hands back the raw directional
:class:`~repro.net.link.Link` objects — point-to-point behaviour,
timing, and fault injection stay byte-identical to the old direct-link
table.  A multi-hop route is wrapped in a :class:`RoutedPath`, a
Link-alike that transmits store-and-forward across every hop, so two
migrations whose routes share a physical link contend for its wire and
every traversed link's ``bytes_sent`` grows by the full message size —
per-link byte accounting stays conserved.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Generator, Optional, Union

from ..errors import MigrationError, NetworkError
from ..units import Gbps
from .link import DuplexLink, Link

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment
    from ..vm.host import Host

#: Topology nodes are referred to by name; hosts may be passed directly.
NodeRef = Union[str, "Host"]

#: Tier tags recognised by :meth:`Topology.tag`.  ``host`` nodes are
#: leaves, ``rack`` nodes are top-of-rack switches, ``core``/``pod``
#: nodes form the inter-rack fabric.
TIERS = ("host", "rack", "pod", "core")

#: Tiers whose mutual links form the inter-rack fabric (the lookahead
#: bound for sharded simulation is the fastest of these links).
_FABRIC_TIERS = frozenset({"rack", "pod", "core"})


def _node_name(node: NodeRef) -> str:
    return node if isinstance(node, str) else node.name


class RoutedPath:
    """A Link-alike that carries traffic across several physical links.

    Implements the two members a :class:`~repro.net.channel.Channel`
    uses — :meth:`transmit` and :attr:`effective_latency` — plus the
    accounting surface tests use.  Transmission is store-and-forward:
    each hop's wire is held in sequence, so a message contends with every
    other flow crossing any of its hops, and each hop's ``bytes_sent``
    advances by the full message size.
    """

    def __init__(self, hops: tuple[Link, ...], name: Optional[str] = None
                 ) -> None:
        if not hops:
            raise NetworkError("a routed path needs at least one hop")
        self.hops = tuple(hops)
        self.env = self.hops[0].env
        self.name = name or "+".join(hop.name for hop in self.hops)
        #: ``id(hop)`` -> bytes that cleared that hop in sends which then
        #: died on a later hop (blackout timeout).  The conservation
        #: audit needs these: upstream wires really carried the bytes,
        #: but the channel never booked the failed send.
        self.aborted_by_hop: dict[int, int] = {}

    @property
    def bandwidth(self) -> float:
        """Bottleneck line rate along the path."""
        return min(hop.bandwidth for hop in self.hops)

    @property
    def latency(self) -> float:
        return sum(hop.latency for hop in self.hops)

    @property
    def effective_latency(self) -> float:
        """Propagation latency summed over the hops (with degradations)."""
        return sum(hop.effective_latency for hop in self.hops)

    @property
    def bytes_sent(self) -> int:
        """Bytes this path pushed through its *first* hop (= end-to-end
        bytes entering the path; every hop sees the same amount)."""
        return self.hops[0].bytes_sent

    def transmission_time(self, nbytes: int) -> float:
        return sum(hop.transmission_time(nbytes) for hop in self.hops)

    def transmit(self, nbytes: int, priority: int = 0) -> Generator:
        """Store-and-forward across every hop; ``yield from`` in a process."""
        for i, hop in enumerate(self.hops):
            try:
                yield from hop.transmit(nbytes, priority=priority)
            except NetworkError:
                for done in self.hops[:i]:
                    self.aborted_by_hop[id(done)] = (
                        self.aborted_by_hop.get(id(done), 0) + nbytes)
                raise

    @property
    def queue_length(self) -> int:
        return max(hop.queue_length for hop in self.hops)

    def __repr__(self) -> str:
        return f"<RoutedPath {self.name!r} hops={len(self.hops)}>"


class Topology:
    """Undirected graph of hosts/switches joined by duplex links."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: (name_a, name_b) -> DuplexLink, keyed in insertion orientation
        #: (forward = a->b).
        self.links: dict[tuple[str, str], DuplexLink] = {}
        #: host name -> Host for every *host* node (switches are only
        #: strings and do not appear here).
        self.hosts: dict[str, "Host"] = {}
        self._adjacency: dict[str, set[str]] = {}
        #: node name -> tier tag ("host"/"rack"/"pod"/"core").  Untagged
        #: nodes default to "host" for Host objects, "rack" for strings
        #: (historic single-switch topologies behave as one big rack).
        self.tiers: dict[str, str] = {}
        #: Cached :meth:`lookahead` result; ``None`` = stale.  Invalidated
        #: by every topology mutation (:meth:`connect` / :meth:`tag`) —
        #: the sharded drain loop queries the bound per window, and the
        #: fabric scan is O(links) each time without the cache.
        self._lookahead_cache: "float | None" = None

    # -- construction ------------------------------------------------------

    def connect(self, a: NodeRef, b: NodeRef, bandwidth: float = 1 * Gbps,
                latency: float = 100e-6) -> DuplexLink:
        """Join two nodes with a full-duplex link.

        Nodes are :class:`~repro.vm.host.Host` objects or plain strings
        (switches / routers).  Connecting an already-connected pair
        returns the existing link when the parameters match, and raises
        :class:`~repro.errors.MigrationError` when they conflict — it
        never silently replaces a link that may carry in-flight traffic.
        """
        name_a, name_b = _node_name(a), _node_name(b)
        if name_a == name_b:
            raise MigrationError(f"cannot connect {name_a!r} to itself")
        for node, name in ((a, name_a), (b, name_b)):
            if not isinstance(node, str):
                self.hosts[name] = node
        existing = (self.links.get((name_a, name_b))
                    or self.links.get((name_b, name_a)))
        if existing is not None:
            if (existing.forward.bandwidth != float(bandwidth)
                    or existing.forward.latency != float(latency)):
                raise MigrationError(
                    f"{name_a!r} and {name_b!r} are already connected with "
                    f"different parameters (existing: "
                    f"{existing.forward.bandwidth:g} B/s "
                    f"/ {existing.forward.latency:g} s)")
            return existing
        link = DuplexLink(self.env, bandwidth, latency,
                          name=f"{name_a}<->{name_b}")
        self.links[(name_a, name_b)] = link
        self._adjacency.setdefault(name_a, set()).add(name_b)
        self._adjacency.setdefault(name_b, set()).add(name_a)
        self._lookahead_cache = None
        return link

    def duplex_between(self, a: NodeRef, b: NodeRef
                       ) -> Optional[DuplexLink]:
        """The direct duplex link between two nodes, if one exists."""
        name_a, name_b = _node_name(a), _node_name(b)
        return (self.links.get((name_a, name_b))
                or self.links.get((name_b, name_a)))

    def _directed_link(self, a: str, b: str) -> Link:
        """The a→b directional link of the duplex edge between a and b."""
        link = self.links.get((a, b))
        if link is not None:
            return link.forward
        link = self.links.get((b, a))
        if link is not None:
            return link.backward
        raise MigrationError(f"no link between {a!r} and {b!r}")

    # -- tiers / sharding --------------------------------------------------

    def tag(self, node: NodeRef, tier: str) -> None:
        """Assign ``node`` to a tier (see :data:`TIERS`).

        Tier tags drive the rack partition used by
        :mod:`repro.sim.sharded` and the :meth:`lookahead` bound; they do
        not affect routing.
        """
        if tier not in TIERS:
            raise MigrationError(
                f"unknown tier {tier!r} (expected one of {TIERS})")
        self.tiers[_node_name(node)] = tier
        self._lookahead_cache = None

    def tier_of(self, node: NodeRef) -> str:
        """The node's tier tag (defaulted — see :attr:`tiers`)."""
        name = _node_name(node)
        tier = self.tiers.get(name)
        if tier is not None:
            return tier
        return "host" if name in self.hosts else "rack"

    def rack_of(self, host: NodeRef) -> Optional[str]:
        """The rack-tier switch this host hangs off, or None.

        Deterministic: a host wired to several rack switches reports the
        lexicographically first.
        """
        name = _node_name(host)
        for neighbour in sorted(self._adjacency.get(name, ())):
            if self.tier_of(neighbour) == "rack":
                return neighbour
        return None

    def racks(self) -> dict[str, list[str]]:
        """rack switch name -> sorted host names wired to it."""
        out: dict[str, list[str]] = {}
        for name in sorted(self.hosts):
            rack = self.rack_of(name)
            if rack is not None:
                out.setdefault(rack, []).append(name)
        return out

    def _parent_of(self, name: str) -> Optional[str]:
        """The next switch up the tier ladder, or None at the top.

        Deterministic: among equally-ranked neighbours the
        lexicographically first wins (same rule as :meth:`rack_of`).
        """
        ladder = {"host": ("rack", "pod", "core"),
                  "rack": ("pod", "core"),
                  "pod": ("core",),
                  "core": ()}
        for want in ladder[self.tier_of(name)]:
            for neighbour in sorted(self._adjacency.get(name, ())):
                if self.tier_of(neighbour) == want:
                    return neighbour
        return None

    def partition_side(self, node: NodeRef, isolate: frozenset) -> bool:
        """True when ``node`` sits on the isolated side of a partition.

        A node is isolated when its name — or, transitively, the name of
        any switch on its path up the tier ladder — appears in
        ``isolate``.  Listing ``rack1`` therefore isolates the switch
        *and* every host hanging off it in one stroke.
        """
        name = _node_name(node)
        seen: set[str] = set()
        while name is not None and name not in seen:
            if name in isolate:
                return True
            seen.add(name)
            name = self._parent_of(name)
        return False

    def crossing_links(self, isolate) -> list[tuple[tuple[str, str],
                                                    DuplexLink]]:
        """``((a, b), duplex)`` for every link crossing the partition cut
        described by ``isolate`` (see :meth:`partition_side`), in
        deterministic insertion order."""
        cut = frozenset(isolate)
        side: dict[str, bool] = {}

        def of(name: str) -> bool:
            cached = side.get(name)
            if cached is None:
                cached = side[name] = self.partition_side(name, cut)
            return cached

        return [(key, duplex) for key, duplex in self.links.items()
                if of(key[0]) != of(key[1])]

    def inter_rack_links(self) -> list[DuplexLink]:
        """Duplex links whose both endpoints sit in the inter-rack fabric
        (rack/pod/core tiers), in deterministic insertion order."""
        return [link for (a, b), link in self.links.items()
                if self.tier_of(a) in _FABRIC_TIERS
                and self.tier_of(b) in _FABRIC_TIERS]

    def lookahead(self) -> float:
        """Conservative-synchronization bound for sharded simulation.

        Any interaction between hosts in *different* racks must cross at
        least one fabric link, so no shard can affect another sooner than
        the fastest such link's one-way propagation latency.  Per-rack
        engines may therefore safely advance ``lookahead()`` past the
        global minimum event time (see :mod:`repro.sim.sharded`).

        The bound is cached until the next :meth:`connect` or
        :meth:`tag` — link latencies are construction-time constants, so
        only topology mutation can change it.
        """
        cached = self._lookahead_cache
        if cached is not None:
            return cached
        fabric = self.inter_rack_links()
        if not fabric:
            raise MigrationError(
                "topology has no inter-rack fabric links; tag rack/core "
                "tiers with Topology.tag() before sharding")
        bound = min(link.forward.latency for link in fabric)
        self._lookahead_cache = bound
        return bound

    # -- routing -----------------------------------------------------------

    def route(self, src: NodeRef, dst: NodeRef) -> list[str]:
        """Shortest node path src → dst (inclusive), deterministic.

        BFS over the undirected graph; neighbours are explored in sorted
        order so equal-length routes always resolve the same way.
        Raises :class:`~repro.errors.MigrationError` when no path exists.
        """
        start, goal = _node_name(src), _node_name(dst)
        if start == goal:
            return [start]
        if start not in self._adjacency or goal not in self._adjacency:
            raise MigrationError(
                f"no route between {start!r} and {goal!r}")
        parent: dict[str, str] = {start: start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbour in sorted(self._adjacency.get(node, ())):
                if neighbour in parent:
                    continue
                parent[neighbour] = node
                if neighbour == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                frontier.append(neighbour)
        raise MigrationError(f"no route between {start!r} and {goal!r}")

    def path_links(self, src: NodeRef, dst: NodeRef
                   ) -> tuple[list[Link], list[Link]]:
        """(forward hop links, reverse hop links) along the src→dst route."""
        nodes = self.route(src, dst)
        fwd = [self._directed_link(a, b)
               for a, b in zip(nodes, nodes[1:])]
        rev = [self._directed_link(b, a)
               for a, b in zip(nodes, nodes[1:])]
        rev.reverse()
        return fwd, rev

    def endpoints(self, src: NodeRef, dst: NodeRef
                  ) -> tuple[Union[Link, RoutedPath],
                             Union[Link, RoutedPath]]:
        """``(data_path, reverse_path)`` for a migration src → dst.

        Single-hop routes return the raw directional :class:`Link`
        objects (identical behaviour to a direct connection); multi-hop
        routes are wrapped in :class:`RoutedPath`.
        """
        fwd, rev = self.path_links(src, dst)
        if len(fwd) == 1:
            return fwd[0], rev[0]
        return RoutedPath(tuple(fwd)), RoutedPath(tuple(rev))

    def duplex_links_between(self, src: NodeRef, dst: NodeRef
                             ) -> list[DuplexLink]:
        """The duplex links a src→dst migration will traverse, in order."""
        nodes = self.route(src, dst)
        out = []
        for a, b in zip(nodes, nodes[1:]):
            link = self.duplex_between(a, b)
            assert link is not None
            out.append(link)
        return out

    def __repr__(self) -> str:
        return (f"<Topology {len(self.hosts)} hosts, "
                f"{len(self.links)} links>")
