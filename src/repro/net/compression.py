"""Wire compression model (paper §III-A).

"Decrease the size of transferred data, e.g. to compress the transferred
data before sending it, will show a reduction in total migration time."
The model charges CPU time at a configurable throughput on both ends and
shrinks the payload by a configurable ratio; headers are not compressed.
Whether compression helps depends on the bottleneck: on a fast LAN the
disk is the limit and compression only burns CPU, while on a rate-limited
or WAN path it buys real time — the compression bench demonstrates both
regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetworkError
from ..units import MiB


@dataclass(frozen=True)
class Compressor:
    """A stream compressor with a fixed ratio and CPU cost."""

    #: Achieved compression ratio on bulk payloads (2.0 = halves them).
    ratio: float = 2.0
    #: Sender-side CPU throughput, bytes of *input* per second (lzo/lz4
    #: class codecs on 2008 hardware manage a few hundred MB/s).
    compress_throughput: float = 300 * MiB
    #: Receiver-side decompression throughput (typically faster).
    decompress_throughput: float = 600 * MiB

    def __post_init__(self) -> None:
        if self.ratio < 1.0:
            raise NetworkError(f"compression ratio must be >= 1, got {self.ratio}")
        if self.compress_throughput <= 0 or self.decompress_throughput <= 0:
            raise NetworkError("compression throughput must be positive")

    def wire_nbytes(self, payload_nbytes: int) -> int:
        """Bytes the payload occupies on the wire after compression.

        Nonempty payloads never compress below one byte; an empty payload
        costs nothing (a ``max(..., 1)`` floor here would charge phantom
        wire bytes for zero-byte chunks and skew conserved-byte accounting).
        """
        if payload_nbytes <= 0:
            return 0
        return max(int(payload_nbytes / self.ratio), 1)

    def compress_time(self, payload_nbytes: int) -> float:
        """Sender CPU seconds to compress the payload."""
        return payload_nbytes / self.compress_throughput

    def decompress_time(self, payload_nbytes: int) -> float:
        """Receiver CPU seconds to decompress back to ``payload_nbytes``."""
        return payload_nbytes / self.decompress_throughput
