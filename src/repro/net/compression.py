"""Wire compression model (paper §III-A).

"Decrease the size of transferred data, e.g. to compress the transferred
data before sending it, will show a reduction in total migration time."
The model charges CPU time at a configurable throughput on both ends and
shrinks the payload by a configurable ratio; headers are not compressed.
Whether compression helps depends on the bottleneck: on a fast LAN the
disk is the limit and compression only burns CPU, while on a rate-limited
or WAN path it buys real time — the compression bench demonstrates both
regimes.

Different payload kinds compress differently: guest memory pages are
zero-heavy (high ratios), raw disk blocks are mixed OS-image data
(~2:1), and delta-encoded chunks are already dense.  :attr:`ratios` maps
a payload kind — the channel's send *category* (``"disk"``, ``"memory"``,
...) — to its own ratio; kinds not listed fall back to :attr:`ratio`, so
the default (``ratios=None``) is byte-identical to the single-ratio
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import NetworkError
from ..units import MiB


@dataclass(frozen=True)
class Compressor:
    """A stream compressor with per-kind ratios and a fixed CPU cost."""

    #: Achieved compression ratio on bulk payloads (2.0 = halves them)
    #: when the payload kind has no entry in :attr:`ratios`.
    ratio: float = 2.0
    #: Sender-side CPU throughput, bytes of *input* per second (lzo/lz4
    #: class codecs on 2008 hardware manage a few hundred MB/s).
    compress_throughput: float = 300 * MiB
    #: Receiver-side decompression throughput (typically faster).
    decompress_throughput: float = 600 * MiB
    #: Optional payload-kind → ratio overrides (kind = channel category).
    ratios: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        if self.ratio < 1.0:
            raise NetworkError(f"compression ratio must be >= 1, got {self.ratio}")
        if self.compress_throughput <= 0 or self.decompress_throughput <= 0:
            raise NetworkError("compression throughput must be positive")
        if self.ratios is not None:
            for kind, ratio in self.ratios.items():
                if ratio < 1.0:
                    raise NetworkError(
                        f"compression ratio for kind {kind!r} must be >= 1,"
                        f" got {ratio}")

    def ratio_for(self, kind: Optional[str] = None) -> float:
        """The ratio applied to payloads of ``kind`` (None = default)."""
        if self.ratios is not None and kind is not None:
            return self.ratios.get(kind, self.ratio)
        return self.ratio

    def wire_nbytes(self, payload_nbytes: int,
                    kind: Optional[str] = None) -> int:
        """Bytes the payload occupies on the wire after compression.

        Nonempty payloads never compress below one byte; an empty payload
        costs nothing (a ``max(..., 1)`` floor here would charge phantom
        wire bytes for zero-byte chunks and skew conserved-byte accounting).
        """
        if payload_nbytes <= 0:
            return 0
        return max(int(payload_nbytes / self.ratio_for(kind)), 1)

    def compress_time(self, payload_nbytes: int) -> float:
        """Sender CPU seconds to compress the payload (ratio-independent:
        the codec scans every input byte regardless of how well it packs)."""
        return payload_nbytes / self.compress_throughput

    def decompress_time(self, payload_nbytes: int) -> float:
        """Receiver CPU seconds to decompress back to ``payload_nbytes``."""
        return payload_nbytes / self.decompress_throughput
