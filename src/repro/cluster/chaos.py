"""Seeded chaos harness: randomized fault schedules, checked invariants.

The recovery stack (partitions, flaps, crashes, breakers, retries,
dead-lettering) has too many interleavings to enumerate by hand.  This
module generates *randomized but reproducible* chaos runs: a seed drives
``numpy.random.default_rng`` through fault-schedule and job-mix
generation, the cluster runs to quiescence, and :func:`check_invariants`
asserts the properties that must survive **any** schedule:

1. **conservation** — per-link byte accounting balances (channel ledgers
   + aborted in-flight sends == wire counters on every link);
2. **placement** — every domain ends attached to exactly one host, no
   job is left in flight, and every terminally failed job is in its
   scheduler's dead-letter list;
3. **bitmaps** — for every surviving partial copy, the source's
   preserved tracking bitmap covers every block that still differs
   (recovered ⊇ true-pending: an incremental retry would miss nothing);
4. **surrogates** — no domain is left stranded on a sharded cluster's
   surrogate stand-in hosts.

Both the monolithic (``build_cluster(wiring="rack")``) and sharded
(``build_sharded_cluster``) stacks run the same schedule shape, so the
harness doubles as a differential test of the two engines' failure
semantics.  ``tools/check_chaos.py`` and ``repro-sim chaos`` are the
entry points; on violation they print the seed so any failure replays
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..core.precopy import TRACKING_NAME
from ..errors import MigrationError, ReproError
from ..faults import FaultPlan
from .accounting import audit_link_bytes
from .scheduler import MigrationJob, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sharded import ShardedCluster
    from .testbed import ClusterBed

#: Modes the harness can run; "sharded" uses one simulation per rack.
MODES = ("monolithic", "sharded")


@dataclass
class ChaosConfig:
    """One chaos run's knobs (everything derives from ``seed``)."""

    seed: int = 0
    mode: str = "monolithic"
    nracks: int = 2
    hosts_per_rack: int = 3
    vms_per_host: int = 2
    nblocks: int = 2048
    npages: int = 64
    #: Migrations submitted (random domain -> random other host).
    njobs: int = 6
    npartitions: int = 1
    nflaps: int = 1
    ncrashes: int = 1
    #: Fault activation times are drawn uniformly from [0, horizon);
    #: keep it inside the job wave or the faults hit an idle cluster.
    horizon: float = 1.2
    send_timeout: float = 0.25
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=3, initial_backoff=0.2, max_backoff=2.0))
    health: bool = True

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ReproError(
                f"unknown chaos mode {self.mode!r} (expected {MODES})")
        if self.njobs < 1:
            raise ReproError(f"njobs must be >= 1, got {self.njobs}")
        if self.horizon <= 0:
            raise ReproError(f"horizon must be positive, got {self.horizon}")


@dataclass
class ChaosReport:
    """Outcome of one seeded run."""

    config: ChaosConfig
    jobs: list[MigrationJob]
    #: Human-readable invariant violations; empty means the run is green.
    violations: list[str]
    succeeded: int = 0
    failed: int = 0
    dead_lettered: int = 0
    faults: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        head = (f"chaos seed={self.config.seed} mode={self.config.mode}: "
                f"{self.succeeded}/{len(self.jobs)} jobs ok, "
                f"{self.failed} failed ({self.dead_lettered} dead-lettered), "
                f"{self.faults} faults")
        if self.ok:
            return head + " -- all invariants hold"
        lines = [head + f" -- {len(self.violations)} VIOLATION(S):"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


def random_plan(config: ChaosConfig, rng: np.random.Generator) -> FaultPlan:
    """A fault schedule drawn from ``rng`` over the run's topology names.

    Partitions isolate whole racks, flaps hit rack uplinks, crashes hit
    hosts (half of them transient, with a restart).  All times land in
    ``[0, horizon)`` so faults overlap the job wave.
    """
    plan = FaultPlan(send_timeout=config.send_timeout)
    racks = [f"rack{r}" for r in range(config.nracks)]
    nhosts = config.nracks * config.hosts_per_rack
    hosts = [f"host{i:02d}" for i in range(nhosts)]
    for _ in range(config.npartitions):
        plan.partition([racks[int(rng.integers(len(racks)))]],
                       duration=float(rng.uniform(0.5, 2.0)),
                       at=float(rng.uniform(0.0, config.horizon)))
    for _ in range(config.nflaps):
        rack = racks[int(rng.integers(len(racks)))]
        plan.flap(down_time=float(rng.uniform(0.3, 0.8)),
                  up_time=float(rng.uniform(0.2, 0.6)),
                  count=int(rng.integers(1, 4)),
                  link=(rack, "core"),
                  at=float(rng.uniform(0.0, config.horizon)))
    for _ in range(config.ncrashes):
        host = hosts[int(rng.integers(len(hosts)))]
        down_for = (float(rng.uniform(0.5, 2.0))
                    if rng.random() < 0.5 else None)
        plan.crash(host, at=float(rng.uniform(0.0, config.horizon)),
                   down_for=down_for)
    return plan


def _random_jobs(config: ChaosConfig, rng: np.random.Generator,
                 domains, host_names: list[str]) -> list[tuple]:
    """``(domain, destination_name)`` picks; a domain moves at most once
    per run (queueing the same VM twice is a scheduler test, not a chaos
    one)."""
    picks = []
    pool = list(domains)
    for _ in range(min(config.njobs, len(pool))):
        domain = pool.pop(int(rng.integers(len(pool))))
        candidates = [name for name in host_names
                      if domain.host is not None
                      and name != domain.host.name]
        picks.append((domain, candidates[int(rng.integers(len(candidates)))]))
    return picks


# -- invariants -------------------------------------------------------------


def _check_conservation(audits) -> list[str]:
    return [f"conservation: {audit!r}" for audit in audits
            if not audit.conserved]


def _check_placement(hosts, schedulers, expected_ids: set[int]
                     ) -> list[str]:
    violations: list[str] = []
    seen: dict[int, list[str]] = {}
    for host in hosts:
        for domain in host.domains:
            seen.setdefault(domain.domain_id, []).append(host.name)
    for domain_id in sorted(expected_ids):
        where = seen.get(domain_id, [])
        if len(where) != 1:
            violations.append(
                f"placement: domain {domain_id} attached to "
                f"{len(where)} hosts {where} (expected exactly 1)")
    for scheduler in schedulers:
        dead = {id(job) for job in scheduler.dead_letter}
        for job in scheduler.jobs:
            if job.status in ("pending", "running"):
                violations.append(
                    f"placement: job for {job.domain.name} still "
                    f"{job.status} after drain")
            elif job.status == "failed" and id(job) not in dead:
                violations.append(
                    f"placement: failed job for {job.domain.name} missing "
                    f"from the dead-letter list")
    return violations


def _check_bitmaps(hosts, migrators) -> list[str]:
    """Recovered ⊇ true-pending for every surviving partial copy."""
    violations: list[str] = []
    by_id = {}
    for host in hosts:
        for domain in host.domains:
            by_id[domain.domain_id] = (host, domain)
    for migrator in migrators:
        for (domain_id, dest_name), partial in migrator._partial.items():
            entry = by_id.get(domain_id)
            if entry is None:
                continue  # placement invariant reports the stranding
            host, domain = entry
            try:
                src_vbd = host.vbd_of(domain_id)
                driver = host.driver_of(domain_id)
            except (MigrationError, ReproError, KeyError):
                continue
            if not driver.has_tracking(TRACKING_NAME):
                # Bitmap lost -> the retry path starts clean; the stale
                # partial is unusable but not unsafe.
                continue
            if src_vbd.nblocks != partial.nblocks:
                violations.append(
                    f"bitmaps: partial for domain {domain_id} at "
                    f"{dest_name} has {partial.nblocks} blocks, "
                    f"source has {src_vbd.nblocks}")
                continue
            pending = set(int(i) for i in src_vbd.diff_blocks(partial))
            dirty = set(int(i) for i in
                        driver.tracking_bitmap(TRACKING_NAME)
                        .dirty_indices())
            missed = pending - dirty
            if missed:
                violations.append(
                    f"bitmaps: domain {domain_id} partial at {dest_name}: "
                    f"{len(missed)} pending blocks not in the tracking "
                    f"bitmap (e.g. {sorted(missed)[:5]}) -- an incremental "
                    f"retry would lose them")
    return violations


def check_invariants(target, expected_ids: set[int]) -> list[str]:
    """All four invariant families against a drained cluster.

    ``target`` is a :class:`~repro.cluster.testbed.ClusterBed` or a
    :class:`~repro.cluster.sharded.ShardedCluster`.
    """
    violations: list[str] = []
    if hasattr(target, "shards"):  # ShardedCluster
        hosts = target.hosts
        schedulers = [shard.scheduler for shard in target.shards]
        migrators = [shard.migrator for shard in target.shards]
        violations += _check_conservation(target.audits())
        stranded = target.surrogate_residents()
        if stranded:
            violations.append(
                "surrogates: domains stranded on surrogate hosts: "
                + ", ".join(d.name for d in stranded))
        if target._live_cross:
            violations.append(
                f"surrogates: {len(target._live_cross)} cross-rack "
                f"job(s) never released their engine source")
    else:  # ClusterBed
        hosts = target.hosts
        schedulers = [target.scheduler]
        migrators = [target.migrator]
        violations += _check_conservation(
            audit_link_bytes(target.migrator.migrations))
    violations += _check_placement(hosts, schedulers, expected_ids)
    violations += _check_bitmaps(hosts, migrators)
    return violations


# -- run --------------------------------------------------------------------


def _run_monolithic(config: ChaosConfig, rng: np.random.Generator
                    ) -> tuple["ClusterBed", list[MigrationJob], int]:
    from ..faults import FaultInjector
    from .testbed import build_cluster

    bed = build_cluster(
        nhosts=config.nracks * config.hosts_per_rack,
        vms_per_host=config.vms_per_host, wiring="rack",
        rack_size=config.hosts_per_rack, nblocks=config.nblocks,
        npages=config.npages, retry=config.retry, health=config.health)
    expected_ids = {domain.domain_id for domain in bed.domains}
    plan = random_plan(config, rng)
    injector = FaultInjector(bed.env, plan).inject(bed.migrator)
    if bed.scheduler.health is not None:
        bed.scheduler.health.attach(injector)
    jobs = []
    for domain, dest_name in _random_jobs(
            config, rng, bed.domains, [h.name for h in bed.hosts]):
        jobs.append(bed.scheduler.submit(
            domain, bed.host(dest_name), replaceable=True))
    bed.env.run()
    nfaults = (len(plan.partitions) + len(plan.flaps) + len(plan.crashes)
               + len(plan.blackouts) + len(plan.degradations))
    return bed, jobs, nfaults, expected_ids


def _run_sharded(config: ChaosConfig, rng: np.random.Generator
                 ) -> tuple["ShardedCluster", list[MigrationJob], int]:
    from .sharded import build_sharded_cluster

    cluster = build_sharded_cluster(
        nracks=config.nracks, hosts_per_rack=config.hosts_per_rack,
        vms_per_host=config.vms_per_host, nblocks=config.nblocks,
        npages=config.npages, seed=config.seed, retry=config.retry,
        health=config.health)
    expected_ids = {domain.domain_id for domain in cluster.domains}
    plan = random_plan(config, rng)
    cluster.inject_faults(plan)
    host_names = [host.name for host in cluster.hosts]
    jobs = []
    for domain, dest_name in _random_jobs(
            config, rng, cluster.domains, host_names):
        jobs.append(cluster.submit(domain, dest_name))
    cluster.drain(jobs)
    nfaults = (len(plan.partitions) + len(plan.flaps) + len(plan.crashes)
               + len(plan.blackouts) + len(plan.degradations))
    return cluster, jobs, nfaults, expected_ids


def run_chaos(config: ChaosConfig) -> ChaosReport:
    """One seeded chaos run: build, fault, drain, check."""
    rng = np.random.default_rng(config.seed)
    if config.mode == "sharded":
        target, jobs, nfaults, expected_ids = _run_sharded(config, rng)
    else:
        target, jobs, nfaults, expected_ids = _run_monolithic(config, rng)
    violations = check_invariants(target, expected_ids)
    schedulers = ([shard.scheduler for shard in target.shards]
                  if hasattr(target, "shards") else [target.scheduler])
    dead = sum(len(s.dead_letter) for s in schedulers)
    return ChaosReport(
        config=config, jobs=jobs, violations=violations,
        succeeded=sum(1 for job in jobs if job.succeeded),
        failed=sum(1 for job in jobs if job.status == "failed"),
        dead_lettered=dead, faults=nfaults)
