"""Placement policies: choose a destination host for a migrating VM.

A policy is a callable ``policy(domain, candidates, loads) -> Host``:

* ``domain`` — the :class:`~repro.vm.domain.Domain` being placed;
* ``candidates`` — eligible destination hosts, sorted by name (never
  empty, never contains the domain's current host);
* ``loads`` — host name → *planned* domain count: current residents plus
  migrations already scheduled toward that host, so a burst of placement
  decisions made at the same instant spreads out instead of dog-piling
  the momentarily emptiest machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from ..errors import MigrationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..vm.domain import Domain
    from ..vm.host import Host

PlacementPolicy = Callable[["Domain", Sequence["Host"], dict], "Host"]


def least_loaded(domain: "Domain", candidates: Sequence["Host"],
                 loads: dict) -> "Host":
    """Pick the candidate with the fewest (planned) domains; ties break
    by name, so placement is deterministic."""
    return min(candidates, key=lambda h: (loads.get(h.name, 0), h.name))


class RoundRobin:
    """Cycle through the candidate hosts in name order.

    Stateful: one instance remembers its position across calls, so a
    stream of placements rotates evenly regardless of load.
    """

    def __init__(self) -> None:
        self._next = 0

    def __call__(self, domain: "Domain", candidates: Sequence["Host"],
                 loads: dict) -> "Host":
        if not candidates:
            raise MigrationError("no candidate hosts to place on")
        host = candidates[self._next % len(candidates)]
        self._next += 1
        return host


def pack_smallest_name(domain: "Domain", candidates: Sequence["Host"],
                       loads: dict) -> "Host":
    """Always pick the first candidate by name (pack, don't spread) —
    useful for consolidation experiments."""
    return min(candidates, key=lambda h: h.name)
