"""Host health tracking: per-host circuit breakers on simulated time.

Production schedulers do not keep hurling migrations at a host that just
ate three of them — they trip a breaker and wait.  This module is the
cluster's memory of recent failure:

* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine, evaluated lazily against the simulated clock (no timers, no
  processes: the state is a pure function of the recorded history and
  ``now``);
* :class:`HealthMonitor` — one breaker per host, fed by job outcomes
  (:meth:`record_failure` / :meth:`record_success`), crash events
  (:meth:`note_crash`, wired from the fault injector's crash listeners),
  and :meth:`poll` scans of live ``host.crashed`` flags.

The scheduler consults the monitor in three places (all default-off, so
the bit-identical equivalence gate never sees it): the registered
``healthy`` HostManager filter keeps suspect hosts out of placement, the
admission path sheds new work when :meth:`open_fraction` crosses a
threshold, and the retry loop re-places jobs whose destination's breaker
opened mid-flight.

Breaker semantics:

* **closed** — normal; ``failure_threshold`` *consecutive* failures trip
  it open (a success resets the streak);
* **open** — the host receives nothing for ``recovery_time`` simulated
  seconds, then lapses to half-open;
* **half-open** — the next placement is the probe: success closes the
  breaker, failure re-opens it (and restarts the recovery clock).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..errors import MigrationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment
    from ..vm.host import Host

#: Breaker states, in escalation order.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """One host's failure memory; state derives from history + ``now``."""

    __slots__ = ("name", "failure_threshold", "recovery_time",
                 "consecutive_failures", "opened_at", "trips",
                 "_half_open_pending")

    def __init__(self, name: str, failure_threshold: int = 3,
                 recovery_time: float = 5.0) -> None:
        if failure_threshold < 1:
            raise MigrationError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if recovery_time <= 0:
            raise MigrationError(
                f"recovery_time must be positive, got {recovery_time}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        #: Failures since the last success (the trip counter).
        self.consecutive_failures = 0
        #: When the breaker last tripped, or None while closed.
        self.opened_at: Optional[float] = None
        #: Lifetime trip count (observability).
        self.trips = 0
        #: True once a half-open probe has been admitted but not judged.
        self._half_open_pending = False

    def state(self, now: float) -> str:
        """The breaker state at simulated time ``now``."""
        if self.opened_at is None:
            return CLOSED
        if now - self.opened_at >= self.recovery_time:
            return HALF_OPEN
        return OPEN

    def allows(self, now: float) -> bool:
        """May this host receive a placement at ``now``?

        Closed: yes.  Open: no.  Half-open: one probe at a time — the
        first caller gets through, the rest wait for its verdict.
        """
        state = self.state(now)
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        if self._half_open_pending:
            return False
        self._half_open_pending = True
        return True

    def record_success(self, now: float) -> None:
        """A migration toward this host completed."""
        self.consecutive_failures = 0
        self.opened_at = None
        self._half_open_pending = False

    def record_failure(self, now: float) -> None:
        """A migration toward this host died."""
        self._half_open_pending = False
        if self.opened_at is not None:
            # Half-open probe failed (or a straggler died while open):
            # re-open and restart the recovery clock.
            self.opened_at = now
            self.trips += 1
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self.opened_at = now
            self.trips += 1

    def force_open(self, now: float) -> None:
        """Trip immediately (host crash observed) regardless of streak."""
        if self.opened_at is None:
            self.trips += 1
        self.opened_at = now
        self.consecutive_failures = max(self.consecutive_failures,
                                        self.failure_threshold)
        self._half_open_pending = False

    def reset(self) -> None:
        """Administratively close the breaker (host verified healthy)."""
        self.consecutive_failures = 0
        self.opened_at = None
        self._half_open_pending = False

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self.name} "
                f"failures={self.consecutive_failures} "
                f"opened_at={self.opened_at}>")


class HealthMonitor:
    """Per-host circuit breakers plus the feeds that drive them."""

    def __init__(self, env: "Environment", failure_threshold: int = 3,
                 recovery_time: float = 5.0) -> None:
        self.env = env
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.breakers: dict[str, CircuitBreaker] = {}
        #: Hosts whose crash this monitor has already counted (a crash
        #: trips the breaker once, not once per poll).
        self._crashed_seen: set[str] = set()

    def breaker(self, name: str) -> CircuitBreaker:
        """The breaker for one host (created closed on first use)."""
        state = self.breakers.get(name)
        if state is None:
            state = self.breakers[name] = CircuitBreaker(
                name, self.failure_threshold, self.recovery_time)
        return state

    # -- feeds -------------------------------------------------------------

    def record_success(self, name: str) -> None:
        self.breaker(name).record_success(self.env.now)

    def record_failure(self, name: str) -> None:
        self.breaker(name).record_failure(self.env.now)
        self.env.metrics.counter("cluster.health.failures").inc()

    def note_crash(self, name: str, at: Optional[float] = None) -> None:
        """Fault-injector crash listener: trip the breaker immediately."""
        self.breaker(name).force_open(self.env.now if at is None else at)
        self._crashed_seen.add(name)
        self.env.metrics.counter("cluster.health.crashes").inc()

    def note_restart(self, name: str, at: Optional[float] = None) -> None:
        """Restart listener: the host is back, but stays suspect — the
        breaker lapses to half-open on its own clock and the first
        successful placement closes it."""
        self._crashed_seen.discard(name)

    def attach(self, injector) -> "HealthMonitor":
        """Subscribe to a fault injector's crash/restart events."""
        injector.crash_listeners.append(self.note_crash)
        injector.restart_listeners.append(self.note_restart)
        return self

    def poll(self, hosts: Iterable["Host"]) -> None:
        """Fold live ``crashed`` flags in (for crashes the injector did
        not announce, e.g. direct ``host.crash()`` calls)."""
        for host in hosts:
            if getattr(host, "is_surrogate", False):
                continue
            if host.crashed:
                if host.name not in self._crashed_seen:
                    self.note_crash(host.name)
            else:
                self._crashed_seen.discard(host.name)

    # -- queries -----------------------------------------------------------

    def healthy(self, name: str) -> bool:
        """May ``name`` receive a placement right now?

        Hosts without recorded history are healthy; this never creates a
        breaker, so read-only queries stay allocation-free.
        """
        state = self.breakers.get(name)
        return state is None or state.allows(self.env.now)

    def state_of(self, name: str) -> str:
        state = self.breakers.get(name)
        return CLOSED if state is None else state.state(self.env.now)

    def open_fraction(self, names: Iterable[str]) -> float:
        """Fraction of the given hosts whose breaker is open right now
        (half-open hosts count as recovering, not open)."""
        names = list(names)
        if not names:
            return 0.0
        now = self.env.now
        open_count = sum(
            1 for name in names
            if (b := self.breakers.get(name)) is not None
            and b.state(now) == OPEN)
        return open_count / len(names)

    def __repr__(self) -> str:
        now = self.env.now
        states = {name: b.state(now) for name, b in self.breakers.items()}
        return f"<HealthMonitor {states}>"
