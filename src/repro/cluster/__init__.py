"""Cluster-scale migration orchestration (ROADMAP north star).

Builds the layer above the point-to-point
:class:`~repro.core.manager.Migrator`: a
:class:`~repro.cluster.scheduler.ClusterScheduler` that runs many
migrations concurrently over a shared
:class:`~repro.net.topology.Topology` with admission control and
per-link in-flight limits, placement policies for evacuation and
rebalancing, a per-link byte-conservation audit, and a failure-recovery
stack — per-host circuit breakers (:mod:`~repro.cluster.health`),
retry with re-placement and dead-lettering
(:class:`~repro.cluster.scheduler.RetryPolicy`), and a seeded chaos
harness (:mod:`~repro.cluster.chaos`).

Typical use::

    from repro.cluster import build_cluster

    bed = build_cluster(nhosts=4, vms_per_host=2, wiring="star")
    jobs = bed.scheduler.evacuate(bed.hosts[0])
    bed.scheduler.drain(jobs)
    print(bed.scheduler.makespan(jobs))
"""

from ..errors import AdmissionRejected, NoValidHost
from .accounting import LinkAudit, assert_conserved, audit_link_bytes
from .chaos import ChaosConfig, ChaosReport, check_invariants, run_chaos
from .churn import ChurnConfig, ChurnGenerator
from .health import CircuitBreaker, HealthMonitor
from .hostmanager import (HostManager, HostState, PlacementSpec,
                          register_filter, register_weigher)
from .placement import RoundRobin, least_loaded, pack_smallest_name
from .scheduler import (ClusterScheduler, JobFailure, MigrationJob,
                        RetryPolicy)
from .sharded import ShardedCluster, build_sharded_cluster
from .slo import SLOReport, TenantSLO, makespan_percentiles, slo_report
from .testbed import ClusterBed, build_cluster

__all__ = [
    "AdmissionRejected",
    "ChaosConfig",
    "ChaosReport",
    "ChurnConfig",
    "ChurnGenerator",
    "CircuitBreaker",
    "ClusterBed",
    "ClusterScheduler",
    "HealthMonitor",
    "HostManager",
    "HostState",
    "JobFailure",
    "LinkAudit",
    "MigrationJob",
    "NoValidHost",
    "PlacementSpec",
    "RetryPolicy",
    "RoundRobin",
    "SLOReport",
    "ShardedCluster",
    "TenantSLO",
    "assert_conserved",
    "audit_link_bytes",
    "build_cluster",
    "build_sharded_cluster",
    "check_invariants",
    "least_loaded",
    "makespan_percentiles",
    "pack_smallest_name",
    "register_filter",
    "register_weigher",
    "run_chaos",
    "slo_report",
]
