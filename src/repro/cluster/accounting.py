"""Per-link byte-conservation audit for concurrent migrations.

Every wire byte a migration sends is charged twice: once on the
:class:`~repro.net.channel.Channel`'s per-category ledger and once on
each physical :class:`~repro.net.link.Link` the message traverses
(multi-hop :class:`~repro.net.topology.RoutedPath` transfers charge
every hop).  When migrations are the only traffic, the two ledgers must
agree on every link:

    link.bytes_sent == Σ channel.total_bytes over channels routed
                       through that link

:func:`audit_link_bytes` checks exactly that across a set of finished
migrations — the invariant the bench/tests assert to show concurrent
contention never loses or double-counts a byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..net.link import Link
from ..net.topology import RoutedPath

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.scheme import MigrationScheme


@dataclass
class LinkAudit:
    """Conservation verdict for one directional link."""

    link: Link
    #: Bytes the channels routed over this link claim to have sent.
    expected: int
    #: Bytes the link itself counted.
    actual: int

    @property
    def conserved(self) -> bool:
        return self.expected == self.actual

    def __repr__(self) -> str:
        flag = "ok" if self.conserved else "MISMATCH"
        return (f"<LinkAudit {self.link.name!r} expected={self.expected} "
                f"actual={self.actual} {flag}>")


def _hops(path) -> tuple[Link, ...]:
    if isinstance(path, RoutedPath):
        return path.hops
    return (path,)


def audit_link_bytes(migrations: Iterable["MigrationScheme"]
                     ) -> list[LinkAudit]:
    """Audit every physical link touched by ``migrations``.

    Valid when the migrations are the only traffic on those links (the
    cluster benchmarks arrange exactly that).  Returns one
    :class:`LinkAudit` per directional link, sorted by link name.
    """
    expected: dict[int, int] = {}
    links: dict[int, Link] = {}
    for migration in migrations:
        for channel in migration.channels:
            # A send that dies on a later hop of a routed path (blackout
            # timeout) never reaches the channel ledger, yet its bytes
            # really crossed the upstream wires; the path records them.
            aborted = getattr(channel.link, "aborted_by_hop", None) or {}
            for hop in _hops(channel.link):
                key = id(hop)
                links[key] = hop
                expected[key] = (expected.get(key, 0) + channel.total_bytes
                                 + aborted.get(key, 0))
    audits = [LinkAudit(link=links[key], expected=expected[key],
                        actual=links[key].bytes_sent)
              for key in links]
    audits.sort(key=lambda a: a.link.name)
    return audits


def assert_conserved(migrations: Iterable["MigrationScheme"]) -> None:
    """Raise ``AssertionError`` listing every link whose ledger and wire
    counter disagree."""
    bad = [audit for audit in audit_link_bytes(migrations)
           if not audit.conserved]
    if bad:
        raise AssertionError(
            "per-link byte accounting not conserved: "
            + ", ".join(repr(audit) for audit in bad))
