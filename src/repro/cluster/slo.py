"""SLO accounting for cluster-scale migration waves.

The paper's metrics (downtime, total migration time) are per-migration;
at datacenter scale the operator question is aggregate: *did the
maintenance wave finish on time, and did any tenant burn through its
downtime budget?*  This module folds a batch of
:class:`~repro.cluster.scheduler.MigrationJob` results into a single
:class:`SLOReport`:

* **makespan percentiles** — p50/p95/p99 of per-job completion time
  (submission to end), plus the wave makespan itself;
* **per-tenant downtime budgets** — each tenant's summed downtime
  across its migrations, checked against a budget in seconds.

Tenancy is derived from VM names.  The default rule strips the trailing
ordinal: ``vm-host03-1`` belongs to tenant ``vm-host03`` and
``churn-rack0-7`` to ``churn-rack0`` — i.e. per-host / per-shard
grouping for the built-in testbeds.  Pass ``tenant_of`` for a real
mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scheduler import MigrationJob

#: Percentiles reported by :func:`makespan_percentiles`.
PERCENTILES = (50.0, 95.0, 99.0)


def default_tenant(name: str) -> str:
    """``vm-host03-1`` -> ``vm-host03`` (strip the trailing ordinal)."""
    head, sep, tail = name.rpartition("-")
    if sep and tail.isdigit():
        return head
    return name


def _percentile(ordered: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile of an already-sorted sequence."""
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def makespan_percentiles(jobs: Sequence["MigrationJob"],
                         percentiles: Sequence[float] = PERCENTILES
                         ) -> dict[str, float]:
    """p50/p95/p99 of per-job completion time (submission to end).

    Only finished jobs contribute; an empty batch returns zeros.
    """
    times = sorted(job.ended_at - job.submitted_at for job in jobs
                   if job.ended_at is not None)
    return {
        f"p{pct:g}": (_percentile(times, pct) if times else 0.0)
        for pct in percentiles
    }


@dataclass
class TenantSLO:
    """One tenant's downtime tally against its budget."""

    tenant: str
    #: Summed downtime across the tenant's successful migrations.
    downtime: float = 0.0
    #: Budget in seconds; None = no budget configured.
    budget: Optional[float] = None
    migrations: int = 0
    failed: int = 0

    @property
    def violated(self) -> bool:
        """A tenant violates on budget overrun *or* a failed migration
        (a failed move means the VM never landed — worse than slow)."""
        if self.failed:
            return True
        return self.budget is not None and self.downtime > self.budget


@dataclass
class SLOReport:
    """Aggregate service-level view of one migration wave."""

    total: int = 0
    succeeded: int = 0
    failed: int = 0
    #: First submission -> last end across the wave.
    makespan: float = 0.0
    #: ``{"p50": ..., "p95": ..., "p99": ...}`` of per-job times.
    percentiles: dict[str, float] = field(default_factory=dict)
    tenants: dict[str, TenantSLO] = field(default_factory=dict)
    #: Failure breakdown across *terminal* failures: ``(error_type,
    #: phase) -> count``, built from each failed job's last
    #: :class:`~repro.cluster.scheduler.JobFailure`.
    failure_kinds: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Total attempts across all jobs (retries show up as > total).
    attempts: int = 0
    #: Jobs that exhausted recovery and landed in the dead-letter list.
    dead_lettered: int = 0

    @property
    def violations(self) -> list[TenantSLO]:
        return [t for t in self.tenants.values() if t.violated]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"jobs      : {self.succeeded}/{self.total} succeeded"
            + (f" ({self.failed} failed)" if self.failed else ""),
            f"makespan  : {self.makespan:.3f} s",
            "per-job   : " + "  ".join(
                f"{k}={v:.3f}s" for k, v in sorted(self.percentiles.items())),
        ]
        if self.attempts > self.total:
            lines.append(f"attempts  : {self.attempts} "
                         f"({self.attempts - self.total} retried)")
        if self.failure_kinds:
            kinds = "  ".join(
                f"{etype}@{phase}={count}"
                for (etype, phase), count in sorted(self.failure_kinds.items()))
            lines.append(f"failures  : {kinds}")
        if self.violations:
            lines.append("VIOLATIONS:")
            for t in sorted(self.violations, key=lambda t: t.tenant):
                why = (f"{t.failed} failed migration(s)" if t.failed else
                       f"downtime {t.downtime * 1e3:.1f} ms "
                       f"> budget {t.budget * 1e3:.1f} ms")
                lines.append(f"  {t.tenant}: {why}")
        else:
            lines.append("all tenant downtime budgets met")
        return "\n".join(lines)


def slo_report(jobs: Sequence["MigrationJob"],
               budgets: Optional[Mapping[str, float]] = None,
               default_budget: Optional[float] = None,
               tenant_of: Optional[Callable[[str], str]] = None
               ) -> SLOReport:
    """Fold a batch of jobs into an :class:`SLOReport`.

    ``budgets`` maps tenant name -> downtime budget in seconds;
    tenants absent from the map get ``default_budget`` (None = no
    budget, never violated on downtime).  ``tenant_of`` maps a VM name
    to its tenant (default: :func:`default_tenant`).
    """
    budgets = dict(budgets or {})
    name_to_tenant = tenant_of if tenant_of is not None else default_tenant
    report = SLOReport()
    finished = [job for job in jobs if job.ended_at is not None]
    report.total = len(jobs)
    for job in jobs:
        tenant_name = name_to_tenant(job.domain.name)
        tenant = report.tenants.get(tenant_name)
        if tenant is None:
            tenant = TenantSLO(
                tenant=tenant_name,
                budget=budgets.get(tenant_name, default_budget))
            report.tenants[tenant_name] = tenant
        tenant.migrations += 1
        report.attempts += max(job.attempts, 1)
        if job.succeeded and job.report is not None:
            report.succeeded += 1
            tenant.downtime += job.report.downtime
        elif job.status == "failed":
            report.failed += 1
            tenant.failed += 1
            last = job.failure
            if last is not None:
                key = (last.error_type, last.phase)
                report.failure_kinds[key] = (
                    report.failure_kinds.get(key, 0) + 1)
                report.dead_lettered += 1
    if finished:
        report.makespan = (max(job.ended_at for job in finished)
                           - min(job.submitted_at for job in finished))
    report.percentiles = makespan_percentiles(jobs)
    return report
