"""Nova-style host manager: one placement pipeline for the cluster.

Modelled on OpenStack nova's ``HostManager``/``HostState`` shape (the
``ironic_host_manager.py`` referenced in ROADMAP): the manager keeps a
per-host :class:`HostState` view (capacity, residents, in-flight
inbound migrations, link load, up/down/maintenance), runs every
candidate through a chain of pluggable **filters** (hard constraints),
then ranks the survivors with weighted **weighers** (soft preferences).

Filters and weighers live in small registries so experiments can add
their own::

    @register_filter("gpu")
    def gpu_filter(state, spec):
        return "gpu" in state.host.name

Both built-in registries cover the ISSUE set:

* filters — ``up`` (not crashed, not in maintenance), ``capacity``
  (planned load below the per-host domain capacity), ``affinity``
  (required rack and anti-affinity host exclusions), ``link-headroom``
  (uplink not saturated with in-flight migrations), ``healthy``
  (circuit breaker not open — see :mod:`repro.cluster.health`);
* weighers — ``least-loaded`` (fewest planned domains), ``locality``
  (same rack as the source: intra-rack moves stay off the core fabric),
  ``spread`` (fewest in-flight inbound migrations).

Selection is deterministic: scores tie-break on host name, so the same
cluster state always places the same way — a property the equivalence
harness (:mod:`tools.check_equivalence`) depends on.

An empty survivor set raises the typed
:class:`~repro.errors.NoValidHost` carrying a per-filter elimination
breakdown.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence, Union

from ..errors import MigrationError, NoValidHost

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.topology import Topology
    from ..vm.domain import Domain
    from ..vm.host import Host


class PlacementSpec:
    """What one placement request needs from its destination."""

    __slots__ = ("domain", "source", "required_rack", "anti_affinity")

    def __init__(
        self,
        domain: Optional["Domain"] = None,
        source: Optional["Host"] = None,
        required_rack: Optional[str] = None,
        anti_affinity: Iterable[str] = (),
    ) -> None:
        self.domain = domain
        #: The host the domain currently runs on (never a candidate).
        self.source = source if source is not None else (
            domain.host if domain is not None else None)
        #: Hard rack requirement (``affinity`` filter), or None.
        self.required_rack = required_rack
        #: Host names placement must avoid (``affinity`` filter).
        self.anti_affinity = frozenset(anti_affinity)

    @property
    def source_rack(self) -> Optional[str]:
        if self.source is None:
            return None
        return getattr(self.source, "_rack_hint", None)


class HostState:
    """The manager's cached view of one host.

    Rebuilt by :meth:`HostManager.refresh`; between refreshes the live
    ``inbound`` mapping shared with the scheduler keeps planned load
    current without a full rebuild.
    """

    __slots__ = ("name", "host", "rack", "capacity", "resident",
                 "_inbound", "up", "maintenance", "link_inflight")

    def __init__(self, host: "Host", rack: Optional[str],
                 capacity: Optional[int], inbound: dict,
                 link_inflight: int = 0) -> None:
        self.name = host.name
        self.host = host
        #: Top-of-rack switch name, or None outside rack wirings.
        self.rack = rack
        #: Max domains this host may hold (None = unlimited).
        self.capacity = capacity
        self.resident = len(host.domains)
        self._inbound = inbound
        self.up = not host.crashed
        self.maintenance = host.maintenance
        #: Migrations currently holding a slot on this host's uplink.
        self.link_inflight = link_inflight

    @property
    def inbound(self) -> int:
        """Migrations scheduled toward this host but not yet finished."""
        return self._inbound.get(self.name, 0)

    @property
    def planned_load(self) -> int:
        """Residents plus inbound — the load placement reasons about."""
        return self.resident + self.inbound

    def __repr__(self) -> str:
        flags = "".join(("!" if not self.up else "",
                         "m" if self.maintenance else ""))
        return (f"<HostState {self.name}{flags} load={self.resident}"
                f"+{self.inbound} rack={self.rack}>")


#: A filter keeps (True) or eliminates (False) a candidate.
HostFilter = Callable[[HostState, PlacementSpec], bool]
#: A weigher scores a surviving candidate (higher is better).
HostWeigher = Callable[[HostState, PlacementSpec], float]

FILTERS: dict[str, HostFilter] = {}
WEIGHERS: dict[str, HostWeigher] = {}


def register_filter(name: str) -> Callable[[HostFilter], HostFilter]:
    """Class/function decorator adding a filter to the registry."""
    def deco(fn: HostFilter) -> HostFilter:
        FILTERS[name] = fn
        return fn
    return deco


def register_weigher(name: str) -> Callable[[HostWeigher], HostWeigher]:
    def deco(fn: HostWeigher) -> HostWeigher:
        WEIGHERS[name] = fn
        return fn
    return deco


# -- built-in filters --------------------------------------------------------

@register_filter("up")
def up_filter(state: HostState, spec: PlacementSpec) -> bool:
    """Crashed hosts and hosts inside a maintenance window are never
    valid destinations (the mid-churn crash bugfix lives here)."""
    return state.up and not state.maintenance


@register_filter("capacity")
def capacity_filter(state: HostState, spec: PlacementSpec) -> bool:
    """Planned load (residents + inbound) must stay below capacity."""
    if state.capacity is None:
        return True
    return state.planned_load < state.capacity


@register_filter("affinity")
def affinity_filter(state: HostState, spec: PlacementSpec) -> bool:
    """Hard rack requirement and anti-affinity host exclusions."""
    if state.name in spec.anti_affinity:
        return False
    if spec.required_rack is not None and state.rack != spec.required_rack:
        return False
    return True


@register_filter("link-headroom")
def link_headroom_filter(state: HostState, spec: PlacementSpec) -> bool:
    """Registry anchor for the uplink-saturation filter.

    The ceiling is per-manager state (``HostManager.link_headroom``), so
    :meth:`HostManager._passes` special-cases this name; the registry
    entry exists so the name validates and custom managers can override.
    """
    return True


@register_filter("healthy")
def healthy_filter(state: HostState, spec: PlacementSpec) -> bool:
    """Registry anchor for the circuit-breaker health filter.

    The breakers live on the manager's
    :class:`~repro.cluster.health.HealthMonitor` (``HostManager.health``),
    so :meth:`HostManager._passes` special-cases this name; without a
    monitor the filter keeps everything (default-off, equivalence-safe).
    """
    return True


# -- built-in weighers -------------------------------------------------------

@register_weigher("least-loaded")
def least_loaded_weigher(state: HostState, spec: PlacementSpec) -> float:
    """Prefer the fewest planned domains (nova's RAM weigher analogue)."""
    return -float(state.planned_load)


@register_weigher("locality")
def locality_weigher(state: HostState, spec: PlacementSpec) -> float:
    """Prefer destinations in the source's rack: intra-rack migrations
    take two hops and never touch the core fabric."""
    if spec.source is None or state.rack is None:
        return 0.0
    source_rack = spec.source_rack
    return 1.0 if source_rack is not None and state.rack == source_rack \
        else 0.0


@register_weigher("spread")
def spread_weigher(state: HostState, spec: PlacementSpec) -> float:
    """Prefer hosts with the fewest in-flight inbound migrations, so a
    burst of placements fans out instead of convoying on one target."""
    return -float(state.inbound)


class HostManager:
    """Tracks per-host state and answers placement queries.

    ``filters`` is a sequence of registry names (hard constraints,
    applied in order); ``weighers`` a sequence of ``name`` or
    ``(name, weight)`` entries whose weighted sum ranks the survivors.
    ``inbound`` may be a live host-name→count mapping shared with a
    scheduler so planned load stays current between refreshes.
    """

    DEFAULT_FILTERS = ("up", "capacity", "affinity")
    DEFAULT_WEIGHERS = (("least-loaded", 1.0),)

    def __init__(
        self,
        topology: "Topology",
        filters: Sequence[str] = DEFAULT_FILTERS,
        weighers: Sequence[Union[str, tuple[str, float]]] = DEFAULT_WEIGHERS,
        capacity: Optional[int] = None,
        inbound: Optional[dict] = None,
        link_headroom: Optional[int] = None,
        health: Optional["object"] = None,
    ) -> None:
        self.topology = topology
        self.filter_names = tuple(filters)
        for name in self.filter_names:
            if name not in FILTERS:
                raise MigrationError(
                    f"unknown host filter {name!r} "
                    f"(registered: {sorted(FILTERS)})")
        self.weigher_spec: list[tuple[str, float]] = []
        for entry in weighers:
            name, weight = entry if isinstance(entry, tuple) else (entry, 1.0)
            if name not in WEIGHERS:
                raise MigrationError(
                    f"unknown host weigher {name!r} "
                    f"(registered: {sorted(WEIGHERS)})")
            self.weigher_spec.append((name, float(weight)))
        #: Uniform per-host domain capacity (None = unlimited).
        self.capacity = capacity
        #: Reject hosts whose uplink holds >= this many in-flight
        #: migrations (None disables the ``link-headroom`` filter's
        #: effect even when listed).
        self.link_headroom = link_headroom
        #: :class:`~repro.cluster.health.HealthMonitor` backing the
        #: ``healthy`` filter (None disables it even when listed).
        self.health = health
        self._inbound = inbound if inbound is not None else {}
        #: host name -> in-flight migrations using its uplink, maintained
        #: by the scheduler via :meth:`note_link`.
        self._link_inflight: dict[str, int] = {}
        self._states: dict[str, HostState] = {}
        self.refresh()

    # -- state maintenance -------------------------------------------------

    def refresh(self) -> None:
        """Rebuild every :class:`HostState` from the live topology."""
        states = {}
        for name in sorted(self.topology.hosts):
            host = self.topology.hosts[name]
            # Surrogate stand-ins for cross-shard destinations carry the
            # remote host's name but are not real capacity here.
            if getattr(host, "is_surrogate", False):
                continue
            rack = self.topology.rack_of(name)
            # Cache the rack on the host so PlacementSpec.source_rack is
            # O(1) even for hosts the manager hasn't seen as candidates.
            host._rack_hint = rack
            states[name] = HostState(
                host, rack, self.capacity, self._inbound,
                link_inflight=self._link_inflight.get(name, 0))
        self._states = states

    def states(self) -> list[HostState]:
        """Current host states, sorted by host name."""
        return [self._states[name] for name in sorted(self._states)]

    def state_of(self, host: Union[str, "Host"]) -> HostState:
        name = host if isinstance(host, str) else host.name
        try:
            return self._states[name]
        except KeyError:
            raise MigrationError(f"no host {name!r} in manager") from None

    def note_link(self, host: Union[str, "Host"], delta: int) -> None:
        """Scheduler hook: a migration started (+1) or ended (-1) on this
        host's uplink."""
        name = host if isinstance(host, str) else host.name
        self._link_inflight[name] = self._link_inflight.get(name, 0) + delta
        state = self._states.get(name)
        if state is not None:
            state.link_inflight = self._link_inflight[name]

    # -- the pipeline ------------------------------------------------------

    def _passes(self, name: str, state: HostState,
                spec: PlacementSpec) -> bool:
        if name == "link-headroom":
            # The registry entry is a stub so the name resolves; the real
            # ceiling lives on the manager.
            if self.link_headroom is None:
                return True
            return state.link_inflight < self.link_headroom
        if name == "healthy":
            # Same stub pattern: the breakers live on the manager's
            # HealthMonitor.
            if self.health is None:
                return True
            return self.health.healthy(state.name)
        return FILTERS[name](state, spec)

    def filter_hosts(self, spec: PlacementSpec,
                     exclude: Iterable[str] = ()) -> list[HostState]:
        """Hard-constraint pass: states surviving every filter, sorted by
        name.  Raises :class:`NoValidHost` when nothing survives."""
        self.refresh()
        excluded = set(exclude)
        if spec.source is not None:
            excluded.add(spec.source.name)
        survivors = [s for n, s in sorted(self._states.items())
                     if n not in excluded]
        eliminated: dict[str, int] = {}
        for name in self.filter_names:
            kept = []
            for state in survivors:
                if self._passes(name, state, spec):
                    kept.append(state)
                else:
                    eliminated[name] = eliminated.get(name, 0) + 1
            survivors = kept
            if not survivors:
                break
        if not survivors:
            detail = ", ".join(f"{k}:{v}" for k, v in eliminated.items())
            raise NoValidHost(
                f"no valid host for "
                f"{spec.domain.name if spec.domain else 'placement'} "
                f"(eliminated — {detail or 'no candidates offered'})",
                eliminated=eliminated)
        return survivors

    def weigh_hosts(self, states: Sequence[HostState],
                    spec: PlacementSpec) -> list[tuple[float, HostState]]:
        """Soft-preference pass: ``(score, state)`` sorted best-first.

        Deterministic: equal scores order by host name.
        """
        scored = []
        for state in states:
            score = 0.0
            for name, weight in self.weigher_spec:
                score += weight * WEIGHERS[name](state, spec)
            scored.append((score, state))
        scored.sort(key=lambda pair: (-pair[0], pair[1].name))
        return scored

    def select(self, spec: PlacementSpec,
               exclude: Iterable[str] = ()) -> "Host":
        """Run the full pipeline and return the winning host."""
        survivors = self.filter_hosts(spec, exclude=exclude)
        return self.weigh_hosts(survivors, spec)[0][1].host

    def select_for(self, domain: "Domain",
                   exclude: Iterable[str] = ()) -> "Host":
        """Convenience: place ``domain`` off its current host."""
        return self.select(PlacementSpec(domain=domain), exclude=exclude)

    def __repr__(self) -> str:
        return (f"<HostManager {len(self._states)} hosts "
                f"filters={list(self.filter_names)} "
                f"weighers={self.weigher_spec}>")
