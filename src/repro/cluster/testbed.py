"""Cluster testbed builder: N hosts, M VMs each, a shared topology.

Scales the paper's two-machine testbed sideways.  Three wirings:

* ``"full"`` — every host pair gets a direct link (the degenerate case
  where routing never multi-hops; matches the old Migrator behaviour);
* ``"star"`` — one switch in the middle, every host one hop from it;
  every migration crosses two links and everything contends at the
  switch — the paper's actual LAN, scaled up;
* ``"rack"`` — hosts grouped into racks, one top-of-rack switch per
  rack, all ToR switches on a core switch: intra-rack migrations take
  two hops, cross-rack four.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..core.config import MigrationConfig
from ..core.manager import Migrator
from ..errors import ReproError
from ..storage.disk import PhysicalDisk
from ..storage.vbd import GenerationClock
from ..units import Gbps, MiB
from ..vm.domain import Domain
from ..vm.host import Host
from ..vm.memory import GuestMemory
from .scheduler import ClusterScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment
    from .scheduler import RetryPolicy


@dataclass
class ClusterBed:
    """A ready-to-run multi-host cluster experiment."""

    env: "Environment"
    hosts: list[Host]
    migrator: Migrator
    scheduler: ClusterScheduler
    config: MigrationConfig
    domains: list[Domain] = field(default_factory=list)

    def host(self, name: str) -> Host:
        for host in self.hosts:
            if host.name == name:
                return host
        raise ReproError(f"no host named {name!r}")

    def domains_on(self, host: Host) -> list[Domain]:
        return sorted(host.domains, key=lambda d: d.domain_id)


def build_cluster(
    nhosts: int = 4,
    vms_per_host: int = 2,
    wiring: str = "star",
    rack_size: int = 2,
    nblocks: int = 2048,
    npages: int = 256,
    prefill: float = 1.0,
    link_bandwidth: float = 1 * Gbps,
    link_latency: float = 100e-6,
    disk_read_bw: float = 60 * MiB,
    disk_write_bw: float = 52 * MiB,
    seek_time: float = 0.5e-3,
    max_concurrent: int = 4,
    per_link_limit: Optional[int] = None,
    config: Optional[MigrationConfig] = None,
    observe: bool = False,
    env: Optional["Environment"] = None,
    persist: bool = False,
    retry: Optional["RetryPolicy"] = None,
    health: bool = False,
    shed_threshold: Optional[float] = None,
) -> ClusterBed:
    """Assemble an ``nhosts``-machine cluster with ``vms_per_host`` idle
    VMs per host and a :class:`~repro.cluster.scheduler.ClusterScheduler`
    on top.

    All hosts share one generation clock (block stamps stay globally
    unique, as in the two-machine testbed).  VMs are idle — the cluster
    benchmarks measure orchestration behaviour (makespan, contention,
    conservation), not workload interference, which the two-machine
    experiments already cover.

    The recovery stack is opt-in: pass a ``retry``
    :class:`~repro.cluster.scheduler.RetryPolicy`, ``health=True`` for a
    :class:`~repro.cluster.health.HealthMonitor` (wired into placement
    via the ``healthy`` filter), and/or ``shed_threshold`` for
    admission-time load shedding.  All three default off so the
    equivalence fixtures never see them.
    """
    if nhosts < 2:
        raise ReproError(f"a cluster needs >= 2 hosts, got {nhosts}")
    if vms_per_host < 0:
        raise ReproError(f"vms_per_host cannot be negative: {vms_per_host}")
    if not 0.0 <= prefill <= 1.0:
        raise ReproError(f"prefill fraction must be in [0, 1], got {prefill}")
    if env is None:
        from ..sim import Environment

        env = Environment()
        if observe:
            from ..obs import install

            install(env)
    cfg = config if config is not None else MigrationConfig()
    if persist and not cfg.persist_bitmap:
        # Cluster-wide durability: every migration journals its tracking
        # bitmap to the source host's stable storage (see repro.persist).
        cfg = cfg.replace(persist_bitmap=True)
    clock = GenerationClock()
    hosts = [Host(env, f"host{i:02d}",
                  PhysicalDisk(env, disk_read_bw, disk_write_bw, seek_time),
                  clock)
             for i in range(nhosts)]
    migrator = Migrator(env, cfg)

    if wiring == "full":
        for i, a in enumerate(hosts):
            for b in hosts[i + 1:]:
                migrator.connect(a, b, link_bandwidth, link_latency)
    elif wiring == "star":
        for host in hosts:
            migrator.topology.connect(host, "switch", link_bandwidth,
                                      link_latency)
    elif wiring == "rack":
        if rack_size < 1:
            raise ReproError(f"rack_size must be >= 1, got {rack_size}")
        for i, host in enumerate(hosts):
            migrator.topology.connect(host, f"rack{i // rack_size}",
                                      link_bandwidth, link_latency)
            migrator.topology.tag(host, "host")
        nracks = (nhosts + rack_size - 1) // rack_size
        for r in range(nracks):
            migrator.topology.connect(f"rack{r}", "core", link_bandwidth,
                                      link_latency)
            migrator.topology.tag(f"rack{r}", "rack")
        migrator.topology.tag("core", "core")
    else:
        raise ReproError(f"unknown wiring {wiring!r} "
                         "(expected full, star, or rack)")

    domains: list[Domain] = []
    filled = int(nblocks * prefill)
    for host in hosts:
        for v in range(vms_per_host):
            vbd = host.prepare_vbd(nblocks)
            if filled:
                vbd.write(0, filled)
            domain = Domain(env, GuestMemory(npages, clock=clock),
                            name=f"vm-{host.name}-{v}")
            host.attach_domain(domain, vbd)
            domains.append(domain)

    monitor = None
    if health:
        from .health import HealthMonitor

        monitor = HealthMonitor(env)
    scheduler = ClusterScheduler(env, migrator,
                                 max_concurrent=max_concurrent,
                                 per_link_limit=per_link_limit,
                                 config=cfg, retry=retry, health=monitor,
                                 shed_threshold=shed_threshold)
    return ClusterBed(env=env, hosts=hosts, migrator=migrator,
                      scheduler=scheduler, config=cfg, domains=domains)
