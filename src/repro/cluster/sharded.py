"""Datacenter-scale sharded cluster: one simulation shard per rack.

Builds on :class:`repro.sim.sharded.ShardedEngine`: each rack gets its
own :class:`~repro.sim.Environment`, hosts, ToR switch, core-uplink,
:class:`~repro.core.manager.Migrator` and
:class:`~repro.cluster.scheduler.ClusterScheduler` — node, host and
link *names* identical to the monolithic ``build_cluster(wiring="rack")``
layout, so merged per-link byte ledgers line up name-for-name with a
monolithic run of the same scenario.

**Cross-rack migrations** use the *surrogate host* model: the whole
migration executes inside the **source** shard against a surrogate
:class:`~repro.vm.host.Host` bearing the real destination's name, wired
through replica fabric links (``rackN<->core``) with the real latency
and bandwidth.  Phase timings, downtime, wire bytes and per-link
charges are therefore computed exactly as the monolithic engine would
(absent cross-shard fabric contention — see docs/SCALE.md for the
contention caveat).  When the migration commits, the domain and its VBD
are detached from the surrogate and shipped through the engine's
cross-shard message queue; the **destination** shard attaches them to
the real host at the first conservative window boundary after
completion (arrival visibility is boundary-quantized; all report
metrics were already final).  Generation clocks are Lamport-merged on
arrival: the destination clock fast-forwards past every stamp in the
transplanted state, so stamp monotonicity — the substrate of the
block-bitmap consistency checks — survives the shard hop.

**Determinism / seed-splitting**: shard ``i`` owns
``numpy.random.default_rng((seed, i))``, so per-shard random streams
(churn arrivals, workload jitter) are independent of shard count and
iteration order; the coordinator itself is deterministic.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ..core.config import MigrationConfig
from ..core.manager import Migrator
from ..errors import MigrationError, ReproError
from ..sim import Environment
from ..sim.sharded import ShardedEngine
from ..storage.disk import PhysicalDisk
from ..storage.vbd import GenerationClock
from ..units import Gbps, MiB
from ..vm.domain import Domain
from ..vm.host import Host
from ..vm.memory import GuestMemory
from .accounting import LinkAudit, audit_link_bytes
from .scheduler import ClusterScheduler, MigrationJob

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


def _portable_error(job: MigrationJob) -> Optional[Exception]:
    """A picklable stand-in for a job's error (forked-drain transport)."""
    if job.error is None:
        return None
    try:
        pickle.loads(pickle.dumps(job.error))
        return job.error
    except Exception:
        return ReproError(f"[forked worker] {job.error!r}")


@dataclass
class ClusterShard:
    """One rack's worth of simulation: env, hosts, migrator, scheduler."""

    name: str
    index: int
    env: Environment
    hosts: list[Host]
    migrator: Migrator
    scheduler: ClusterScheduler
    clock: GenerationClock
    rng: np.random.Generator
    #: real destination host name -> surrogate Host living in this shard
    #: (created lazily per cross-rack destination).
    surrogates: dict[str, Host] = field(default_factory=dict)

    def host(self, name: str) -> Host:
        for host in self.hosts:
            if host.name == name:
                return host
        raise ReproError(f"no host named {name!r} in shard {self.name!r}")


class ShardedCluster:
    """A rack-sharded datacenter simulation with one placement surface.

    Use :func:`build_sharded_cluster`.  Submissions, evacuations and
    churn actions are coordinator-level operations issued *between*
    conservative windows; :meth:`run`/:meth:`drain` advance the engine.
    """

    def __init__(self, engine: ShardedEngine, shards: list[ClusterShard],
                 config: MigrationConfig, link_bandwidth: float,
                 link_latency: float, inter_rack_latency: float,
                 disk_params: tuple[float, float, float],
                 workers: str = "inline") -> None:
        self.engine = engine
        self.shards = shards
        self.config = config
        self.workers = workers
        self.link_bandwidth = link_bandwidth
        self.link_latency = link_latency
        self.inter_rack_latency = inter_rack_latency
        self._disk_params = disk_params
        self._shard_of_host: dict[str, ClusterShard] = {}
        for shard in shards:
            for host in shard.hosts:
                self._shard_of_host[host.name] = shard
        #: Every cross-rack job submitted, in submission order.
        self.cross_jobs: list[MigrationJob] = []
        #: id(job) -> (source shard index, destination shard index) for
        #: every cross-rack job; drives worker-group co-location.
        self._cross_route: dict[int, tuple[int, int]] = {}
        #: id(job) of cross-rack jobs whose engine source is still held
        #: (submitted but not yet transplanted or failed).
        self._live_cross: set[int] = set()
        #: One :class:`~repro.faults.FaultInjector` per shard after
        #: :meth:`inject_faults`, index-aligned with ``shards``.
        self.fault_injectors: list = []

    # -- faults ------------------------------------------------------------

    def inject_faults(self, plan) -> list:
        """Split one cluster-wide :class:`~repro.faults.FaultPlan` across
        the shards and inject it.

        Each shard receives the plan narrowed to its own hosts (crashes
        on other racks' hosts are dropped; link-scoped specs — blackouts,
        degradations, partitions, flaps — are kept verbatim and match
        whatever links the shard topology actually has, including
        surrogate replica fabric created later).  Shards with a
        :class:`~repro.cluster.health.HealthMonitor` get it subscribed
        to their injector's crash/restart feed.
        """
        from ..faults import FaultInjector

        if self.fault_injectors:
            raise ReproError("faults already injected into this cluster")
        for shard in self.shards:
            shard_plan = plan.narrowed_to(
                host.name for host in shard.hosts)
            injector = FaultInjector(shard.env, shard_plan)
            injector.inject(shard.migrator)
            if shard.scheduler.health is not None:
                shard.scheduler.health.attach(injector)
            self.fault_injectors.append(injector)
        return self.fault_injectors

    def surrogate_residents(self) -> list[Domain]:
        """Domains currently attached to a surrogate host (in flight to
        another rack, or leaked there by a failure).  After
        :meth:`drain` this must be empty — the chaos harness's
        no-surrogate-leak invariant."""
        out: list[Domain] = []
        for shard in self.shards:
            for surrogate in shard.surrogates.values():
                out.extend(surrogate.domains)
        out.sort(key=lambda d: d.domain_id)
        return out

    # -- lookups -----------------------------------------------------------

    @property
    def hosts(self) -> list[Host]:
        """All real hosts across shards, in global name order."""
        return [host for shard in self.shards for host in shard.hosts]

    @property
    def domains(self) -> list[Domain]:
        """All resident domains across shards (excluding surrogates)."""
        out: list[Domain] = []
        for shard in self.shards:
            for host in shard.hosts:
                out.extend(host.domains)
        out.sort(key=lambda d: d.domain_id)
        return out

    def shard_of(self, host_name: str) -> ClusterShard:
        try:
            return self._shard_of_host[host_name]
        except KeyError:
            raise ReproError(f"no host named {host_name!r}") from None

    def host(self, name: str) -> Host:
        return self.shard_of(name).host(name)

    @property
    def jobs(self) -> list[MigrationJob]:
        """Every job across all shard schedulers, submission-ordered per
        shard, shards in index order."""
        out: list[MigrationJob] = []
        for shard in self.shards:
            out.extend(shard.scheduler.jobs)
        return out

    # -- submission --------------------------------------------------------

    def submit(self, domain: Domain, destination_name: str,
               scheme: str = "tpm",
               on_arrival: Optional[Callable[[Environment, Domain], None]]
               = None) -> MigrationJob:
        """Queue one migration by destination host *name*.

        Intra-rack moves go straight to the owning shard's scheduler.
        Cross-rack moves run in the source shard against a surrogate
        destination and transplant the domain at completion;
        ``on_arrival(dest_env, domain)`` (if given) runs in the
        destination shard right after the transplant attach — the hook
        for restarting workload processes on the new side.
        """
        if domain.host is None:
            raise MigrationError(f"{domain} is not running on any host")
        src_shard = self._shard_of_host.get(domain.host.name)
        if src_shard is None:
            raise MigrationError(
                f"{domain} runs on {domain.host.name!r}, which is not a "
                "sharded-cluster host")
        dst_shard = self.shard_of(destination_name)
        if dst_shard is src_shard:
            return src_shard.scheduler.submit(
                domain, src_shard.host(destination_name), scheme=scheme)
        return self._submit_cross(domain, src_shard, dst_shard,
                                  destination_name, scheme, on_arrival)

    def _surrogate(self, src_shard: ClusterShard, dst_shard: ClusterShard,
                   destination_name: str) -> Host:
        """The surrogate stand-in for ``destination_name`` inside the
        source shard, with replica fabric links named exactly like the
        monolithic topology's (so merged ledgers sum per name)."""
        surrogate = src_shard.surrogates.get(destination_name)
        if surrogate is not None:
            return surrogate
        env = src_shard.env
        read_bw, write_bw, seek = self._disk_params
        surrogate = Host(env, destination_name,
                         PhysicalDisk(env, read_bw, write_bw, seek),
                         src_shard.clock)
        # The HostManager must never offer the stand-in as a placement
        # destination: the real host lives in another shard.
        surrogate.is_surrogate = True
        topo = src_shard.migrator.topology
        # Replica fabric: rack<dst> joins this shard's core with the real
        # inter-rack latency; connect() dedupes repeats.  Orientation
        # (rack first) matches build_cluster, keeping link names equal.
        topo.connect(dst_shard.name, "core", self.link_bandwidth,
                     self.inter_rack_latency)
        topo.tag(dst_shard.name, "rack")
        topo.connect(surrogate, dst_shard.name, self.link_bandwidth,
                     self.link_latency)
        topo.tag(surrogate, "host")
        src_shard.surrogates[destination_name] = surrogate
        injector = src_shard.migrator.fault_injector
        if injector is not None:
            # The replica fabric must fault like the real thing: offer
            # every topology link to the shard's injector (re-attach of
            # known duplexes is a no-op, so this only wires the new ones).
            for key, duplex in topo.links.items():
                injector.attach(duplex, hosts=key)
        return surrogate

    def _submit_cross(self, domain: Domain, src_shard: ClusterShard,
                      dst_shard: ClusterShard, destination_name: str,
                      scheme: str,
                      on_arrival: Optional[Callable[[Environment, Domain],
                                                    None]]) -> MigrationJob:
        surrogate = self._surrogate(src_shard, dst_shard, destination_name)
        source_host = domain.host
        # The job is a cross-shard message source from submission until
        # its transplant (or failure) — the engine narrows to
        # lookahead-bounded windows for exactly that span.
        self.engine.add_source()
        job = src_shard.scheduler.submit(domain, surrogate, scheme=scheme)
        self.cross_jobs.append(job)
        self._cross_route[id(job)] = (src_shard.index, dst_shard.index)
        self._live_cross.add(id(job))
        src_shard.env.process(
            self._cross_watch(job, src_shard, dst_shard, destination_name,
                              on_arrival, source_host),
            name=f"xrack:{domain.name}->{destination_name}")
        return job

    def _cross_watch(self, job: MigrationJob, src_shard: ClusterShard,
                     dst_shard: ClusterShard, destination_name: str,
                     on_arrival: Optional[Callable[[Environment, Domain],
                                                   None]],
                     source_host: Optional[Host] = None):
        """Source-shard process: on commit, ship domain+VBD to the real
        destination via the engine's message queue."""
        yield job.process
        env = src_shard.env
        if not job.succeeded:
            # Nothing arrived on the far side; the failure is fully
            # contained in the source shard (job.error has the story).
            # A post-handover failure (partition mid-postcopy) leaves
            # the domain on the surrogate — the stand-in's state never
            # left this shard, so roll the transplant back: re-home the
            # VM on its source host with the most complete disk copy
            # the shard holds.
            surrogate = job.destination
            domain_id = job.domain.domain_id
            if (getattr(surrogate, "is_surrogate", False)
                    and any(d.domain_id == domain_id
                            for d in surrogate.domains)
                    and source_host is not None):
                rolled, vbd = surrogate.detach_domain(domain_id)
                source_host.attach_domain(rolled, vbd)
                env.metrics.counter("cluster.cross_rack.rollbacks").inc()
                env.tracer.instant(
                    "xrack:rollback", category="cluster",
                    domain=rolled.name, surrogate=destination_name,
                    back_to=source_host.name)
            self._live_cross.discard(id(job))
            self.engine.remove_source()
            return
        domain_id = job.domain.domain_id
        domain, vbd = job.destination.detach_domain(domain_id)
        real_dest = dst_shard.host(destination_name)
        dst_clock = dst_shard.clock

        def transplant(dest_env: Environment) -> None:
            # Lamport-merge the generation clocks: new writes on the
            # destination must stamp strictly newer than everything the
            # migrated state carries.
            floor = int(vbd._gen.max()) if vbd.nblocks else 0
            mem_floor = int(domain.memory._gen.max())
            dst_clock._next = max(dst_clock._next, floor + 1, mem_floor + 1)
            domain.env = dest_env
            domain.memory.clock = dst_clock
            vbd.clock = dst_clock
            real_dest.attach_domain(domain, vbd)
            dest_env.metrics.counter("cluster.cross_rack.arrivals").inc()
            if on_arrival is not None:
                on_arrival(dest_env, domain)
            self._live_cross.discard(id(job))
            self.engine.remove_source()

        self.engine.send(dst_shard.name, env.now, transplant)

    # -- bulk operations ---------------------------------------------------

    def evacuate(self, host_name: str, scheme: str = "tpm"
                 ) -> list[MigrationJob]:
        """Drain a host through its shard's HostManager pipeline
        (intra-rack placement: the shard topology only offers rack-local
        candidates, which is also the locality-preferred choice)."""
        shard = self.shard_of(host_name)
        return shard.scheduler.evacuate(shard.host(host_name),
                                        scheme=scheme)

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        self.engine.run(until=until)

    def drain(self, jobs: Optional[list[MigrationJob]] = None,
              workers: Optional[str] = None,
              nworkers: Optional[int] = None) -> list[MigrationJob]:
        """Advance the engine until the given jobs (default: all) have
        ended and any resulting transplants have landed.

        ``workers`` overrides the cluster's configured backend for this
        drain.  The inline backend runs everything in-process; the fork
        backend partitions shards into independent groups (racks coupled
        by an in-flight cross-rack migration share a group) and drains
        each group in a forked worker, then patches job outcomes, link
        byte counters and per-shard event counts back into this process.
        Reports, ledgers and makespans are identical either way; after a
        *forked* drain the parent's simulation objects (domains, shard
        clocks/heaps) have not advanced — treat the cluster as an
        accounting view, or drain inline when you need to keep driving
        the same instance.

        Safe with perpetual background workloads: while cross-shard
        activity is in flight the engine steps conservative windows;
        once quiescent, each shard runs straight to its own remaining
        jobs' completion (no cross influence is possible, so unbounded
        per-shard runs are sound — and fast).
        """
        jobs = self.jobs if jobs is None else jobs
        backend = self.workers if workers is None else workers
        if backend == "fork":
            return self._drain_forked(jobs, nworkers=nworkers)
        return self._drain_inline(jobs)

    def _drain_inline(self, jobs: list[MigrationJob]) -> list[MigrationJob]:
        wanted = {id(job) for job in jobs}
        while True:
            # Settle cross-rack migrations and their transplants first:
            # they hold engine sources, so quiescence == none in flight.
            while not self.engine.quiescent:
                if not self.engine.step_window():
                    break
            pending_by_shard: dict[int, list] = {}
            for shard in self.shards:
                procs = [job.process for job in shard.scheduler.jobs
                         if id(job) in wanted and job.process is not None
                         and not job.process.processed]
                if procs:
                    pending_by_shard[shard.index] = (shard, procs)
            if not pending_by_shard:
                break
            for _index, (shard, procs) in sorted(pending_by_shard.items()):
                shard.env.run(until=shard.env.all_of(procs))
        return jobs

    # -- forked drain ------------------------------------------------------

    def worker_groups(self) -> list[list[int]]:
        """Partition shard indices into independently-drainable groups.

        Racks coupled by a live cross-rack migration (source still held)
        must advance under one coordinator, so they land in one group;
        every other rack is its own group.  Deterministic: groups are
        ordered by their smallest member index.
        """
        parent = list(range(len(self.shards)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for job_id in self._live_cross:
            src, dst = self._cross_route[job_id]
            ri, rj = find(src), find(dst)
            if ri != rj:
                parent[max(ri, rj)] = min(ri, rj)
        members: dict[int, list[int]] = {}
        for i in range(len(self.shards)):
            members.setdefault(find(i), []).append(i)
        return [members[root] for root in sorted(members)]

    def _drain_forked(self, jobs: list[MigrationJob],
                      nworkers: Optional[int] = None) -> list[MigrationJob]:
        """Drain each worker group in a forked child and merge results.

        Each child narrows the cluster and engine to its group (its
        copy-on-write snapshot), runs the ordinary inline drain, checks
        per-link byte conservation, and returns job outcomes plus byte
        and event counters.  The parent patches those onto its own job
        objects and links, so ``makespan()``, ``link_ledger()`` and
        ``events_processed`` read the same as after an inline drain.
        """
        from ..sim.parallel import fork_map

        groups = self.worker_groups()
        # Locate every requested job: (shard index, position) is stable
        # across the fork and identifies the same job in the child.
        locator: dict[int, tuple[int, int]] = {}
        for shard in self.shards:
            for pos, job in enumerate(shard.scheduler.jobs):
                locator[id(job)] = (shard.index, pos)
        for job in jobs:
            if id(job) not in locator:
                raise ReproError(
                    f"job {job!r} is not owned by any shard scheduler")

        def group_thunk(indices: list[int]):
            index_set = set(indices)

            def drain_group() -> dict:
                eng = self.engine
                members = [self.shards[i] for i in indices]
                names = {shard.name for shard in members}
                # Only this group's in-flight cross jobs hold sources
                # here; foreign sources would pin the engine in narrow
                # conservative windows forever.
                group_live = sum(
                    1 for job_id in self._live_cross
                    if self._cross_route[job_id][0] in index_set)
                saved = (eng._shards, eng._by_name, eng._sources,
                         self.shards, self._shard_of_host)
                eng._shards = [s for s in eng._shards if s.name in names]
                eng._by_name = {s.name: s for s in eng._shards}
                eng._sources = group_live
                self.shards = members
                self._shard_of_host = {h.name: s for s in members
                                       for h in s.hosts}
                group_jobs = [job for job in jobs
                              if locator[id(job)][0] in index_set]
                try:
                    self._drain_inline(group_jobs)
                    bad = [repr(audit) for audit in self.audits()
                           if not audit.conserved]
                    out: dict = {"bad_audits": bad, "jobs": [], "links": {},
                                 "events": {}}
                    for job in group_jobs:
                        out["jobs"].append((
                            locator[id(job)], job.status, job.started_at,
                            job.ended_at, job.report, _portable_error(job)))
                    for shard in members:
                        out["events"][shard.index] = (
                            shard.env.events_processed)
                        out["links"][shard.index] = {
                            key: (duplex.forward.bytes_sent,
                                  duplex.backward.bytes_sent)
                            for key, duplex
                            in shard.migrator.topology.links.items()}
                    return out
                finally:
                    released = group_live - eng._sources
                    (eng._shards, eng._by_name, base_sources,
                     self.shards, self._shard_of_host) = saved
                    # On the inline fallback the drain really ran here,
                    # so keep the sources this group released off the
                    # restored global count.  (In a forked child this
                    # restore dies with the process.)
                    eng._sources = base_sources - released

            return drain_group

        results = fork_map([group_thunk(g) for g in groups],
                           nworkers=nworkers)
        bad_audits: list[str] = []
        for result in results:
            bad_audits.extend(result["bad_audits"])
            for (shard_index, pos), status, started, ended, report, err \
                    in result["jobs"]:
                job = self.shards[shard_index].scheduler.jobs[pos]
                job.status = status
                job.started_at = started
                job.ended_at = ended
                job.report = report
                job.error = err
                if id(job) in self._live_cross and status in (
                        "done", "failed"):
                    # The child released this job's engine source in its
                    # own copy; mirror that here so the parent engine
                    # returns to quiescence.
                    self._live_cross.discard(id(job))
                    self.engine.remove_source()
            for shard_index, events in result["events"].items():
                self.shards[shard_index].env.events_processed = events
            for shard_index, by_key in result["links"].items():
                links = self.shards[shard_index].migrator.topology.links
                for key, (fwd, bwd) in by_key.items():
                    duplex = links.get(key)
                    if duplex is not None:
                        duplex.forward.bytes_sent = fwd
                        duplex.backward.bytes_sent = bwd
        if bad_audits:
            raise AssertionError(
                "per-link byte accounting not conserved in forked "
                "drain: " + ", ".join(bad_audits))
        return jobs

    # -- merged accounting -------------------------------------------------

    def audits(self) -> list[LinkAudit]:
        """Per-link conservation audits, shard by shard (each shard's
        migrations and links are self-contained, surrogates included)."""
        out: list[LinkAudit] = []
        for shard in self.shards:
            out.extend(audit_link_bytes(shard.migrator.migrations))
        return out

    def assert_conserved(self) -> None:
        bad = [audit for audit in self.audits() if not audit.conserved]
        if bad:
            raise AssertionError(
                "per-link byte accounting not conserved: "
                + ", ".join(repr(audit) for audit in bad))

    def link_ledger(self) -> dict[str, int]:
        """Merged directional-link byte counts, summed by link name
        across shards (replica fabric links fold into their real
        counterparts, matching the monolithic ledger's keys)."""
        ledger: dict[str, int] = {}
        for shard in self.shards:
            for duplex in shard.migrator.topology.links.values():
                for link in (duplex.forward, duplex.backward):
                    if link.bytes_sent:
                        ledger[link.name] = (ledger.get(link.name, 0)
                                             + link.bytes_sent)
        return dict(sorted(ledger.items()))

    def makespan(self, jobs: Optional[list[MigrationJob]] = None) -> float:
        jobs = self.jobs if jobs is None else jobs
        finished = [job for job in jobs if job.ended_at is not None]
        if not finished:
            return 0.0
        return (max(job.ended_at for job in finished)
                - min(job.submitted_at for job in finished))

    @property
    def events_processed(self) -> int:
        return self.engine.events_processed

    # -- observability -----------------------------------------------------

    def shard_gauges(self) -> dict[str, dict]:
        """Per-shard progress gauges: engine snapshot (events, clock,
        inbox depth) plus each shard's live metric names when built with
        ``observe=True`` (each shard carries its own tracer/registry)."""
        snapshot = self.engine.stats()
        for shard in self.shards:
            snapshot[shard.name]["metrics"] = (
                sorted(shard.env.metrics.names())
                if shard.env.metrics.enabled else [])
        return snapshot

    def dump_trace(self, path: str) -> str:
        """Write one merged Chrome trace with a process lane per shard
        (requires ``observe=True`` at build time)."""
        from ..obs import dump_chrome_trace_merged

        if not any(shard.env.tracer.enabled for shard in self.shards):
            raise ReproError(
                "no shard has tracing enabled; build the cluster with "
                "observe=True")
        return dump_chrome_trace_merged(path, [
            (shard.name, shard.env.tracer, shard.env.metrics)
            for shard in self.shards])

    def __repr__(self) -> str:
        return (f"<ShardedCluster {len(self.shards)} shards, "
                f"{len(self._shard_of_host)} hosts>")


def build_sharded_cluster(
    nracks: int = 2,
    hosts_per_rack: int = 4,
    vms_per_host: int = 2,
    nblocks: int = 2048,
    npages: int = 256,
    prefill: float = 1.0,
    link_bandwidth: float = 1 * Gbps,
    link_latency: float = 100e-6,
    inter_rack_latency: float = 100e-6,
    disk_read_bw: float = 60 * MiB,
    disk_write_bw: float = 52 * MiB,
    seek_time: float = 0.5e-3,
    max_concurrent: int = 4,
    per_link_limit: Optional[int] = None,
    config: Optional[MigrationConfig] = None,
    observe: bool = False,
    seed: int = 0,
    workers: str = "inline",
    retry=None,
    health: bool = False,
    shed_threshold: Optional[float] = None,
) -> ShardedCluster:
    """Assemble a rack-sharded datacenter: one simulation shard per rack.

    Host/switch/link naming matches the monolithic
    ``build_cluster(nhosts=nracks*hosts_per_rack, wiring="rack",
    rack_size=hosts_per_rack)`` exactly — ``hostNN`` leaves under
    ``rackR`` ToR switches under one ``core`` — and VMs are created in
    the same global order, so domain ids, names and (absent cross-shard
    fabric contention) per-link byte ledgers are directly comparable.

    The engine's conservative lookahead bound is the minimum inter-rack
    link latency, taken from each shard's topology tags.
    """
    if nracks < 1:
        raise ReproError(f"need >= 1 rack, got {nracks}")
    if hosts_per_rack < 1:
        raise ReproError(f"need >= 1 host per rack, got {hosts_per_rack}")
    if not 0.0 <= prefill <= 1.0:
        raise ReproError(f"prefill fraction must be in [0, 1], got {prefill}")
    cfg = config if config is not None else MigrationConfig()
    engine = ShardedEngine(lookahead=inter_rack_latency, workers=workers)
    shards: list[ClusterShard] = []
    filled = int(nblocks * prefill)
    for r in range(nracks):
        env = Environment()
        if observe:
            from ..obs import install

            install(env)
        rack = f"rack{r}"
        engine.add_shard(rack, env)
        clock = GenerationClock()
        migrator = Migrator(env, cfg)
        hosts = []
        for j in range(hosts_per_rack):
            gi = r * hosts_per_rack + j
            host = Host(env, f"host{gi:02d}",
                        PhysicalDisk(env, disk_read_bw, disk_write_bw,
                                     seek_time), clock)
            migrator.topology.connect(host, rack, link_bandwidth,
                                      link_latency)
            migrator.topology.tag(host, "host")
            hosts.append(host)
        migrator.topology.connect(rack, "core", link_bandwidth,
                                  inter_rack_latency)
        migrator.topology.tag(rack, "rack")
        migrator.topology.tag("core", "core")
        for host in hosts:
            for v in range(vms_per_host):
                vbd = host.prepare_vbd(nblocks)
                if filled:
                    vbd.write(0, filled)
                domain = Domain(env, GuestMemory(npages, clock=clock),
                                name=f"vm-{host.name}-{v}")
                host.attach_domain(domain, vbd)
        monitor = None
        if health:
            from .health import HealthMonitor

            monitor = HealthMonitor(env)
        scheduler = ClusterScheduler(env, migrator,
                                     max_concurrent=max_concurrent,
                                     per_link_limit=per_link_limit,
                                     config=cfg, retry=retry,
                                     health=monitor,
                                     shed_threshold=shed_threshold)
        shards.append(ClusterShard(
            name=rack, index=r, env=env, hosts=hosts, migrator=migrator,
            scheduler=scheduler, clock=clock,
            rng=np.random.default_rng((seed, r))))
    return ShardedCluster(engine, shards, cfg,
                          link_bandwidth=link_bandwidth,
                          link_latency=link_latency,
                          inter_rack_latency=inter_rack_latency,
                          disk_params=(disk_read_bw, disk_write_bw,
                                       seek_time),
                          workers=workers)
