"""Deterministic churn for datacenter-scale scenarios.

Real clusters are never static while a maintenance wave runs: VMs
arrive and depart, hosts roll through maintenance windows, and
occasionally a whole rack browns out.  :class:`ChurnGenerator` drives a
:class:`~repro.cluster.sharded.ShardedCluster` through exactly that, as
a **coordinator-level action timeline**: the plan is computed up front
(pure function of the config and the per-shard seed-split RNG streams),
then replayed by advancing the engine to each action's time and
applying it between conservative windows.  Two runs of the same config
and seed produce the same timeline, the same placements, and the same
ledgers — churn is reproducible, not noise.

Action kinds:

* ``arrival`` — a new VM materializes on a pipeline-chosen host of one
  shard (per-shard Poisson streams drawn from ``default_rng((seed,
  shard))``, so shard ``i``'s stream is independent of how many other
  shards exist);
* ``departure`` — a random resident VM shuts down and detaches;
* ``maintenance`` — rolling: the next host (global order) enters a
  maintenance window, is evacuated through the HostManager pipeline
  (which now refuses maintenance hosts as destinations), and exits the
  window after ``maintenance_hold`` seconds;
* ``rack_failure`` — a correlated failure: every host in the chosen
  rack crashes at once through the existing fault planner
  (:meth:`repro.faults.plan.FaultPlan.crash` with ``down_for``), links
  blacking out per the injector's usual semantics.

The scenario format (``ChurnConfig``) is documented in docs/SCALE.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from ..errors import NoValidHost, ReproError
from ..faults.plan import FaultPlan
from ..vm.domain import Domain
from ..vm.memory import GuestMemory
from .hostmanager import PlacementSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment
    from .sharded import ClusterShard, ShardedCluster


@dataclass(frozen=True)
class ChurnConfig:
    """One churn scenario, fully determined together with a seed."""

    #: Simulated seconds the scenario spans.
    duration: float = 30.0
    #: Mean VM arrivals per simulated second, whole cluster (split
    #: evenly across shards; 0 disables arrivals).
    arrival_rate: float = 0.0
    #: Mean VM departures per simulated second, whole cluster.
    departure_rate: float = 0.0
    #: Every this many seconds the next host (rolling, global order)
    #: enters maintenance and is evacuated (0 disables).
    maintenance_interval: float = 0.0
    #: How long an evacuated host stays in its maintenance window.
    maintenance_hold: float = 5.0
    #: Times at which a correlated rack failure strikes (the rack index
    #: cycles deterministically through the shards).
    rack_failure_times: tuple[float, ...] = ()
    #: How long crashed racks stay down.
    rack_failure_down_for: float = 5.0
    #: Geometry of churned-in VMs.
    vm_nblocks: int = 256
    vm_npages: int = 32
    prefill: float = 0.5

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ReproError(f"duration must be positive, got {self.duration}")
        for name in ("arrival_rate", "departure_rate",
                     "maintenance_interval"):
            if getattr(self, name) < 0:
                raise ReproError(f"{name} cannot be negative")


@dataclass
class ChurnAction:
    """One planned event: ``(time, kind, shard_index, ordinal)``."""

    time: float
    kind: str
    shard_index: int
    ordinal: int
    payload: dict = field(default_factory=dict)

    @property
    def sort_key(self) -> tuple:
        return (self.time, self.shard_index, self.ordinal)


class ChurnGenerator:
    """Plans and replays a churn timeline over a sharded cluster."""

    def __init__(self, cluster: "ShardedCluster", config: ChurnConfig,
                 workload: Optional[Callable[["Environment", Domain], None]]
                 = None) -> None:
        self.cluster = cluster
        self.config = config
        #: Called for every churned-in VM (and never for seed VMs):
        #: ``workload(env, domain)`` should start whatever background
        #: process the scenario wants on the new VM.
        self.workload = workload
        self.actions: list[ChurnAction] = []
        #: Jobs submitted by maintenance evacuations, in order.
        self.evacuation_jobs: list = []
        #: (kind -> count) of actions actually applied.
        self.applied: dict[str, int] = {}
        #: Hosts still inside a maintenance window -> exit time.
        self._maintenance_until: dict[str, float] = {}
        self._arrival_seq = 0

    # -- planning ----------------------------------------------------------

    def plan(self) -> list[ChurnAction]:
        """Compute the deterministic action timeline (idempotent)."""
        cfg = self.config
        shards = self.cluster.shards
        actions: list[ChurnAction] = []
        ordinal = 0
        # Per-shard Poisson arrival/departure streams from the
        # seed-split RNGs: shard i's stream never changes when the
        # cluster grows by more racks.
        per_shard_arrival = cfg.arrival_rate / max(len(shards), 1)
        per_shard_departure = cfg.departure_rate / max(len(shards), 1)
        for shard in shards:
            rng = shard.rng
            for kind, rate in (("arrival", per_shard_arrival),
                               ("departure", per_shard_departure)):
                if rate <= 0:
                    continue
                t = 0.0
                while True:
                    t += float(rng.exponential(1.0 / rate))
                    if t >= cfg.duration:
                        break
                    ordinal += 1
                    actions.append(ChurnAction(t, kind, shard.index,
                                               ordinal))
        if cfg.maintenance_interval > 0:
            nhosts = len(self.cluster.hosts)
            k = 0
            t = cfg.maintenance_interval
            while t < cfg.duration:
                ordinal += 1
                actions.append(ChurnAction(
                    t, "maintenance", k % len(shards), ordinal,
                    payload=dict(host_ordinal=k % nhosts)))
                k += 1
                t += cfg.maintenance_interval
        for i, t in enumerate(cfg.rack_failure_times):
            if not 0.0 <= t < cfg.duration:
                raise ReproError(
                    f"rack failure time {t} outside [0, {cfg.duration})")
            ordinal += 1
            actions.append(ChurnAction(float(t), "rack_failure",
                                       i % len(shards), ordinal))
        actions.sort(key=lambda a: a.sort_key)
        self.actions = actions
        return actions

    # -- execution ---------------------------------------------------------

    def run(self) -> dict:
        """Replay the timeline: advance the engine to each action's time,
        apply it, then run out the remaining duration.  Returns summary
        counts."""
        if not self.actions:
            self.plan()
        cluster = self.cluster
        for action in self.actions:
            cluster.run(until=action.time)
            self._exit_expired_maintenance(action.time)
            self._apply(action)
        cluster.run(until=self.config.duration)
        self._exit_expired_maintenance(self.config.duration)
        return dict(self.applied)

    def _bump(self, kind: str) -> None:
        self.applied[kind] = self.applied.get(kind, 0) + 1

    def _exit_expired_maintenance(self, now: float) -> None:
        for name in sorted(self._maintenance_until):
            if self._maintenance_until[name] <= now:
                del self._maintenance_until[name]
                self.cluster.host(name).exit_maintenance()

    def _apply(self, action: ChurnAction) -> None:
        handler = getattr(self, f"_apply_{action.kind}")
        handler(action)

    # -- handlers ----------------------------------------------------------

    def _apply_arrival(self, action: ChurnAction) -> None:
        cfg = self.config
        shard = self.cluster.shards[action.shard_index]
        try:
            host = shard.scheduler.hostmanager.select(PlacementSpec())
        except NoValidHost:
            return  # the rack is full/down; the arrival bounces
        vbd = host.prepare_vbd(cfg.vm_nblocks)
        filled = int(cfg.vm_nblocks * cfg.prefill)
        if filled:
            vbd.write(0, filled)
        self._arrival_seq += 1
        domain = Domain(shard.env,
                        GuestMemory(cfg.vm_npages, clock=shard.clock),
                        name=f"churn-{shard.name}-{self._arrival_seq}")
        host.attach_domain(domain, vbd)
        if self.workload is not None:
            self.workload(shard.env, domain)
        self._bump("arrival")

    def _apply_departure(self, action: ChurnAction) -> None:
        shard = self.cluster.shards[action.shard_index]
        # Never shut down a VM with an in-flight migration: the detach
        # would yank state out from under the scheme mid-copy.
        migrating = {job.domain.domain_id
                     for job in shard.scheduler.jobs
                     if job.ended_at is None}
        residents = [d for host in shard.hosts for d in host.domains
                     if d.running and d.domain_id not in migrating]
        if not residents:
            return
        residents.sort(key=lambda d: d.domain_id)
        victim = residents[int(shard.rng.integers(len(residents)))]
        victim.host.detach_domain(victim.domain_id)
        self._bump("departure")

    def _apply_maintenance(self, action: ChurnAction) -> None:
        hosts = self.cluster.hosts
        host = hosts[action.payload["host_ordinal"]]
        if not host.available:
            return  # already down or already in a window
        host.enter_maintenance()
        self._maintenance_until[host.name] = (
            action.time + self.config.maintenance_hold)
        shard = self.cluster.shard_of(host.name)
        try:
            jobs = shard.scheduler.evacuate(host)
        except NoValidHost:
            jobs = []  # nowhere to drain to right now; window still opens
        self.evacuation_jobs.extend(jobs)
        self._bump("maintenance")

    def _apply_rack_failure(self, action: ChurnAction) -> None:
        from ..faults.injector import FaultInjector

        shard = self.cluster.shards[action.shard_index]
        plan = FaultPlan()
        for host in shard.hosts:
            if host.crashed:
                continue
            plan.crash(host.name, at=action.time,
                       down_for=self.config.rack_failure_down_for)
        if plan.empty:
            return
        FaultInjector(shard.env, plan).inject(shard.migrator)
        self._bump("rack_failure")
