"""Cluster-scale migration orchestration.

The paper's mechanism is point-to-point: one VM, one source, one
destination.  Production clusters (ROADMAP north star) run *many*
migrations at once — evacuating a machine for maintenance, rebalancing
after load shifts — over a shared topology where concurrent transfers
contend for links.  :class:`ClusterScheduler` turns the point-to-point
:class:`~repro.core.manager.Migrator` into that layer:

* **submission** — :meth:`submit` queues one VM move as a
  :class:`MigrationJob` and runs it as a simulation process;
* **admission control** — at most ``max_concurrent`` migrations run at
  once (a :class:`~repro.sim.Resource`); the rest wait FIFO;
* **per-link in-flight limits** — with ``per_link_limit`` set, a job
  must hold a slot on every duplex link its route crosses before it
  starts.  Slots are acquired in sorted link order, so two jobs wanting
  overlapping link sets can never deadlock;
* **placement** — every destination decision (evacuate, rebalance, and
  re-placement of queued jobs whose target died) flows through one
  :class:`~repro.cluster.hostmanager.HostManager` filter/weigher
  pipeline.  Legacy :mod:`repro.cluster.placement` callables are still
  accepted — they run against the manager's *filtered* candidate list,
  so even custom policies can no longer pick a crashed or
  in-maintenance host.

Failed migrations are contained: the job records the
:class:`~repro.errors.MigrationFailed` and the scheduler moves on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional

from ..core.manager import MigrationRetrier, Migrator
from ..core.metrics import MigrationReport
from ..errors import AdmissionRejected, MigrationError, NoValidHost
from ..sim import Resource
from .hostmanager import HostManager, PlacementSpec
from .placement import PlacementPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import MigrationConfig
    from ..sim import Environment, Process
    from ..vm.domain import Domain
    from ..vm.host import Host
    from .health import HealthMonitor


@dataclass(frozen=True)
class JobFailure:
    """One failed migration attempt, structured for operators.

    ``error_type`` is the underlying exception class (``NetworkError``
    for a blackout kill, not the wrapping ``MigrationFailed``);
    ``phase`` is the migration phase the attempt died in (from the
    report's ``failed_phase``, or a scheduler stage like ``placement``).
    """

    error_type: str
    message: str
    phase: str
    attempt: int
    at: float
    destination: str

    def __str__(self) -> str:
        return (f"attempt {self.attempt} -> {self.destination}: "
                f"{self.error_type}@{self.phase}: {self.message}")


@dataclass(frozen=True)
class RetryPolicy:
    """Job-level recovery knobs for :class:`ClusterScheduler`.

    ``max_attempts`` > 1 retries failed migrations through
    :class:`~repro.core.manager.MigrationRetrier` — incrementally by
    default, reusing the source's surviving tracking bitmap and the
    destination's partial copy.  With ``replace=True`` a retry whose
    destination died or tripped its circuit breaker is re-placed through
    the HostManager pipeline first (the partial-copy table is keyed per
    destination, so the new target starts clean automatically).
    ``default_deadline`` is a per-job wall-clock budget in simulated
    seconds from submission; once passed, no further attempt starts.
    """

    max_attempts: int = 3
    initial_backoff: float = 0.5
    backoff_factor: float = 2.0
    max_backoff: float = 60.0
    incremental: bool = True
    wait_for_restart: bool = False
    replace: bool = True
    default_deadline: Optional[float] = None


@dataclass
class MigrationJob:
    """One scheduled VM move and its lifecycle."""

    domain: "Domain"
    destination: "Host"
    scheme: str = "tpm"
    workload_name: str = "unknown"
    #: pending -> running -> done | failed
    status: str = "pending"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    ended_at: Optional[float] = None
    report: Optional[MigrationReport] = None
    error: Optional[Exception] = None
    process: Optional["Process"] = None
    scheme_kwargs: dict = field(default_factory=dict)
    #: True for jobs whose destination the *scheduler* chose (evacuate /
    #: rebalance): if that destination crashes or enters maintenance
    #: while the job queues, admission re-places it.  Explicitly
    #: submitted jobs keep their requested destination and fail instead.
    replaceable: bool = False
    #: Absolute simulated time after which no retry attempt starts
    #: (None = unbounded).
    deadline: Optional[float] = None
    #: Attempt budget for this job (1 = no retries).
    max_attempts: int = 1
    #: Attempts actually made (0 until the job starts).
    attempts: int = 0
    #: Structured record of every failed attempt, in order.
    failures: list[JobFailure] = field(default_factory=list)

    @property
    def queue_time(self) -> float:
        """Seconds spent waiting for admission + link slots."""
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submitted_at

    @property
    def succeeded(self) -> bool:
        return self.status == "done"

    @property
    def failure(self) -> Optional[JobFailure]:
        """The most recent failure record, or None."""
        return self.failures[-1] if self.failures else None


class ClusterScheduler:
    """Runs many migrations concurrently over a shared topology."""

    def __init__(self, env: "Environment", migrator: Migrator,
                 max_concurrent: int = 4,
                 per_link_limit: Optional[int] = None,
                 config: Optional["MigrationConfig"] = None,
                 hostmanager: Optional[HostManager] = None,
                 retry: Optional[RetryPolicy] = None,
                 health: Optional["HealthMonitor"] = None,
                 shed_threshold: Optional[float] = None) -> None:
        if max_concurrent < 1:
            raise MigrationError(
                f"max_concurrent must be >= 1, got {max_concurrent}")
        if per_link_limit is not None and per_link_limit < 1:
            raise MigrationError(
                f"per_link_limit must be >= 1, got {per_link_limit}")
        if shed_threshold is not None and not 0.0 < shed_threshold <= 1.0:
            raise MigrationError(
                f"shed_threshold must be in (0, 1], got {shed_threshold}")
        self.env = env
        self.migrator = migrator
        self.config = config
        self.max_concurrent = max_concurrent
        self.per_link_limit = per_link_limit
        #: Job-level recovery policy (None = fail fast, the pre-recovery
        #: behaviour the equivalence gate pins down).
        self.retry = retry
        #: Per-host circuit breakers (None = no health tracking).
        self.health = health
        #: Reject new submissions while this fraction of hosts has an
        #: open breaker (None = never shed).
        self.shed_threshold = shed_threshold
        self._admission = Resource(env, capacity=max_concurrent)
        #: duplex-link name -> in-flight slot resource (lazy).
        self._link_slots: dict[str, Resource] = {}
        #: Every job ever submitted, in submission order.
        self.jobs: list[MigrationJob] = []
        #: Jobs that exhausted their recovery budget (or failed with
        #: recovery off) — the operator's to-triage list.
        self.dead_letter: list[MigrationJob] = []
        #: Submissions rejected by overload shedding (count only; no
        #: job object is created for shed work).
        self.shed_count = 0
        #: host name -> migrations currently scheduled *toward* that host
        #: but not yet completed (placement looks at planned load).
        self._inbound: dict[str, int] = {}
        #: The placement pipeline.  The default manager shares this
        #: scheduler's live inbound map, so HostState.planned_load tracks
        #: submissions without explicit refresh calls.
        self.hostmanager = hostmanager if hostmanager is not None else \
            HostManager(migrator.topology, inbound=self._inbound)
        # The scheduler owns inbound bookkeeping; an externally built
        # manager is rewired onto the live map so its planned-load view
        # tracks submissions.
        self.hostmanager._inbound = self._inbound
        if health is not None:
            # Placement consults the breakers: wire the monitor onto the
            # manager and make sure the ``healthy`` filter runs.
            self.hostmanager.health = health
            if "healthy" not in self.hostmanager.filter_names:
                self.hostmanager.filter_names = (
                    *self.hostmanager.filter_names, "healthy")

    # -- introspection -----------------------------------------------------

    @property
    def running(self) -> int:
        """Jobs currently holding an admission slot."""
        return self._admission.count

    @property
    def waiting(self) -> int:
        """Jobs queued for admission."""
        return self._admission.queue_length

    def planned_load(self) -> dict[str, int]:
        """Host name -> resident domains + inbound scheduled migrations."""
        loads = {name: len(host.domains)
                 for name, host in self.migrator.topology.hosts.items()}
        for name, inbound in self._inbound.items():
            loads[name] = loads.get(name, 0) + inbound
        return loads

    # -- submission --------------------------------------------------------

    def _shed_check(self) -> None:
        """Raise :class:`AdmissionRejected` while the fleet is melting."""
        if self.shed_threshold is None or self.health is None:
            return
        hosts = [host for host in self.migrator.topology.hosts.values()
                 if not getattr(host, "is_surrogate", False)]
        self.health.poll(hosts)
        fraction = self.health.open_fraction(host.name for host in hosts)
        if fraction >= self.shed_threshold:
            self.shed_count += 1
            self.env.metrics.counter("cluster.jobs.shed").inc()
            self.env.tracer.instant("cluster:shed", category="cluster",
                                    open_fraction=fraction)
            raise AdmissionRejected(
                f"admission shed: {fraction:.0%} of hosts have an open "
                f"circuit breaker (threshold {self.shed_threshold:.0%})",
                open_fraction=fraction)

    def submit(self, domain: "Domain", destination: "Host",
               scheme: str = "tpm", workload_name: str = "unknown",
               config: Optional["MigrationConfig"] = None,
               scheme_kwargs: Optional[dict] = None,
               replaceable: bool = False,
               deadline: Optional[float] = None,
               max_attempts: Optional[int] = None) -> MigrationJob:
        """Queue one migration; returns its :class:`MigrationJob`.

        The job runs as a simulation process — drive the environment
        (``env.run`` / :meth:`drain`) to make progress.  With
        ``replaceable=True`` (what :meth:`evacuate` / :meth:`rebalance`
        pass) the destination is treated as a scheduler choice and may be
        re-placed at admission time if it stops being a valid target.

        ``deadline`` is an *absolute* simulated time bound on retries;
        ``max_attempts`` overrides the scheduler :class:`RetryPolicy`'s
        budget for this job.  Both default from the policy (no policy:
        one attempt, no deadline).  Raises
        :class:`~repro.errors.AdmissionRejected` when overload shedding
        is active and too many breakers are open.
        """
        self._shed_check()
        if max_attempts is None:
            max_attempts = (self.retry.max_attempts
                            if self.retry is not None else 1)
        if deadline is None and self.retry is not None \
                and self.retry.default_deadline is not None:
            deadline = self.env.now + self.retry.default_deadline
        job = MigrationJob(domain=domain, destination=destination,
                           scheme=scheme, workload_name=workload_name,
                           submitted_at=self.env.now,
                           scheme_kwargs=dict(scheme_kwargs or {}),
                           replaceable=replaceable,
                           deadline=deadline, max_attempts=max_attempts)
        self.jobs.append(job)
        self._inbound[destination.name] = (
            self._inbound.get(destination.name, 0) + 1)
        job.process = self.env.process(
            self._run(job, config),
            name=f"cluster:{domain.name}->{destination.name}")
        return job

    def _slots_for(self, source: "Host", destination: "Host"
                   ) -> list[Resource]:
        """In-flight slot resources for every duplex link on the route,
        in sorted name order (global acquisition order → no deadlock)."""
        if self.per_link_limit is None:
            return []
        duplexes = self.migrator.topology.duplex_links_between(
            source, destination)
        named = {duplex.forward.name: duplex for duplex in duplexes}
        slots = []
        for name in sorted(named):
            slot = self._link_slots.get(name)
            if slot is None:
                slot = self._link_slots[name] = Resource(
                    self.env, capacity=self.per_link_limit)
            slots.append(slot)
        return slots

    def _record_failure(self, job: MigrationJob, exc: Exception,
                        destination: "Host", attempt: int,
                        phase: Optional[str] = None) -> JobFailure:
        """Append a structured :class:`JobFailure` and feed the health
        monitor (the destination is charged unless the *source* is the
        crashed party)."""
        if phase is None:
            report = getattr(exc, "report", None)
            phase = (report.extra.get("failed_phase", "unknown")
                     if report is not None else "unknown")
        cause = exc.__cause__ if exc.__cause__ is not None else exc
        failure = JobFailure(
            error_type=type(cause).__name__, message=str(exc),
            phase=phase, attempt=attempt, at=self.env.now,
            destination=destination.name)
        job.failures.append(failure)
        self.env.metrics.counter("cluster.jobs.attempt_failures").inc()
        if self.health is not None:
            source = job.domain.host
            if source is None or not source.crashed:
                self.health.record_failure(destination.name)
        return failure

    def _dead_letter(self, job: MigrationJob) -> None:
        self.dead_letter.append(job)
        self.env.metrics.counter("cluster.jobs.dead_letter").inc()
        self.env.tracer.instant(
            "cluster:dead-letter", category="cluster",
            domain=job.domain.name, attempts=job.attempts,
            failure=str(job.failure) if job.failure else None)

    def _retry_replacement(self, job: MigrationJob, domain: "Domain",
                           destination: "Host", attempt: int,
                           failure: Exception) -> Optional["Host"]:
        """MigrationRetrier hook: re-place a retry whose destination died
        or tripped its breaker; None keeps the current target."""
        if self.retry is None or not self.retry.replace:
            return None
        if not job.replaceable or getattr(destination, "is_surrogate",
                                          False):
            # Explicit submissions (and cross-rack surrogates, whose
            # transplant is keyed to the original target) keep their
            # destination across retries.
            return None
        if self.health is not None:
            self.health.poll(self.migrator.topology.hosts.values())
        suspect = (not destination.available
                   or (self.health is not None
                       and not self.health.healthy(destination.name)))
        if not suspect:
            return None
        try:
            replacement = self.hostmanager.select(
                PlacementSpec(domain=domain),
                exclude=(destination.name,))
        except NoValidHost:
            # Nowhere better to go; keep retrying the original (it may
            # restart) rather than giving up early.
            return None
        if replacement is destination:
            return None
        self.env.tracer.instant("cluster:replace", category="cluster",
                                domain=domain.name, old=destination.name,
                                new=replacement.name, attempt=attempt)
        self.env.metrics.counter("cluster.jobs.replaced").inc()
        self._inbound[destination.name] -= 1
        self._inbound[replacement.name] = (
            self._inbound.get(replacement.name, 0) + 1)
        self.hostmanager.note_link(destination, -1)
        self.hostmanager.note_link(replacement, +1)
        job.destination = replacement
        return replacement

    def _run(self, job: MigrationJob,
             config: Optional["MigrationConfig"]) -> Generator:
        env = self.env
        tracer = env.tracer
        with self._admission.request() as admission:
            yield admission
            source = job.domain.host
            if source is None:
                job.status = "failed"
                job.error = MigrationError(
                    f"{job.domain} is not running on any host")
                job.attempts = 1
                job.failures.append(JobFailure(
                    error_type="MigrationError", message=str(job.error),
                    phase="admission", attempt=1, at=env.now,
                    destination=job.destination.name))
                job.ended_at = env.now
                self._inbound[job.destination.name] -= 1
                self._dead_letter(job)
                return
            if job.replaceable and (
                    not job.destination.available
                    or (self.health is not None
                        and not self.health.healthy(job.destination.name))):
                # The chosen destination crashed, entered maintenance or
                # tripped its breaker while this job queued (mid-churn).
                # Re-run placement — explicit submissions keep their
                # target and fail inside the migrator instead.
                try:
                    replacement = self.hostmanager.select(
                        PlacementSpec(domain=job.domain))
                except NoValidHost as exc:
                    job.status = "failed"
                    job.error = exc
                    job.attempts = 1
                    job.failures.append(JobFailure(
                        error_type="NoValidHost", message=str(exc),
                        phase="placement", attempt=1, at=env.now,
                        destination=job.destination.name))
                    job.ended_at = env.now
                    self._inbound[job.destination.name] -= 1
                    self._dead_letter(job)
                    return
                tracer.instant("cluster:replace", category="cluster",
                               domain=job.domain.name,
                               old=job.destination.name,
                               new=replacement.name)
                self._inbound[job.destination.name] -= 1
                self._inbound[replacement.name] = (
                    self._inbound.get(replacement.name, 0) + 1)
                job.destination = replacement
            grants = []
            try:
                for slot in self._slots_for(source, job.destination):
                    request = slot.request()
                    grants.append(request)
                    yield request
                job.status = "running"
                job.started_at = env.now
                # Feed the link-headroom filter: both endpoints' uplinks
                # now carry one more in-flight migration.
                self.hostmanager.note_link(source, +1)
                self.hostmanager.note_link(job.destination, +1)
                span = tracer.begin(f"cluster:job:{job.domain.name}",
                                    category="cluster", scheme=job.scheme,
                                    src=source.name,
                                    dst=job.destination.name,
                                    queue_time=job.queue_time)
                cfg = config if config is not None else self.config
                try:
                    if job.max_attempts <= 1:
                        job.attempts = 1
                        job.report = yield from self.migrator.migrate(
                            job.domain, job.destination, cfg,
                            workload_name=job.workload_name,
                            scheme=job.scheme,
                            scheme_kwargs=job.scheme_kwargs or None)
                    else:
                        job.report = yield from self._run_with_retry(
                            job, cfg)
                    job.status = "done"
                    if job.report is not None and job.report.attempts:
                        job.attempts = job.report.attempts
                    if self.health is not None:
                        self.health.record_success(job.destination.name)
                    tracer.end(span, status="done", attempts=job.attempts)
                except MigrationError as exc:
                    job.status = "failed"
                    job.error = exc
                    job.report = getattr(exc, "report", None)
                    if job.max_attempts <= 1:
                        self._record_failure(job, exc, job.destination,
                                             attempt=1)
                    last = job.failure
                    tracer.end(
                        span, status="failed", failure=str(exc),
                        failure_type=last.error_type if last else None,
                        failure_phase=last.phase if last else None,
                        attempts=job.attempts)
                    self._dead_letter(job)
            finally:
                job.ended_at = env.now
                self._inbound[job.destination.name] -= 1
                if job.started_at is not None:
                    self.hostmanager.note_link(source, -1)
                    self.hostmanager.note_link(job.destination, -1)
                for request in grants:
                    request.release()
        self.env.metrics.counter(
            f"cluster.jobs.{job.status}").inc()

    def _run_with_retry(self, job: MigrationJob,
                        cfg: Optional["MigrationConfig"]) -> Generator:
        """Drive one job through :class:`MigrationRetrier` with the
        scheduler's policy, recording every attempt's failure."""
        policy = self.retry if self.retry is not None else RetryPolicy()

        def note(attempt: int, destination: "Host", failure) -> None:
            job.attempts = attempt
            self._record_failure(job, failure, destination, attempt)

        def replace(domain, destination, attempt, failure):
            return self._retry_replacement(job, domain, destination,
                                           attempt, failure)

        retrier = MigrationRetrier(
            self.migrator, max_attempts=job.max_attempts,
            initial_backoff=policy.initial_backoff,
            backoff_factor=policy.backoff_factor,
            incremental=policy.incremental,
            max_backoff=policy.max_backoff,
            wait_for_restart=policy.wait_for_restart)
        report = yield from retrier.migrate(
            job.domain, job.destination, cfg,
            workload_name=job.workload_name, scheme=job.scheme,
            scheme_kwargs=job.scheme_kwargs or None,
            deadline=job.deadline,
            replace_destination=replace,
            on_attempt_failure=note)
        return report

    # -- bulk operations ---------------------------------------------------

    def _candidates(self, exclude: "Host",
                    domain: Optional["Domain"] = None) -> list["Host"]:
        """Hosts the placement pipeline allows as destinations, sorted by
        name.  Crashed and in-maintenance hosts never appear (the filter
        chain's ``up`` filter), so legacy policy callables can no longer
        pick a dead target mid-churn."""
        spec = PlacementSpec(domain=domain, source=exclude)
        states = self.hostmanager.filter_hosts(spec)
        return [state.host for state in states]

    def place(self, domain: "Domain",
              policy: Optional[PlacementPolicy] = None) -> "Host":
        """Choose a destination for one domain.

        Without ``policy`` the HostManager filter/weigher pipeline
        decides; a legacy :data:`PlacementPolicy` callable is honoured
        but only sees pipeline-filtered candidates.
        """
        if policy is None:
            return self.hostmanager.select(PlacementSpec(domain=domain))
        candidates = self._candidates(domain.host, domain=domain)
        return policy(domain, candidates, self.planned_load())

    def evacuate(self, host: "Host",
                 policy: Optional[PlacementPolicy] = None,
                 scheme: str = "tpm",
                 workload_name: str = "unknown") -> list[MigrationJob]:
        """Schedule every domain off ``host`` (maintenance drain).

        Destinations flow through the HostManager pipeline (or a legacy
        ``policy`` callable over its filtered candidates) against planned
        load, so a burst of simultaneous placements spreads across the
        cluster.  Returns the submitted jobs; drive the env (or
        :meth:`drain`) to execute them.
        """
        jobs = []
        for domain in sorted(host.domains, key=lambda d: d.domain_id):
            destination = self.place(domain, policy)
            # submit() bumps the shared inbound map, so the next
            # placement in this burst already sees the planned load.
            jobs.append(self.submit(domain, destination, scheme=scheme,
                                    workload_name=workload_name,
                                    replaceable=True))
        self.env.tracer.instant("cluster:evacuate", category="cluster",
                                host=host.name, jobs=len(jobs))
        return jobs

    def rebalance(self, policy: Optional[PlacementPolicy] = None,
                  scheme: str = "tpm") -> list[MigrationJob]:
        """One pass of load spreading: move domains off hosts above the
        ceiling of the mean planned load onto pipeline-chosen targets."""
        jobs: list[MigrationJob] = []
        loads = self.planned_load()
        hosts = sorted(self.migrator.topology.hosts.values(),
                       key=lambda h: h.name)
        if not hosts:
            return jobs
        total = sum(loads.get(h.name, 0) for h in hosts)
        ceiling = -(-total // len(hosts))  # ceil(mean)
        for host in hosts:
            scheduled: set[int] = set()
            while loads.get(host.name, 0) > ceiling:
                # Domains already submitted are still resident until their
                # migration commits — skip them, don't re-pick them.
                movable = [d for d in host.domains
                           if d.domain_id not in scheduled]
                if not movable:
                    break
                domain = min(movable, key=lambda d: d.domain_id)
                try:
                    below = [c for c in self._candidates(host, domain=domain)
                             if loads.get(c.name, 0) < ceiling]
                except NoValidHost:
                    below = []
                if not below:
                    break
                if policy is None:
                    survivors = [self.hostmanager.state_of(c) for c in below]
                    spec = PlacementSpec(domain=domain, source=host)
                    destination = self.hostmanager.weigh_hosts(
                        survivors, spec)[0][1].host
                else:
                    destination = policy(domain, below, loads)
                scheduled.add(domain.domain_id)
                loads[host.name] -= 1
                loads[destination.name] = loads.get(destination.name, 0) + 1
                jobs.append(self.submit(domain, destination, scheme=scheme,
                                        replaceable=True))
        self.env.tracer.instant("cluster:rebalance", category="cluster",
                                jobs=len(jobs))
        return jobs

    # -- completion --------------------------------------------------------

    def drain(self, jobs: Optional[list[MigrationJob]] = None):
        """Run the simulation until the given jobs (default: all) finish.

        Returns the jobs, with their reports/errors filled in.
        """
        jobs = self.jobs if jobs is None else jobs
        pending = [job.process for job in jobs
                   if job.process is not None and not job.process.processed]
        if pending:
            self.env.run(until=self.env.all_of(pending))
        return jobs

    def makespan(self, jobs: Optional[list[MigrationJob]] = None) -> float:
        """Wall-clock span from first submission to last completion."""
        jobs = self.jobs if jobs is None else jobs
        finished = [job for job in jobs if job.ended_at is not None]
        if not finished:
            return 0.0
        return (max(job.ended_at for job in finished)
                - min(job.submitted_at for job in finished))
