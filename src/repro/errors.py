"""Exception hierarchy for the :mod:`repro` package.

Every error raised by library code derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation engine."""


class StaleSchedulingError(SimulationError):
    """Raised when an event is scheduled into the simulated past."""


class BitmapError(ReproError):
    """Raised for invalid block-bitmap operations (bad index, size mismatch)."""


class StorageError(ReproError):
    """Raised for invalid virtual-block-device operations."""


class ConsistencyError(StorageError):
    """Raised when a consistency check between two disks (or a disk and its
    expected contents) fails.  A migration that completes and still raises
    this indicates an algorithmic bug, never a tolerable condition."""


class NetworkError(ReproError):
    """Raised for invalid network-channel operations."""


class MigrationError(ReproError):
    """Raised when a migration cannot proceed (bad configuration, source and
    destination disagree about geometry, VM in the wrong lifecycle state)."""


class NoValidHost(MigrationError):
    """Raised when placement runs out of candidates: every host in the
    cluster was eliminated by the active filter chain (crashed, in a
    maintenance window, over capacity, failing affinity, ...).

    Carries a per-filter elimination breakdown so callers can report
    *why* the cluster had no room, nova-style.
    """

    def __init__(self, message: str, eliminated: dict | None = None) -> None:
        super().__init__(message)
        #: filter name -> number of candidates that filter rejected.
        self.eliminated = dict(eliminated or {})


class AdmissionRejected(MigrationError):
    """Raised when the cluster scheduler sheds new work at submission:
    too large a fraction of the fleet's circuit breakers are open, so
    piling more migrations on the survivors would only deepen the
    incident.  Carries the open fraction that tripped the rejection."""

    def __init__(self, message: str, open_fraction: float = 0.0) -> None:
        super().__init__(message)
        self.open_fraction = open_fraction


class MigrationAborted(MigrationError):
    """Raised when a migration is proactively aborted, e.g. because the
    storage dirty rate exceeds the transfer rate for too many iterations."""


class MigrationFailed(MigrationError):
    """Raised when an in-flight migration dies mid-way (link blackout, host
    crash) rather than being cancelled on purpose.

    Carries the partial :class:`~repro.core.metrics.MigrationReport` and —
    when the pre-copy write-tracking bitmap survived on the source — the
    destination's partially populated VBD, so a retry can resume
    incrementally instead of restarting from scratch (§V's mechanism
    repurposed as fault tolerance).
    """

    def __init__(self, message: str, report=None, dest_vbd=None) -> None:
        super().__init__(message)
        #: Partial report of the failed attempt (phase timings, wire bytes).
        self.report = report
        #: Destination VBD holding the blocks confirmed before the failure,
        #: or None when nothing usable survived.
        self.dest_vbd = dest_vbd


class FaultError(ReproError):
    """Raised for invalid fault-plan specifications."""


class PersistError(ReproError):
    """Raised for invalid durable-bitmap-store operations (corrupt snapshot
    or journal, unknown format version, session misuse).  Recovery itself
    never raises for *data loss* — a lost journal tail degrades to
    conservative over-marking — only for misuse or unrecoverable state."""
