"""Guest physical memory with dirty-page tracking.

Memory uses the same generation-stamp substitution as the VBD: each page
carries a ``uint64`` write generation, and Xen-style shadow-mode dirty
logging is a :class:`~repro.bitmap.flat.FlatBitmap` over pages.  The memory
pre-copier scans and resets the dirty map per round exactly like the disk
pre-copier scans the block-bitmap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..bitmap import FlatBitmap
from ..errors import StorageError
from ..storage.vbd import GenerationClock
from ..units import PAGE_SIZE


class GuestMemory:
    """``npages`` of guest RAM with optional dirty logging."""

    def __init__(
        self,
        npages: int,
        page_size: int = PAGE_SIZE,
        clock: Optional[GenerationClock] = None,
    ) -> None:
        if npages <= 0:
            raise StorageError(f"memory must have at least one page, got {npages}")
        self.npages = int(npages)
        self.page_size = int(page_size)
        self.clock = clock if clock is not None else GenerationClock()
        self._gen = np.zeros(self.npages, dtype=np.uint64)
        self._dirty: Optional[FlatBitmap] = None

    @property
    def nbytes(self) -> int:
        return self.npages * self.page_size

    # -- dirty logging (Xen shadow mode) ---------------------------------

    @property
    def logging(self) -> bool:
        """True while dirty logging is enabled."""
        return self._dirty is not None

    def start_logging(self) -> None:
        """Enable dirty logging with a clean map."""
        self._dirty = FlatBitmap(self.npages)

    def stop_logging(self) -> FlatBitmap:
        """Disable logging and return the final dirty map."""
        if self._dirty is None:
            raise StorageError("dirty logging is not enabled")
        final, self._dirty = self._dirty, None
        return final

    def swap_dirty(self) -> FlatBitmap:
        """Take the current round's dirty map, installing a clean one.

        This is the per-round handoff of iterative memory pre-copy.
        """
        if self._dirty is None:
            raise StorageError("dirty logging is not enabled")
        taken, self._dirty = self._dirty, FlatBitmap(self.npages)
        return taken

    def dirty_count(self) -> int:
        """Pages dirtied since the last swap (0 when not logging)."""
        return self._dirty.count() if self._dirty is not None else 0

    def dirty_indices(self) -> np.ndarray:
        if self._dirty is None:
            return np.empty(0, dtype=np.int64)
        return self._dirty.dirty_indices()

    # -- guest-side writes -------------------------------------------------

    def touch(self, indices: np.ndarray) -> None:
        """The guest writes the given pages."""
        indices = self._check_indices(indices)
        size = indices.size
        if size == 0:
            return
        first = self.clock.tick(size)
        self._gen[indices] = np.arange(first, first + size, dtype=np.uint64)
        if self._dirty is not None:
            # Already validated against npages == nbits just above.
            self._dirty._set_many_unchecked(indices)

    def touch_range(self, start: int, count: int) -> None:
        """The guest writes ``count`` consecutive pages from ``start``."""
        if not (0 <= start and start + count <= self.npages):
            raise StorageError(
                f"page range [{start}, {start + count}) outside memory")
        if count == 0:
            return
        first = self.clock.tick(count)
        self._gen[start:start + count] = np.arange(
            first, first + count, dtype=np.uint64)
        if self._dirty is not None:
            self._dirty.set_range(start, count)

    # -- migration transfer ------------------------------------------------

    def export_pages(self, indices: np.ndarray) -> np.ndarray:
        """Capture page stamps for transfer."""
        return self._gen[self._check_indices(indices)].copy()

    def import_pages(self, indices: np.ndarray, stamps: np.ndarray) -> None:
        """Install transferred pages."""
        indices = self._check_indices(indices)
        stamps = np.asarray(stamps, dtype=np.uint64)
        if stamps.shape != indices.shape:
            raise StorageError("stamps/indices shape mismatch")
        self._gen[indices] = stamps

    def snapshot(self) -> np.ndarray:
        return self._gen.copy()

    def identical_to(self, other: "GuestMemory") -> bool:
        if (self.npages, self.page_size) != (other.npages, other.page_size):
            return False
        return bool(np.array_equal(self._gen, other._gen))

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        # One reduce checks both bounds: a negative int64 reinterprets as a
        # uint64 far above any valid page number.
        if indices.size and int(indices.view(np.uint64).max()) >= self.npages:
            raise StorageError("page indices out of range")
        return indices

    def __repr__(self) -> str:
        state = "logging" if self.logging else "plain"
        return f"<GuestMemory {self.npages} x {self.page_size} B ({state})>"
