"""Virtual machine substrate: CPU state, guest memory, domains, and hosts."""

from .cpu import CPUState
from .domain import Domain, DomainState
from .host import Host, make_testbed
from .memory import GuestMemory

__all__ = [
    "CPUState",
    "Domain",
    "DomainState",
    "GuestMemory",
    "Host",
    "make_testbed",
]
