"""Physical machines: the source and destination of a migration.

A :class:`Host` owns one physical disk and runs domains.  Each attached
domain gets its own VBD (a region of the host's local storage) and a
:class:`~repro.storage.blkback.BackendDriver` instance fronting it — the
split-driver arrangement the paper modifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import MigrationError
from ..persist.store import BitmapStore
from ..storage.blkback import BackendDriver
from ..storage.disk import PhysicalDisk
from ..storage.vbd import GenerationClock, VirtualBlockDevice
from ..units import BLOCK_SIZE, MiB
from .domain import Domain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class Host:
    """One physical machine."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        disk: Optional[PhysicalDisk] = None,
        clock: Optional[GenerationClock] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.disk = disk if disk is not None else PhysicalDisk(env)
        #: Generation clock shared with peer hosts in an experiment so that
        #: block stamps stay globally unique across migrations.
        self.clock = clock if clock is not None else GenerationClock()
        self._domains: dict[int, Domain] = {}
        self._vbds: dict[int, VirtualBlockDevice] = {}
        self._drivers: dict[int, BackendDriver] = {}
        #: Set by the fault injector when this machine dies; a migration
        #: touching a crashed host fails immediately.
        self.crashed = False
        #: Set while the machine is in a maintenance window: it keeps
        #: running its residents (and can be evacuated), but placement
        #: must never pick it as a *destination*.
        self.maintenance = False
        #: Durable bitmap stores on this host's stable storage, keyed by
        #: ``(domain_id, purpose)`` — purpose ``"precopy"`` holds the
        #: migration tracking bitmap, ``"backup"`` a backup chain's.
        self._bitmap_stores: dict[tuple[int, str], BitmapStore] = {}
        #: Domains that were running when the host crashed (resumed on
        #: restart; domains suspended for other reasons stay suspended).
        self._suspended_at_crash: set[int] = set()
        #: Events fired when the host comes back up.
        self._restart_waiters: list = []

    # -- storage provisioning ------------------------------------------------

    def prepare_vbd(
        self,
        nblocks: int,
        block_size: int = BLOCK_SIZE,
        data: bool = False,
    ) -> VirtualBlockDevice:
        """Allocate a fresh (all-clean) VBD on this host's local storage.

        This is what the destination does when the migration initialisation
        asks it to "prepare a VBD for the migrated VM" (§IV-B).
        """
        return VirtualBlockDevice(nblocks, block_size, clock=self.clock, data=data)

    # -- domain placement --------------------------------------------------

    def attach_domain(
        self,
        domain: Domain,
        vbd: VirtualBlockDevice,
        tracking_op_overhead: float = 0.0,
    ) -> BackendDriver:
        """Bind ``domain`` (and its disk on this host) to this machine."""
        if domain.domain_id in self._domains:
            raise MigrationError(
                f"domain id {domain.domain_id} already attached to {self.name}")
        if domain.host is not None:
            raise MigrationError(
                f"{domain} is still attached to {domain.host.name}; detach first")
        driver = BackendDriver(self.env, self.disk, vbd,
                               tracking_op_overhead=tracking_op_overhead)
        self._domains[domain.domain_id] = domain
        self._vbds[domain.domain_id] = vbd
        self._drivers[domain.domain_id] = driver
        domain.host = self
        return driver

    def detach_domain(self, domain_id: int) -> tuple[Domain, VirtualBlockDevice]:
        """Unbind a domain, returning it and the VBD left behind."""
        try:
            domain = self._domains.pop(domain_id)
        except KeyError:
            raise MigrationError(
                f"no domain id {domain_id} on {self.name}") from None
        vbd = self._vbds.pop(domain_id)
        self._drivers.pop(domain_id)
        domain.host = None
        return domain, vbd

    # -- lookups ---------------------------------------------------------

    def domain(self, domain_id: int) -> Domain:
        try:
            return self._domains[domain_id]
        except KeyError:
            raise MigrationError(
                f"no domain id {domain_id} on {self.name}") from None

    def vbd_of(self, domain_id: int) -> VirtualBlockDevice:
        try:
            return self._vbds[domain_id]
        except KeyError:
            raise MigrationError(
                f"no VBD for domain id {domain_id} on {self.name}") from None

    def driver_of(self, domain_id: int) -> BackendDriver:
        try:
            return self._drivers[domain_id]
        except KeyError:
            raise MigrationError(
                f"no backend driver for domain id {domain_id} on {self.name}"
            ) from None

    @property
    def domains(self) -> list[Domain]:
        return list(self._domains.values())

    # -- durable bitmap stores -------------------------------------------

    def bitmap_store(
        self,
        domain_id: int,
        purpose: str = "precopy",
        nbits: Optional[int] = None,
        policy: str = "wal",
        flush_every: int = 64,
        region_bits: int = 4096,
        snapshot_every: int = 4096,
    ) -> BitmapStore:
        """The durable bitmap store for ``(domain_id, purpose)`` on this
        host's stable storage, created on first use.

        An existing store is returned as-is (its policy knobs are fixed at
        creation): the store *is* the persisted state, so a restarted host
        finds the pre-crash instance here and recovers from it.
        """
        key = (domain_id, purpose)
        store = self._bitmap_stores.get(key)
        if store is None:
            if nbits is None:
                nbits = self.vbd_of(domain_id).nblocks
            store = BitmapStore(nbits, policy=policy,
                                flush_every=flush_every,
                                region_bits=region_bits,
                                snapshot_every=snapshot_every)
            self._bitmap_stores[key] = store
        return store

    def has_recoverable_bitmap(self, domain_id: int,
                               purpose: str = "precopy") -> bool:
        store = self._bitmap_stores.get((domain_id, purpose))
        return store is not None and store.recoverable

    # -- maintenance windows ---------------------------------------------

    def enter_maintenance(self) -> None:
        """Open a maintenance window: residents keep running, but the
        placement pipeline stops offering this host as a destination."""
        self.maintenance = True

    def exit_maintenance(self) -> None:
        self.maintenance = False

    @property
    def available(self) -> bool:
        """True when placement may target this host (up, not draining)."""
        return not self.crashed and not self.maintenance

    # -- crash / restart lifecycle ---------------------------------------

    def crash(self) -> None:
        """This machine dies: every in-memory structure is lost.

        Running domains stop (remembered so :meth:`restart` can bring
        exactly those back), backend drivers discard their tracking
        bitmaps and any in-flight I/O, and each durable bitmap store loses
        its un-flushed journal tail — the persisted prefix is all a later
        recovery may read.
        """
        if self.crashed:
            return
        self.crashed = True
        for domain in self._domains.values():
            if domain.running:
                domain.suspend()
                self._suspended_at_crash.add(domain.domain_id)
        for driver in self._drivers.values():
            driver.crashed = True
            driver.drop_tracking()
        for store in self._bitmap_stores.values():
            store.crash()

    def restart(self) -> None:
        """Bring a crashed machine back up.

        Stores with recoverable pre-copy sessions are recovered into fresh
        tracking bitmaps (registered under the pre-copy tracking name, so
        a retry finds a *surviving* bitmap and resumes incrementally —
        §V's mechanism, now crash-proof).  Domains the crash stopped are
        resumed; anything suspended for other reasons stays down.
        """
        if not self.crashed:
            return
        self.crashed = False
        for driver in self._drivers.values():
            driver.crashed = False
        # Late import: core imports vm, not the other way around.
        from ..core.precopy import TRACKING_NAME
        from ..persist.tracked import PersistentBitmap

        for (domain_id, purpose), store in self._bitmap_stores.items():
            if purpose != "precopy" or not store.recoverable:
                continue
            if domain_id not in self._drivers:
                continue  # domain moved away; its chain recovers itself
            recovered, _info = store.recover()
            driver = self._drivers[domain_id]
            wrapper = PersistentBitmap(recovered, store, recovered=True)
            if driver.has_tracking(TRACKING_NAME):
                driver.swap_tracking(TRACKING_NAME, wrapper)
            else:
                driver.start_tracking(TRACKING_NAME, wrapper)
        suspended, self._suspended_at_crash = self._suspended_at_crash, set()
        for domain_id in suspended:
            domain = self._domains.get(domain_id)
            if domain is not None and not domain.running:
                domain.resume()
        waiters, self._restart_waiters = self._restart_waiters, []
        for event in waiters:
            event.succeed()

    def wait_until_up(self):
        """``yield from`` inside a process: returns once the host is up."""
        while self.crashed:
            event = self.env.event()
            self._restart_waiters.append(event)
            yield event

    def __repr__(self) -> str:
        return f"<Host {self.name!r} domains={sorted(self._domains)}>"


def make_testbed(
    env: "Environment",
    disk_read_bw: float = 70 * MiB,
    disk_write_bw: float = 60 * MiB,
    seek_time: float = 0.5e-3,
) -> tuple[Host, Host, GenerationClock]:
    """Two identically configured machines sharing one generation clock.

    Mirrors the paper's experimental environment: two Core 2 Duo machines
    with SATA2 disks on a Gigabit LAN (the LAN itself is built separately
    via :func:`repro.net.channel.channel_pair`).
    """
    clock = GenerationClock()
    src = Host(env, "source",
               PhysicalDisk(env, disk_read_bw, disk_write_bw, seek_time), clock)
    dst = Host(env, "destination",
               PhysicalDisk(env, disk_read_bw, disk_write_bw, seek_time), clock)
    return src, dst, clock
