"""Physical machines: the source and destination of a migration.

A :class:`Host` owns one physical disk and runs domains.  Each attached
domain gets its own VBD (a region of the host's local storage) and a
:class:`~repro.storage.blkback.BackendDriver` instance fronting it — the
split-driver arrangement the paper modifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import MigrationError
from ..storage.blkback import BackendDriver
from ..storage.disk import PhysicalDisk
from ..storage.vbd import GenerationClock, VirtualBlockDevice
from ..units import BLOCK_SIZE, MiB
from .domain import Domain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class Host:
    """One physical machine."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        disk: Optional[PhysicalDisk] = None,
        clock: Optional[GenerationClock] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.disk = disk if disk is not None else PhysicalDisk(env)
        #: Generation clock shared with peer hosts in an experiment so that
        #: block stamps stay globally unique across migrations.
        self.clock = clock if clock is not None else GenerationClock()
        self._domains: dict[int, Domain] = {}
        self._vbds: dict[int, VirtualBlockDevice] = {}
        self._drivers: dict[int, BackendDriver] = {}
        #: Set by the fault injector when this machine dies; a migration
        #: touching a crashed host fails immediately.
        self.crashed = False

    # -- storage provisioning ------------------------------------------------

    def prepare_vbd(
        self,
        nblocks: int,
        block_size: int = BLOCK_SIZE,
        data: bool = False,
    ) -> VirtualBlockDevice:
        """Allocate a fresh (all-clean) VBD on this host's local storage.

        This is what the destination does when the migration initialisation
        asks it to "prepare a VBD for the migrated VM" (§IV-B).
        """
        return VirtualBlockDevice(nblocks, block_size, clock=self.clock, data=data)

    # -- domain placement --------------------------------------------------

    def attach_domain(
        self,
        domain: Domain,
        vbd: VirtualBlockDevice,
        tracking_op_overhead: float = 0.0,
    ) -> BackendDriver:
        """Bind ``domain`` (and its disk on this host) to this machine."""
        if domain.domain_id in self._domains:
            raise MigrationError(
                f"domain id {domain.domain_id} already attached to {self.name}")
        if domain.host is not None:
            raise MigrationError(
                f"{domain} is still attached to {domain.host.name}; detach first")
        driver = BackendDriver(self.env, self.disk, vbd,
                               tracking_op_overhead=tracking_op_overhead)
        self._domains[domain.domain_id] = domain
        self._vbds[domain.domain_id] = vbd
        self._drivers[domain.domain_id] = driver
        domain.host = self
        return driver

    def detach_domain(self, domain_id: int) -> tuple[Domain, VirtualBlockDevice]:
        """Unbind a domain, returning it and the VBD left behind."""
        try:
            domain = self._domains.pop(domain_id)
        except KeyError:
            raise MigrationError(
                f"no domain id {domain_id} on {self.name}") from None
        vbd = self._vbds.pop(domain_id)
        self._drivers.pop(domain_id)
        domain.host = None
        return domain, vbd

    # -- lookups ---------------------------------------------------------

    def domain(self, domain_id: int) -> Domain:
        try:
            return self._domains[domain_id]
        except KeyError:
            raise MigrationError(
                f"no domain id {domain_id} on {self.name}") from None

    def vbd_of(self, domain_id: int) -> VirtualBlockDevice:
        try:
            return self._vbds[domain_id]
        except KeyError:
            raise MigrationError(
                f"no VBD for domain id {domain_id} on {self.name}") from None

    def driver_of(self, domain_id: int) -> BackendDriver:
        try:
            return self._drivers[domain_id]
        except KeyError:
            raise MigrationError(
                f"no backend driver for domain id {domain_id} on {self.name}"
            ) from None

    @property
    def domains(self) -> list[Domain]:
        return list(self._domains.values())

    def __repr__(self) -> str:
        return f"<Host {self.name!r} domains={sorted(self._domains)}>"


def make_testbed(
    env: "Environment",
    disk_read_bw: float = 70 * MiB,
    disk_write_bw: float = 60 * MiB,
    seek_time: float = 0.5e-3,
) -> tuple[Host, Host, GenerationClock]:
    """Two identically configured machines sharing one generation clock.

    Mirrors the paper's experimental environment: two Core 2 Duo machines
    with SATA2 disks on a Gigabit LAN (the LAN itself is built separately
    via :func:`repro.net.channel.channel_pair`).
    """
    clock = GenerationClock()
    src = Host(env, "source",
               PhysicalDisk(env, disk_read_bw, disk_write_bw, seek_time), clock)
    dst = Host(env, "destination",
               PhysicalDisk(env, disk_read_bw, disk_write_bw, seek_time), clock)
    return src, dst, clock
