"""Guest CPU run-time state.

The CPU state is the smallest piece of the whole-system state: register
file, pending virtual interrupts, and paravirtual context.  It is shipped
once, during freeze-and-copy, and its size contributes (marginally) to
downtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CPUState:
    """Opaque register/context blob of one virtual CPU set."""

    #: Serialized size; a few KiB covers registers + shadow state for the
    #: paper's single-vCPU guests.
    state_nbytes: int = 8 * 1024
    #: Monotonic context version, bumped on every capture; lets tests assert
    #: the destination resumed from the *latest* capture.
    version: int = 0
    #: Free-form payload for tests (e.g. a fake program counter).
    context: dict = field(default_factory=dict)

    def capture(self) -> "CPUState":
        """Snapshot the state for transfer (bumps the version)."""
        self.version += 1
        return CPUState(self.state_nbytes, self.version, dict(self.context))

    def restore(self, snapshot: "CPUState") -> None:
        """Adopt a transferred snapshot."""
        self.state_nbytes = snapshot.state_nbytes
        self.version = snapshot.version
        self.context = dict(snapshot.context)
