"""Domains (virtual machines) and their lifecycle.

A :class:`Domain` bundles the whole-system state the paper migrates: guest
memory, CPU state, and a reference to its current VBD.  The domain also
carries the *execution gate*: while suspended, every I/O or memory touch
issued by its workload blocks until the domain resumes — that blocking is
exactly the service unavailability the downtime metric measures.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from ..errors import MigrationError
from ..storage.block import IOKind, IORequest
from ..storage.vbd import VirtualBlockDevice
from .cpu import CPUState
from .memory import GuestMemory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment, Event
    from .host import Host


class DomainState(enum.Enum):
    RUNNING = "running"
    SUSPENDED = "suspended"


class Domain:
    """One virtual machine."""

    _next_id = 1

    def __init__(
        self,
        env: "Environment",
        memory: GuestMemory,
        cpu: Optional[CPUState] = None,
        name: str = "domU",
        domain_id: Optional[int] = None,
    ) -> None:
        self.env = env
        self.memory = memory
        self.cpu = cpu if cpu is not None else CPUState()
        self.name = name
        if domain_id is None:
            domain_id = Domain._next_id
            Domain._next_id += 1
        self.domain_id = domain_id
        self.state = DomainState.RUNNING
        #: Auto-converge write throttle (1.0 = unthrottled).  When > 1,
        #: every guest write takes ``factor ×`` its unthrottled duration
        #: end-to-end, scaling a closed-loop writer's dirty rate by
        #: ``~1/factor`` — the actuator of
        #: :class:`~repro.core.converge.AutoConvergeController`.
        self.write_throttle = 1.0
        #: The host currently executing this domain (set by Host.attach).
        self.host: Optional["Host"] = None
        #: Event that fires on resume; recreated on each suspend.
        self._resumed: Optional["Event"] = None
        #: Lifecycle timestamps of the most recent suspend/resume.
        self.suspended_at: Optional[float] = None
        self.resumed_at: Optional[float] = None

    # -- placement -----------------------------------------------------------

    @property
    def vbd(self) -> VirtualBlockDevice:
        """The domain's disk on its *current* host."""
        if self.host is None:
            raise MigrationError(f"{self} is not attached to a host")
        return self.host.vbd_of(self.domain_id)

    @property
    def running(self) -> bool:
        return self.state is DomainState.RUNNING

    # -- lifecycle -------------------------------------------------------

    def suspend(self) -> None:
        """Pause execution (start of freeze-and-copy)."""
        if self.state is not DomainState.RUNNING:
            raise MigrationError(f"{self} is already suspended")
        self.state = DomainState.SUSPENDED
        self.suspended_at = self.env.now
        self._resumed = self.env.event()

    def resume(self) -> None:
        """Continue execution (on whichever host the domain is attached to)."""
        if self.state is not DomainState.SUSPENDED:
            raise MigrationError(f"{self} is not suspended")
        self.state = DomainState.RUNNING
        self.resumed_at = self.env.now
        resumed, self._resumed = self._resumed, None
        if resumed is not None:
            resumed.succeed()

    def ensure_running(self) -> Generator:
        """Block (``yield from``) until the domain is running.

        Workload code calls this before every operation; the accumulated
        blocking is the guest-visible downtime.
        """
        while self.state is DomainState.SUSPENDED:
            yield self._resumed

    # -- guest operations ------------------------------------------------

    def io(self, kind: IOKind, block: int, nblocks: int = 1) -> Generator:
        """Issue one disk request through the current host's backend driver."""
        # Inlined ensure_running(): this runs once per guest I/O, and the
        # extra generator frame costs more than the state check it guards.
        while self.state is DomainState.SUSPENDED:
            yield self._resumed
        host = self.host
        if host is None:
            raise MigrationError(f"{self} is not attached to a host")
        # One placement lookup: the driver owns the same VBD the host
        # registered for this domain at attach time.
        driver = host.driver_of(self.domain_id)
        request = IORequest(kind, block, nblocks, domain_id=self.domain_id,
                            block_size=driver.vbd.block_size)
        throttle = self.write_throttle
        if throttle != 1.0 and kind is IOKind.WRITE:
            # Auto-converge: stretch the write to throttle× its natural
            # duration (QEMU slows the vCPU; stretching the I/O has the
            # same closed-loop effect on the storage dirty rate).
            started = self.env.now
            yield from driver.submit(request)
            stall = (self.env.now - started) * (throttle - 1.0)
            if stall > 0.0:
                yield self.env.timeout(stall)
        else:
            yield from driver.submit(request)

    def read(self, block: int, nblocks: int = 1) -> Generator:
        return self.io(IOKind.READ, block, nblocks)

    def write(self, block: int, nblocks: int = 1) -> Generator:
        return self.io(IOKind.WRITE, block, nblocks)

    def io_batch(self, kind: IOKind, extents) -> Generator:
        """Issue several same-kind requests as one coalesced disk operation.

        ``extents`` is an iterable of ``(first_block, nblocks)``.  Opt-in:
        the batch shares a single disk reservation (one seek), so timing
        differs from issuing the requests one by one — see
        :meth:`~repro.storage.blkback.BackendDriver.submit_coalesced`.
        """
        while self.state is DomainState.SUSPENDED:
            yield self._resumed
        host = self.host
        if host is None:
            raise MigrationError(f"{self} is not attached to a host")
        driver = host.driver_of(self.domain_id)
        block_size = driver.vbd.block_size
        requests = [IORequest(kind, int(first), int(nblocks),
                              domain_id=self.domain_id, block_size=block_size)
                    for first, nblocks in extents]
        throttle = self.write_throttle
        if throttle != 1.0 and kind is IOKind.WRITE:
            started = self.env.now
            yield from driver.submit_coalesced(requests)
            stall = (self.env.now - started) * (throttle - 1.0)
            if stall > 0.0:
                yield self.env.timeout(stall)
        else:
            yield from driver.submit_coalesced(requests)

    def write_batch(self, extents) -> Generator:
        """Coalesced counterpart of :meth:`write` (opt-in, changes timing)."""
        return self.io_batch(IOKind.WRITE, extents)

    def touch_memory(self, indices: np.ndarray) -> None:
        """Dirty guest pages (no simulated time; CPU work is the caller's)."""
        if not self.running:
            raise MigrationError(f"{self} cannot touch memory while suspended")
        self.memory.touch(indices)

    def __repr__(self) -> str:
        where = self.host.name if self.host else "detached"
        return f"<Domain {self.name!r} id={self.domain_id} {self.state.value} on {where}>"
