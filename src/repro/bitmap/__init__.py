"""Block-bitmap dirty tracking (paper §IV-A-2).

The bitmap is the paper's synchronization currency: writes set bits, the
pre-copy loop scans and resets, freeze-and-copy ships the map itself, and
post-copy push/pull both consume it.  Use :func:`make_bitmap` to construct
the layout named in a :class:`~repro.core.config.MigrationConfig`.
"""

from __future__ import annotations

from .base import BlockBitmap
from .flat import FlatBitmap, union_indices
from .layered import DEFAULT_LEAF_BITS, LayeredBitmap
from .granularity import (
    GranularityCost,
    bitmap_wire_nbytes,
    block_to_sectors,
    blocks_for_size,
    byte_range_to_blocks,
    granularity_cost,
    sectors_to_block,
)

from ..errors import BitmapError


def make_bitmap(nbits: int, layout: str = "flat", leaf_bits: int = DEFAULT_LEAF_BITS) -> BlockBitmap:
    """Construct a bitmap of the requested layout (``"flat"`` or ``"layered"``)."""
    if layout == "flat":
        return FlatBitmap(nbits)
    if layout == "layered":
        return LayeredBitmap(nbits, leaf_bits=leaf_bits)
    raise BitmapError(f"unknown bitmap layout {layout!r}")


__all__ = [
    "BlockBitmap",
    "DEFAULT_LEAF_BITS",
    "FlatBitmap",
    "GranularityCost",
    "LayeredBitmap",
    "bitmap_wire_nbytes",
    "block_to_sectors",
    "blocks_for_size",
    "byte_range_to_blocks",
    "granularity_cost",
    "make_bitmap",
    "sectors_to_block",
    "union_indices",
]
