"""Two-layer (layered) block-bitmap (paper §IV-A-2, "Layered-Bitmap").

The bitmap is split into fixed-size *parts* (leaves).  The upper layer holds
one bit per part recording whether that part contains any dirty bit.  Leaves
are allocated lazily on the first write into their range, so a sparse dirty
pattern — the common case, because disk writes are highly local — costs
memory only for the touched parts, and a scan visits only parts whose upper
bit is set.

Popcounts are summarised per leaf: each materialised leaf caches its own
dirty count, a mutation drops only the touched leaves' summaries, and
``count()`` re-sums leaf summaries (recomputing just the stale ones)
instead of re-popcounting every allocated leaf on every call.
"""

from __future__ import annotations

import numpy as np

from ..errors import BitmapError
from .base import BlockBitmap

#: Default part size: 4096 bits = 512 B of wire bitmap covering 16 MiB of
#: disk at 4 KiB granularity.
DEFAULT_LEAF_BITS = 4096


class LayeredBitmap(BlockBitmap):
    """Lazily-allocated two-level bitmap over ``nbits`` blocks."""

    __slots__ = ("leaf_bits", "_nleaves", "_top", "_leaves",
                 "_leaf_counts", "_total", "_indices")

    def __init__(self, nbits: int, leaf_bits: int = DEFAULT_LEAF_BITS) -> None:
        super().__init__(nbits)
        if leaf_bits <= 0:
            raise BitmapError(f"leaf size must be positive, got {leaf_bits}")
        self.leaf_bits = int(leaf_bits)
        self._nleaves = (nbits + leaf_bits - 1) // leaf_bits
        #: Upper layer: True iff the corresponding part may contain dirt.
        self._top = np.zeros(self._nleaves, dtype=bool)
        #: Lazily allocated leaves, keyed by part number.
        self._leaves: dict[int, np.ndarray] = {}
        #: Per-leaf popcount summaries; a missing key means "stale".
        self._leaf_counts: dict[int, int] = {}
        #: Cached total popcount; ``None`` = at least one leaf is stale.
        self._total: "int | None" = 0
        #: Cached ``dirty_indices()`` result (read-only for callers).
        self._indices: "np.ndarray | None" = None

    # -- leaf plumbing -----------------------------------------------------

    def _leaf_len(self, leaf: int) -> int:
        """Number of valid bits in part ``leaf`` (last part may be short)."""
        if leaf == self._nleaves - 1:
            rem = self.nbits - leaf * self.leaf_bits
            return rem
        return self.leaf_bits

    def _get_leaf(self, leaf: int) -> np.ndarray:
        arr = self._leaves.get(leaf)
        if arr is None:
            arr = np.zeros(self._leaf_len(leaf), dtype=bool)
            self._leaves[leaf] = arr
        return arr

    def _touch_leaf(self, leaf: int) -> None:
        """Drop the summaries invalidated by a mutation of ``leaf``."""
        self._leaf_counts.pop(leaf, None)
        self._total = None
        self._indices = None

    # -- single-bit ----------------------------------------------------------

    def set(self, index: int) -> None:
        self._check_index(index)
        leaf, off = divmod(index, self.leaf_bits)
        arr = self._get_leaf(leaf)
        if not arr[off]:
            arr[off] = True
            self._top[leaf] = True
            count = self._leaf_counts.get(leaf)
            if count is not None:
                self._leaf_counts[leaf] = count + 1
            if self._total is not None:
                self._total += 1
            self._indices = None
        else:
            self._top[leaf] = True

    def clear(self, index: int) -> None:
        self._check_index(index)
        leaf, off = divmod(index, self.leaf_bits)
        arr = self._leaves.get(leaf)
        if arr is not None and arr[off]:
            arr[off] = False
            count = self._leaf_counts.get(leaf)
            if count is not None:
                self._leaf_counts[leaf] = count - 1
            if self._total is not None:
                self._total -= 1
            self._indices = None

    def test(self, index: int) -> bool:
        self._check_index(index)
        leaf, off = divmod(index, self.leaf_bits)
        arr = self._leaves.get(leaf)
        return bool(arr[off]) if arr is not None else False

    # -- bulk ------------------------------------------------------------

    def set_many(self, indices: np.ndarray) -> None:
        indices = self._check_indices(indices)
        if indices.size == 0:
            return
        leaves = indices // self.leaf_bits
        offsets = indices - leaves * self.leaf_bits
        for leaf in np.unique(leaves):
            arr = self._get_leaf(int(leaf))
            arr[offsets[leaves == leaf]] = True
            self._top[leaf] = True
            self._touch_leaf(int(leaf))

    def clear_many(self, indices: np.ndarray) -> None:
        indices = self._check_indices(indices)
        if indices.size == 0:
            return
        leaves = indices // self.leaf_bits
        offsets = indices - leaves * self.leaf_bits
        for leaf in np.unique(leaves):
            arr = self._leaves.get(int(leaf))
            if arr is not None:
                arr[offsets[leaves == leaf]] = False
                self._touch_leaf(int(leaf))

    def test_many(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        out = np.zeros(indices.size, dtype=bool)
        if indices.size == 0:
            return out
        leaves = indices // self.leaf_bits
        offsets = indices - leaves * self.leaf_bits
        for leaf in np.unique(leaves):
            arr = self._leaves.get(int(leaf))
            if arr is not None:
                mask = leaves == leaf
                out[mask] = arr[offsets[mask]]
        return out

    def set_range(self, start: int, count: int) -> None:
        self._check_range(start, count)
        if count == 0:
            return
        first, last = start // self.leaf_bits, (start + count - 1) // self.leaf_bits
        for leaf in range(first, last + 1):
            base = leaf * self.leaf_bits
            lo = max(start - base, 0)
            hi = min(start + count - base, self._leaf_len(leaf))
            self._get_leaf(leaf)[lo:hi] = True
            self._top[leaf] = True
            self._touch_leaf(leaf)

    def set_all(self) -> None:
        for leaf in range(self._nleaves):
            self._get_leaf(leaf)[:] = True
            self._leaf_counts[leaf] = self._leaf_len(leaf)
        self._top[:] = True
        self._total = self.nbits
        self._indices = None

    def reset(self) -> None:
        """Drop all dirt *and* free every leaf (fresh iteration = fresh map)."""
        self._leaves.clear()
        self._leaf_counts.clear()
        self._top[:] = False
        self._total = 0
        self._indices = None

    def _leaf_count(self, leaf: int, arr: np.ndarray) -> int:
        count = self._leaf_counts.get(leaf)
        if count is None:
            count = self._leaf_counts[leaf] = int(arr.sum())
        return count

    def count(self) -> int:
        total = self._total
        if total is None:
            total = sum(self._leaf_count(leaf, arr)
                        for leaf, arr in self._leaves.items())
            self._total = total
        return total

    def dirty_indices(self) -> np.ndarray:
        cached = self._indices
        if cached is not None:
            return cached
        # The layered scan: only parts whose top bit is set are visited.
        chunks = []
        for leaf in np.flatnonzero(self._top):
            arr = self._leaves.get(int(leaf))
            if arr is None:
                continue
            hits = np.flatnonzero(arr)
            if hits.size:
                chunks.append(hits + int(leaf) * self.leaf_bits)
        if not chunks:
            result = np.empty(0, dtype=np.int64)
        else:
            result = np.concatenate(chunks)
        self._indices = result
        return result

    # -- whole-bitmap ----------------------------------------------------

    def copy(self) -> "LayeredBitmap":
        clone = LayeredBitmap(self.nbits, self.leaf_bits)
        clone._top = self._top.copy()
        clone._leaves = {leaf: arr.copy() for leaf, arr in self._leaves.items()}
        clone._leaf_counts = dict(self._leaf_counts)
        clone._total = self._total
        return clone

    def union_update(self, other: BlockBitmap) -> None:
        if other.nbits != self.nbits:
            raise BitmapError(
                f"size mismatch: {self.nbits} vs {other.nbits} blocks")
        if isinstance(other, LayeredBitmap) and other.leaf_bits == self.leaf_bits:
            for leaf, arr in other._leaves.items():
                if arr.any():
                    np.logical_or(self._get_leaf(leaf), arr,
                                  out=self._leaves[leaf])
                    self._top[leaf] = True
                    self._touch_leaf(leaf)
        else:
            self.set_many(other.dirty_indices())

    def serialized_nbytes(self) -> int:
        """Wire cost: the top layer plus only the *dirty* parts.

        This is the size reduction the paper credits to the layered design:
        clean parts are never transmitted.
        """
        top_bytes = (self._nleaves + 7) // 8
        dirty_leaf_bytes = 0
        for leaf in np.flatnonzero(self._top):
            arr = self._leaves.get(int(leaf))
            if arr is not None and self._leaf_count(int(leaf), arr):
                dirty_leaf_bytes += (self._leaf_len(int(leaf)) + 7) // 8
        return top_bytes + dirty_leaf_bytes

    def memory_nbytes(self) -> int:
        return self._top.nbytes + sum(arr.nbytes for arr in self._leaves.values())

    @property
    def allocated_leaves(self) -> int:
        """Number of parts currently materialised in memory."""
        return len(self._leaves)

    def compact(self) -> None:
        """Free leaves that hold no dirt and fix up the top layer."""
        for leaf in list(self._leaves):
            if not self._leaf_count(leaf, self._leaves[leaf]):
                del self._leaves[leaf]
                self._leaf_counts.pop(leaf, None)
                self._top[leaf] = False
