"""Abstract interface for block-bitmaps (paper §IV-A-2).

A block-bitmap maps one bit to one disk block: ``0`` = clean, ``1`` = dirty.
During migration the backend driver sets bits on every intercepted write;
the pre-copy loop scans for dirty bits, resets the map, and retransfers the
marked blocks.  Two concrete layouts are provided:

* :class:`~repro.bitmap.flat.FlatBitmap` — one contiguous array, simple and
  fast for dense dirt;
* :class:`~repro.bitmap.layered.LayeredBitmap` — the paper's two-layer
  variant that exploits write locality: leaves are allocated lazily and the
  scan touches only parts whose top-layer bit is set.
"""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np

from ..errors import BitmapError


class BlockBitmap(abc.ABC):
    """One dirty/clean bit per disk block."""

    __slots__ = ("nbits",)

    def __init__(self, nbits: int) -> None:
        if nbits <= 0:
            raise BitmapError(f"bitmap must cover at least one block, got {nbits}")
        self.nbits = int(nbits)

    # -- single-bit operations (the hot write-interception path) ------------

    @abc.abstractmethod
    def set(self, index: int) -> None:
        """Mark block ``index`` dirty."""

    @abc.abstractmethod
    def clear(self, index: int) -> None:
        """Mark block ``index`` clean."""

    @abc.abstractmethod
    def test(self, index: int) -> bool:
        """True if block ``index`` is dirty."""

    def __getitem__(self, index: int) -> bool:
        return self.test(index)

    def __setitem__(self, index: int, value: bool) -> None:
        if value:
            self.set(index)
        else:
            self.clear(index)

    # -- bulk operations (vectorized; used by pre-copy scans) ---------------

    @abc.abstractmethod
    def set_many(self, indices: np.ndarray) -> None:
        """Mark every block in ``indices`` dirty."""

    @abc.abstractmethod
    def clear_many(self, indices: np.ndarray) -> None:
        """Mark every block in ``indices`` clean."""

    def test_many(self, indices: np.ndarray) -> np.ndarray:
        """Boolean array: dirtiness of every block in ``indices``.

        The vectorized counterpart of :meth:`test`, used by the post-copy
        receiver to split an incoming chunk into still-wanted and
        superseded blocks in one shot.
        """
        indices = self._check_indices(indices)
        out = np.empty(indices.size, dtype=bool)
        for pos, index in enumerate(indices.tolist()):
            out[pos] = self.test(index)
        return out

    def set_range(self, start: int, count: int) -> None:
        """Mark ``count`` consecutive blocks from ``start`` dirty."""
        self._check_range(start, count)
        self.set_many(np.arange(start, start + count, dtype=np.int64))

    @abc.abstractmethod
    def set_all(self) -> None:
        """Mark every block dirty (first-iteration 'all-set' bitmap, §V)."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Mark every block clean (start of each pre-copy iteration)."""

    @abc.abstractmethod
    def count(self) -> int:
        """Number of dirty blocks."""

    @abc.abstractmethod
    def dirty_indices(self) -> np.ndarray:
        """Sorted array of all dirty block numbers (the bitmap *scan*).

        Implementations may return a cached array that stays valid until
        the next mutation; callers must treat the result as **read-only**
        (take a ``.copy()`` before mutating it).
        """

    # -- whole-bitmap operations --------------------------------------------

    @abc.abstractmethod
    def copy(self) -> "BlockBitmap":
        """An independent snapshot with identical contents."""

    @abc.abstractmethod
    def union_update(self, other: "BlockBitmap") -> None:
        """In-place OR: blocks dirty in ``other`` become dirty here too."""

    def difference_update(self, other: "BlockBitmap") -> None:
        """In-place AND-NOT: blocks dirty in ``other`` become clean here.

        The pre/post-copy "already shipped" subtraction.  Concrete
        layouts may override with a whole-word pass; this default works
        through the scan + bulk-clear interface.
        """
        if other.nbits != self.nbits:
            raise BitmapError(
                f"size mismatch: {self.nbits} vs {other.nbits} blocks")
        mine = self.dirty_indices()
        if mine.size:
            self.clear_many(mine[other.test_many(mine)])

    def intersection_update(self, other: "BlockBitmap") -> None:
        """In-place AND: only blocks dirty in *both* maps stay dirty."""
        if other.nbits != self.nbits:
            raise BitmapError(
                f"size mismatch: {self.nbits} vs {other.nbits} blocks")
        mine = self.dirty_indices()
        if mine.size:
            self.clear_many(mine[~other.test_many(mine)])

    @abc.abstractmethod
    def serialized_nbytes(self) -> int:
        """Bytes needed to send this bitmap over the wire.

        This is the quantity the paper charges against downtime when the
        freeze-and-copy phase ships the bitmap (1 MiB per 32 GiB of disk for
        a flat 4 KiB-granularity map; less when layered and sparse).
        """

    @abc.abstractmethod
    def memory_nbytes(self) -> int:
        """Bytes of host memory currently allocated for the bitmap."""

    def to_bool_array(self) -> np.ndarray:
        """Dense boolean view of the whole map (for tests and comparisons)."""
        out = np.zeros(self.nbits, dtype=bool)
        out[self.dirty_indices()] = True
        return out

    # -- helpers -------------------------------------------------------------

    def iter_dirty(self) -> Iterator[int]:
        """Iterate dirty block numbers in ascending order."""
        return iter(self.dirty_indices().tolist())

    def any(self) -> bool:
        """True if at least one block is dirty."""
        return self.count() > 0

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.nbits:
            raise BitmapError(
                f"block index {index} out of range [0, {self.nbits})")

    def _check_range(self, start: int, count: int) -> None:
        if count < 0:
            raise BitmapError(f"negative range length {count}")
        if not (0 <= start and start + count <= self.nbits):
            raise BitmapError(
                f"block range [{start}, {start + count}) outside [0, {self.nbits})")

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        # One reduce checks both bounds: a negative int64 reinterprets as a
        # uint64 far above any valid bit number.
        if indices.size and int(indices.view(np.uint64).max()) >= self.nbits:
            raise BitmapError("block indices out of range")
        return indices

    def __len__(self) -> int:
        return self.nbits

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.count()}/{self.nbits} dirty>"
