"""Bit-granularity arithmetic (paper §IV-A-2, "Bit Granularity").

The paper maps one bit to a 4 KiB *block* rather than a 512 B *sector*: for
a 32 GiB disk the bitmap costs 1 MiB instead of 8 MiB.  The cost of the
coarser granularity is *false dirt*: a sub-block write dirties the whole
block and forces retransmission of bytes that did not change.  These helpers
centralise the mapping between byte ranges, sectors, and blocks, plus the
size/amplification accounting that the granularity ablation reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BitmapError
from ..units import BLOCK_SIZE, SECTOR_SIZE


def blocks_for_size(size_bytes: int, block_size: int = BLOCK_SIZE) -> int:
    """Number of blocks needed to cover ``size_bytes`` of disk."""
    if size_bytes <= 0:
        raise BitmapError(f"disk size must be positive, got {size_bytes}")
    if block_size <= 0:
        raise BitmapError(f"block size must be positive, got {block_size}")
    return (size_bytes + block_size - 1) // block_size


def byte_range_to_blocks(
    offset: int, length: int, block_size: int = BLOCK_SIZE
) -> tuple[int, int]:
    """Map a byte extent to ``(first_block, block_count)``.

    This is exactly what the modified ``blkback`` does when it "splits the
    requested area into 4K blocks and sets corresponding bits".
    """
    if offset < 0:
        raise BitmapError(f"negative offset {offset}")
    if length < 0:
        raise BitmapError(f"negative length {length}")
    if length == 0:
        return offset // block_size, 0
    first = offset // block_size
    last = (offset + length - 1) // block_size
    return first, last - first + 1


def sectors_to_block(sector: int, block_size: int = BLOCK_SIZE) -> int:
    """Block number containing ``sector`` (512 B sectors)."""
    if sector < 0:
        raise BitmapError(f"negative sector {sector}")
    return sector * SECTOR_SIZE // block_size


def block_to_sectors(block: int, block_size: int = BLOCK_SIZE) -> range:
    """The range of sector numbers covered by ``block``."""
    per_block = block_size // SECTOR_SIZE
    return range(block * per_block, (block + 1) * per_block)


def bitmap_wire_nbytes(disk_bytes: int, granularity: int = BLOCK_SIZE) -> int:
    """Packed size of a flat bitmap for a disk of ``disk_bytes``.

    Reproduces the paper's arithmetic: 32 GiB disk / 4 KiB bits → 1 MiB;
    at 512 B sector bits → 8 MiB.
    """
    nbits = blocks_for_size(disk_bytes, granularity)
    return (nbits + 7) // 8


@dataclass(frozen=True)
class GranularityCost:
    """Accounting for one choice of bit granularity over one write trace."""

    granularity: int            #: bytes of disk per bit
    bitmap_nbytes: int          #: packed bitmap size on the wire
    dirty_units: int            #: number of units marked dirty
    dirty_bytes: int            #: bytes that must be retransferred
    written_bytes: int          #: total bytes written (rewrites included)
    unique_bytes: int           #: distinct bytes touched (union of extents)

    @property
    def amplification(self) -> float:
        """Retransferred bytes / distinct bytes touched (>= 1 always).

        A bit at granularity ``g`` forces retransmission of the whole
        ``g``-byte unit even when only part of it changed; this ratio is
        that false-dirt overhead.
        """
        if self.unique_bytes == 0:
            return 1.0
        return self.dirty_bytes / self.unique_bytes


def _union_length(extents: list[tuple[int, int]]) -> int:
    """Total length of the union of ``(offset, length)`` intervals."""
    if not extents:
        return 0
    spans = sorted((o, o + l) for o, l in extents if l > 0)
    total = 0
    cur_lo, cur_hi = spans[0]
    for lo, hi in spans[1:]:
        if lo > cur_hi:
            total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    return total + (cur_hi - cur_lo)


def granularity_cost(
    writes: list[tuple[int, int]], disk_bytes: int, granularity: int
) -> GranularityCost:
    """Evaluate one granularity over a trace of ``(offset, length)`` writes.

    Used by the granularity ablation to show the bitmap-size vs
    write-amplification trade-off between sector and block bits.
    """
    import numpy as np

    nbits = blocks_for_size(disk_bytes, granularity)
    dirty = np.zeros(nbits, dtype=bool)
    written = 0
    for offset, length in writes:
        if offset + length > disk_bytes:
            raise BitmapError(
                f"write [{offset}, {offset + length}) beyond disk end {disk_bytes}")
        first, count = byte_range_to_blocks(offset, length, granularity)
        dirty[first:first + count] = True
        written += length
    units = int(dirty.sum())
    return GranularityCost(
        granularity=granularity,
        bitmap_nbytes=(nbits + 7) // 8,
        dirty_units=units,
        dirty_bytes=units * granularity,
        written_bytes=written,
        unique_bytes=_union_length(list(writes)),
    )
