"""Flat (single-layer) block-bitmap.

In-memory representation is a dense NumPy boolean array — one byte per bit.
That trades 8x memory for O(1) single-bit access and fully vectorized scans
(``np.flatnonzero``), which is the right trade inside a simulator.  The
*serialized* size reported to the migration protocol is the packed size
(one bit per block), matching the paper's accounting: a 4 KiB-granularity
bitmap for a 32 GiB disk costs 1 MiB on the wire.

``count()`` and ``dirty_indices()`` are cached: single-bit writes maintain
the popcount incrementally, bulk writes invalidate and the next query
recomputes.  The pre-copy loop calls ``count()`` once or more per round
while the write path runs thousands of times between rounds, so mutators
pay at most two attribute stores for the caching.
"""

from __future__ import annotations

import numpy as np

from ..errors import BitmapError
from .base import BlockBitmap


class FlatBitmap(BlockBitmap):
    """Dense bitmap over ``nbits`` blocks."""

    __slots__ = ("_bits", "_count", "_indices")

    def __init__(self, nbits: int) -> None:
        super().__init__(nbits)
        self._bits = np.zeros(nbits, dtype=bool)
        #: Cached popcount; ``None`` = stale, recomputed on demand.
        self._count: "int | None" = 0
        #: Cached ``dirty_indices()`` result; ``None`` = stale.  Treated as
        #: read-only by every consumer (documented on the base class).
        self._indices: "np.ndarray | None" = None

    # -- single-bit ----------------------------------------------------------

    def set(self, index: int) -> None:
        self._check_index(index)
        bits = self._bits
        if not bits[index]:
            bits[index] = True
            if self._count is not None:
                self._count += 1
            self._indices = None

    def clear(self, index: int) -> None:
        self._check_index(index)
        bits = self._bits
        if bits[index]:
            bits[index] = False
            if self._count is not None:
                self._count -= 1
            self._indices = None

    def test(self, index: int) -> bool:
        self._check_index(index)
        return bool(self._bits[index])

    # -- bulk ------------------------------------------------------------

    def set_many(self, indices: np.ndarray) -> None:
        self._bits[self._check_indices(indices)] = True
        self._count = None
        self._indices = None

    def _set_many_unchecked(self, indices: np.ndarray) -> None:
        """Bulk set for callers that already validated ``indices``."""
        self._bits[indices] = True
        self._count = None
        self._indices = None

    def clear_many(self, indices: np.ndarray) -> None:
        self._bits[self._check_indices(indices)] = False
        self._count = None
        self._indices = None

    def test_many(self, indices: np.ndarray) -> np.ndarray:
        return self._bits[self._check_indices(indices)]

    def set_range(self, start: int, count: int) -> None:
        self._check_range(start, count)
        self._bits[start:start + count] = True
        self._count = None
        self._indices = None

    def set_all(self) -> None:
        self._bits[:] = True
        self._count = self.nbits
        self._indices = None

    def reset(self) -> None:
        self._bits[:] = False
        self._count = 0
        self._indices = None

    def count(self) -> int:
        cached = self._count
        if cached is None:
            cached = self._count = int(self._bits.sum())
        return cached

    def dirty_indices(self) -> np.ndarray:
        cached = self._indices
        if cached is None:
            cached = self._indices = np.flatnonzero(self._bits)
            self._count = cached.size
        return cached

    # -- whole-bitmap ----------------------------------------------------

    def copy(self) -> "FlatBitmap":
        clone = FlatBitmap.__new__(FlatBitmap)
        BlockBitmap.__init__(clone, self.nbits)
        clone._bits = self._bits.copy()
        clone._count = self._count
        clone._indices = None
        return clone

    def union_update(self, other: BlockBitmap) -> None:
        if other.nbits != self.nbits:
            raise BitmapError(
                f"size mismatch: {self.nbits} vs {other.nbits} blocks")
        if isinstance(other, FlatBitmap):
            np.logical_or(self._bits, other._bits, out=self._bits)
        else:
            self._bits[other.dirty_indices()] = True
        self._count = None
        self._indices = None

    def serialized_nbytes(self) -> int:
        return (self.nbits + 7) // 8

    def memory_nbytes(self) -> int:
        return self._bits.nbytes

    def to_bool_array(self) -> np.ndarray:
        return self._bits.copy()

    def pack(self) -> np.ndarray:
        """Wire format: one bit per block, packed into uint8."""
        return np.packbits(self._bits)

    @classmethod
    def unpack(cls, packed: np.ndarray, nbits: int) -> "FlatBitmap":
        """Reconstruct a bitmap from :meth:`pack` output."""
        bits = np.unpackbits(np.asarray(packed, dtype=np.uint8), count=nbits)
        bitmap = cls(nbits)
        bitmap._bits = bits.astype(bool)
        bitmap._count = None
        return bitmap
