"""Flat (single-layer) block-bitmap.

In-memory representation is a dense NumPy boolean array — one byte per bit.
That trades 8x memory for O(1) single-bit access and fully vectorized scans
(``np.flatnonzero``), which is the right trade inside a simulator.  The
*serialized* size reported to the migration protocol is the packed size
(one bit per block), matching the paper's accounting: a 4 KiB-granularity
bitmap for a 32 GiB disk costs 1 MiB on the wire.
"""

from __future__ import annotations

import numpy as np

from ..errors import BitmapError
from .base import BlockBitmap


class FlatBitmap(BlockBitmap):
    """Dense bitmap over ``nbits`` blocks."""

    __slots__ = ("_bits",)

    def __init__(self, nbits: int) -> None:
        super().__init__(nbits)
        self._bits = np.zeros(nbits, dtype=bool)

    # -- single-bit ----------------------------------------------------------

    def set(self, index: int) -> None:
        self._check_index(index)
        self._bits[index] = True

    def clear(self, index: int) -> None:
        self._check_index(index)
        self._bits[index] = False

    def test(self, index: int) -> bool:
        self._check_index(index)
        return bool(self._bits[index])

    # -- bulk ------------------------------------------------------------

    def set_many(self, indices: np.ndarray) -> None:
        self._bits[self._check_indices(indices)] = True

    def clear_many(self, indices: np.ndarray) -> None:
        self._bits[self._check_indices(indices)] = False

    def set_range(self, start: int, count: int) -> None:
        self._check_range(start, count)
        self._bits[start:start + count] = True

    def set_all(self) -> None:
        self._bits[:] = True

    def reset(self) -> None:
        self._bits[:] = False

    def count(self) -> int:
        return int(self._bits.sum())

    def dirty_indices(self) -> np.ndarray:
        return np.flatnonzero(self._bits)

    # -- whole-bitmap ----------------------------------------------------

    def copy(self) -> "FlatBitmap":
        clone = FlatBitmap.__new__(FlatBitmap)
        BlockBitmap.__init__(clone, self.nbits)
        clone._bits = self._bits.copy()
        return clone

    def union_update(self, other: BlockBitmap) -> None:
        if other.nbits != self.nbits:
            raise BitmapError(
                f"size mismatch: {self.nbits} vs {other.nbits} blocks")
        if isinstance(other, FlatBitmap):
            np.logical_or(self._bits, other._bits, out=self._bits)
        else:
            self._bits[other.dirty_indices()] = True

    def serialized_nbytes(self) -> int:
        return (self.nbits + 7) // 8

    def memory_nbytes(self) -> int:
        return self._bits.nbytes

    def to_bool_array(self) -> np.ndarray:
        return self._bits.copy()

    def pack(self) -> np.ndarray:
        """Wire format: one bit per block, packed into uint8."""
        return np.packbits(self._bits)

    @classmethod
    def unpack(cls, packed: np.ndarray, nbits: int) -> "FlatBitmap":
        """Reconstruct a bitmap from :meth:`pack` output."""
        bits = np.unpackbits(np.asarray(packed, dtype=np.uint8), count=nbits)
        bitmap = cls(nbits)
        bitmap._bits = bits.astype(bool)
        return bitmap
