"""Flat (single-layer) block-bitmap.

In-memory representation is a dense NumPy boolean array — one byte per bit.
That trades 8x memory for O(1) single-bit access and fully vectorized scans
(``np.flatnonzero``), which is the right trade inside a simulator.  The
*serialized* size reported to the migration protocol is the packed size
(one bit per block), matching the paper's accounting: a 4 KiB-granularity
bitmap for a 32 GiB disk costs 1 MiB on the wire.

``count()`` and ``dirty_indices()`` are cached: single-bit writes maintain
the popcount incrementally, bulk writes invalidate and the next query
recomputes.  The pre-copy loop calls ``count()`` once or more per round
while the write path runs thousands of times between rounds, so mutators
pay at most two attribute stores for the caching.

Whole-bitmap merges (``union_update`` / ``difference_update`` /
``intersection_update``) run on a ``uint64`` *word view* of the boolean
backing: the backing is padded to a multiple of 8 bools so 8 bit-bytes
fold into one machine word, and the merge is then a single whole-word
``np.bitwise_or``/``bitwise_and`` pass.  Because every byte of a boolean
array is strictly 0 or 1, bytewise OR/AND/AND-NOT on the words is exactly
the per-bit operation, and padding bytes (always 0) stay 0 under all
three.  Mutating through the word view invalidates both caches.
"""

from __future__ import annotations

import numpy as np

from ..errors import BitmapError
from .base import BlockBitmap


def union_indices(nbits: int, first: np.ndarray,
                  second: np.ndarray) -> np.ndarray:
    """Sorted-unique union of two in-range block-index arrays.

    Equivalent to ``np.union1d`` but runs as two vectorized scatter
    stores plus one ``flatnonzero`` scan over a scratch bitmap — O(k + n)
    instead of sort-based O(k log k), which wins exactly where the
    pre/post-copy merge paths live (dirty sets that are a sizable
    fraction of the device).
    """
    scratch = np.zeros(nbits, dtype=bool)
    scratch[np.asarray(first, dtype=np.int64)] = True
    scratch[np.asarray(second, dtype=np.int64)] = True
    return np.flatnonzero(scratch)


class FlatBitmap(BlockBitmap):
    """Dense bitmap over ``nbits`` blocks."""

    __slots__ = ("_bits", "_words", "_count", "_indices")

    def __init__(self, nbits: int) -> None:
        super().__init__(nbits)
        # Backing padded to a multiple of 8 bools so it reinterprets as
        # whole uint64 words; _bits is the live nbits-long view.  Padding
        # bytes are zero and stay zero under every word-level merge.
        backing = np.zeros(-(-nbits // 8) * 8, dtype=bool)
        self._bits = backing[:nbits]
        self._words = backing.view(np.uint64)
        #: Cached popcount; ``None`` = stale, recomputed on demand.
        self._count: "int | None" = 0
        #: Cached ``dirty_indices()`` result; ``None`` = stale.  Treated as
        #: read-only by every consumer (documented on the base class).
        self._indices: "np.ndarray | None" = None

    # -- single-bit ----------------------------------------------------------

    def set(self, index: int) -> None:
        self._check_index(index)
        bits = self._bits
        if not bits[index]:
            bits[index] = True
            if self._count is not None:
                self._count += 1
            self._indices = None

    def clear(self, index: int) -> None:
        self._check_index(index)
        bits = self._bits
        if bits[index]:
            bits[index] = False
            if self._count is not None:
                self._count -= 1
            self._indices = None

    def test(self, index: int) -> bool:
        self._check_index(index)
        return bool(self._bits[index])

    # -- bulk ------------------------------------------------------------

    def set_many(self, indices: np.ndarray) -> None:
        self._bits[self._check_indices(indices)] = True
        self._count = None
        self._indices = None

    def _set_many_unchecked(self, indices: np.ndarray) -> None:
        """Bulk set for callers that already validated ``indices``."""
        self._bits[indices] = True
        self._count = None
        self._indices = None

    def clear_many(self, indices: np.ndarray) -> None:
        self._bits[self._check_indices(indices)] = False
        self._count = None
        self._indices = None

    def test_many(self, indices: np.ndarray) -> np.ndarray:
        return self._bits[self._check_indices(indices)]

    def set_range(self, start: int, count: int) -> None:
        self._check_range(start, count)
        self._bits[start:start + count] = True
        self._count = None
        self._indices = None

    def set_all(self) -> None:
        self._bits[:] = True
        self._count = self.nbits
        self._indices = None

    def reset(self) -> None:
        self._bits[:] = False
        self._count = 0
        self._indices = None

    def count(self) -> int:
        cached = self._count
        if cached is None:
            cached = self._count = int(self._bits.sum())
        return cached

    def dirty_indices(self) -> np.ndarray:
        cached = self._indices
        if cached is None:
            cached = self._indices = np.flatnonzero(self._bits)
            self._count = cached.size
        return cached

    # -- whole-bitmap ----------------------------------------------------

    def copy(self) -> "FlatBitmap":
        clone = FlatBitmap.__new__(FlatBitmap)
        BlockBitmap.__init__(clone, self.nbits)
        backing = self._words.view(bool).copy()
        clone._bits = backing[:self.nbits]
        clone._words = backing.view(np.uint64)
        clone._count = self._count
        clone._indices = None
        return clone

    def union_update(self, other: BlockBitmap) -> None:
        if other.nbits != self.nbits:
            raise BitmapError(
                f"size mismatch: {self.nbits} vs {other.nbits} blocks")
        if isinstance(other, FlatBitmap):
            np.bitwise_or(self._words, other._words, out=self._words)
        else:
            self._bits[other.dirty_indices()] = True
        self._count = None
        self._indices = None

    def difference_update(self, other: BlockBitmap) -> None:
        if other.nbits != self.nbits:
            raise BitmapError(
                f"size mismatch: {self.nbits} vs {other.nbits} blocks")
        if isinstance(other, FlatBitmap):
            np.bitwise_and(self._words, ~other._words, out=self._words)
            self._count = None
            self._indices = None
        else:
            super().difference_update(other)

    def intersection_update(self, other: BlockBitmap) -> None:
        if other.nbits != self.nbits:
            raise BitmapError(
                f"size mismatch: {self.nbits} vs {other.nbits} blocks")
        if isinstance(other, FlatBitmap):
            np.bitwise_and(self._words, other._words, out=self._words)
            self._count = None
            self._indices = None
        else:
            super().intersection_update(other)

    def serialized_nbytes(self) -> int:
        return (self.nbits + 7) // 8

    def memory_nbytes(self) -> int:
        return self._bits.nbytes

    def to_bool_array(self) -> np.ndarray:
        return self._bits.copy()

    def pack(self) -> np.ndarray:
        """Wire format: one bit per block, packed into uint8."""
        return np.packbits(self._bits)

    @classmethod
    def unpack(cls, packed: np.ndarray, nbits: int) -> "FlatBitmap":
        """Reconstruct a bitmap from :meth:`pack` output."""
        bits = np.unpackbits(np.asarray(packed, dtype=np.uint8), count=nbits)
        bitmap = cls(nbits)
        # Fill through the view so the padded word backing stays intact.
        np.not_equal(bits, 0, out=bitmap._bits)
        bitmap._count = None
        return bitmap
