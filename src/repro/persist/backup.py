"""Bitmap-driven backup chains: one full backup + incremental deltas.

The block-bitmap that powers §V's incremental migration doubles as an
incremental-*backup* engine (the tp-qemu
``blockdev_inc_backup_with_migration`` scenario): a durable tracking
bitmap records dirty-since-last-backup, a **full** backup captures the
whole device and clears it, and each **incremental** captures exactly the
dirty set and clears it again.  Restoring replays the chain in order.

The tracking bitmap is a :class:`~repro.persist.tracked.PersistentBitmap`
journaling into a :class:`~repro.persist.store.BitmapStore` on the host
that started the chain, so a host crash between backups loses no tracking
information — :meth:`BackupChain.recover_tracking` rebuilds a conservative
superset and the next incremental simply over-captures a little.

The tracking bitmap is registered under ``backup:<domain-id>``; the
migration manager recognises the ``backup:`` prefix and carries such
bitmaps to the destination driver (the way BM_1/BM_2/BM_3 merge in §V),
so a chain keeps accumulating deltas across a live migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..bitmap import make_bitmap
from ..bitmap.layered import DEFAULT_LEAF_BITS
from ..errors import PersistError
from ..storage.vbd import VirtualBlockDevice
from .store import BitmapStore
from .tracked import PersistentBitmap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..vm.domain import Domain

#: Tracking-name prefix the migration manager carries across migrations.
BACKUP_TRACKING_PREFIX = "backup:"


def backup_tracking_name(domain_id: int) -> str:
    return f"{BACKUP_TRACKING_PREFIX}{domain_id}"


@dataclass
class BackupRecord:
    """One link of a backup chain."""

    kind: str                      # "full" | "incremental"
    seq: int
    indices: np.ndarray
    stamps: np.ndarray
    data: Optional[np.ndarray]
    taken_at: float
    #: True when this incremental was captured from a crash-recovered
    #: bitmap — its index set may over-approximate the true delta.
    recovered: bool = False
    extra: dict = field(default_factory=dict)

    @property
    def nblocks(self) -> int:
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        """Payload bytes this link would occupy (stamps model the data)."""
        return int(self.indices.size) * self.block_size

    block_size: int = 0


class BackupChain:
    """Full + incremental backups of one domain's disk, bitmap-driven.

    Usage::

        chain = BackupChain(domain)
        chain.full_backup()
        ...guest writes...
        chain.incremental_backup()
        restored = chain.restore()      # fresh VBD == the disk at last link

    The chain object itself models the *backup target* (e.g. an NFS
    share): records survive host crashes; only the dirty-tracking side
    lives on — and recovers with — the host.
    """

    def __init__(self, domain: "Domain", policy: str = "wal",
                 flush_every: int = 64, region_bits: int = 4096,
                 snapshot_every: int = 4096, layout: str = "flat",
                 leaf_bits: int = DEFAULT_LEAF_BITS) -> None:
        host = domain.host
        if host is None:
            raise PersistError("domain is not attached to a host")
        self.domain = domain
        self.layout = layout
        self.leaf_bits = leaf_bits
        vbd = host.vbd_of(domain.domain_id)
        self.nblocks = vbd.nblocks
        self.block_size = vbd.block_size
        self.records: list[BackupRecord] = []
        self._seq = 0
        self.store: BitmapStore = host.bitmap_store(
            domain.domain_id, purpose="backup", nbits=self.nblocks,
            policy=policy, flush_every=flush_every,
            region_bits=region_bits, snapshot_every=snapshot_every)
        # Everything is pending until the first full backup exists.
        self.store.open_session(None)
        inner = make_bitmap(self.nblocks, layout, leaf_bits=leaf_bits)
        inner.set_all()
        self._bitmap = PersistentBitmap(inner, self.store)
        self._register(self._bitmap)

    # -- plumbing --------------------------------------------------------

    @property
    def tracking_name(self) -> str:
        return backup_tracking_name(self.domain.domain_id)

    def _driver(self):
        host = self.domain.host
        if host is None:
            raise PersistError(
                f"domain {self.domain.name!r} is not on any host")
        return host.driver_of(self.domain.domain_id)

    def _vbd(self) -> VirtualBlockDevice:
        return self.domain.host.vbd_of(self.domain.domain_id)

    def _register(self, bitmap: PersistentBitmap) -> None:
        driver = self._driver()
        if driver.has_tracking(self.tracking_name):
            driver.swap_tracking(self.tracking_name, bitmap)
        else:
            driver.start_tracking(self.tracking_name, bitmap)

    @property
    def bitmap(self) -> PersistentBitmap:
        return self._bitmap

    def pending_blocks(self) -> int:
        """Blocks dirtied since the last backup (next incremental's size)."""
        return self._bitmap.count()

    # -- taking backups --------------------------------------------------

    def full_backup(self) -> BackupRecord:
        """Capture every allocated block; the chain restarts from here."""
        vbd = self._vbd()
        indices = vbd.allocated_indices()
        record = self._capture("full", vbd, indices)
        # A fresh full obsoletes prior links for restore purposes, but we
        # keep them: a chain is also its own history.
        self._bitmap.reset()
        self.store.snapshot()
        return record

    def incremental_backup(self) -> BackupRecord:
        """Capture exactly the blocks dirtied since the previous backup."""
        if not any(r.kind == "full" for r in self.records):
            raise PersistError(
                "cannot take an incremental backup before the first full")
        vbd = self._vbd()
        live = self._driver().tracking_bitmap(self.tracking_name)
        indices = live.dirty_indices().copy()
        record = self._capture("incremental", vbd, indices,
                               recovered=getattr(live, "recovered", False))
        if indices.size:
            live.clear_many(indices)
        if isinstance(live, PersistentBitmap):
            live.recovered = False
            if self.store.is_open:
                self.store.snapshot()
        self._bitmap = live if isinstance(live, PersistentBitmap) else self._bitmap
        return record

    def _capture(self, kind: str, vbd: VirtualBlockDevice,
                 indices: np.ndarray, recovered: bool = False) -> BackupRecord:
        stamps, data = vbd.export_blocks(indices)
        record = BackupRecord(kind=kind, seq=self._seq, indices=indices,
                              stamps=stamps, data=data,
                              taken_at=self.domain.env.now,
                              recovered=recovered,
                              block_size=self.block_size)
        self._seq += 1
        self.records.append(record)
        return record

    # -- crash recovery --------------------------------------------------

    def recover_tracking(self):
        """Rebuild the dirty-since-backup bitmap after a host crash.

        Returns the :class:`~repro.persist.store.RecoveryInfo`.  The
        recovered set over-approximates the true delta (never misses a
        block), so the next incremental stays correct — just fatter.
        """
        if not self.store.recoverable:
            raise PersistError("backup tracking store has nothing to recover")
        bitmap, info = self.store.recover(self.layout, self.leaf_bits)
        self._bitmap = PersistentBitmap(bitmap, self.store, recovered=True)
        self._register(self._bitmap)
        return info

    # -- restore ---------------------------------------------------------

    def restore(self, upto: Optional[int] = None) -> VirtualBlockDevice:
        """Replay the chain into a fresh device; returns it.

        ``upto`` limits replay to records ``[0, upto]`` (point-in-time
        restore); default replays everything.  Replay starts at the most
        recent full backup at or before the cut.
        """
        cut = len(self.records) if upto is None else upto + 1
        chain = self.records[:cut]
        start = None
        for pos in range(len(chain) - 1, -1, -1):
            if chain[pos].kind == "full":
                start = pos
                break
        if start is None:
            raise PersistError("no full backup to anchor the restore")
        restored = VirtualBlockDevice(self.nblocks, self.block_size,
                                      data=chain[start].data is not None)
        for record in chain[start:]:
            if record.indices.size:
                restored.import_blocks(record.indices, record.stamps,
                                       record.data)
        return restored

    # -- accounting ------------------------------------------------------

    def total_backup_bytes(self) -> int:
        return sum(r.nblocks * self.block_size for r in self.records)

    def close(self) -> None:
        """Stop tracking and mark the store clean."""
        driver = self._driver()
        if driver.has_tracking(self.tracking_name):
            driver.stop_tracking(self.tracking_name)
        if self.store.is_open:
            self.store.complete()

    def __repr__(self) -> str:
        fulls = sum(1 for r in self.records if r.kind == "full")
        return (f"<BackupChain {self.domain.name!r}: {fulls} full + "
                f"{len(self.records) - fulls} incremental, "
                f"{self.pending_blocks()} pending>")
