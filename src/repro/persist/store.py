"""Durable bitmap store: snapshots + write-ahead journal + crash recovery.

The store models what a real implementation keeps on the *source host's
local disk* so that the pre-copy block-bitmap outlives a host crash — the
piece §V's "resume the virtual machine on the source machine and retry
later" silently assumes.  It is the dirty-tracking-as-checkpoint pattern
of QEMU's persistent dirty bitmaps (``dirty-bitmaps: on``): an in-use
bitmap that was not cleanly saved recovers *conservatively*.

Stable storage is simulated by :class:`StableStorage`: named areas are
written atomically (the model of write-temp-then-rename), while journal
appends sit in a *staged* tail until flushed.  A host crash discards
exactly the staged tail — durable areas and flushed records survive.

The recovery invariant — the one the property tests hammer — is:

    **recovered ⊇ true-pending**, always.

Three mechanisms uphold it under every sync policy:

* SET records for not-yet-durable batches are covered by eagerly-durable
  **guard regions**: before a set batch is merely staged, the coarse
  region bits covering it are written durably.  Losing the tail then
  over-marks whole regions, never under-marks.
* CLEAR records (a chunk confirmed written at the destination) may be
  lost freely — a lost clear leaves the block pending, which only costs a
  retransfer.
* A damaged snapshot or a hole in the middle of the durable journal
  (disk corruption, not a torn tail) degrades to all-dirty.

Sync policies (``SYNC_POLICIES``):

* ``"wal"`` — every record is flushed as appended; recovery is exact.
* ``"batch"`` — flush every ``flush_every`` records; between flushes the
  guard regions cover the staged sets.
* ``"snapshot"`` — never flush between snapshots; recovery is snapshot +
  guard regions only (cheapest writes, coarsest recovery).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..bitmap import BlockBitmap, make_bitmap
from ..bitmap.flat import FlatBitmap
from ..bitmap.layered import DEFAULT_LEAF_BITS
from ..errors import PersistError
from .format import (
    OP_CLEAR,
    OP_SET,
    decode_record,
    decode_snapshot,
    encode_record,
    encode_snapshot,
)

#: Valid write-back policies, laziest last.
SYNC_POLICIES = ("wal", "batch", "snapshot")

#: Area names inside one store's stable storage.
AREA_SNAPSHOT = "snapshot"
AREA_GUARD = "guard"


class StableStorage:
    """Crash-consistent storage for one store: named areas + a journal.

    * :meth:`write_area` is atomic and immediately durable (the
      write-then-rename model) — used for snapshots and the guard map.
    * :meth:`append_journal` only *stages* a record; :meth:`flush_journal`
      makes the staged tail durable.  :meth:`crash` discards exactly the
      staged tail, which is the only state a crash can lose.
    """

    def __init__(self) -> None:
        self._areas: dict[str, bytes] = {}
        self._journal: list[bytes] = []
        self._durable_len = 0
        #: Write-amplification counters (observability for the benchmark).
        self.area_writes = 0
        self.journal_flushes = 0
        #: Staged records dropped by crashes since the last recovery.
        self.lost_records = 0

    # -- areas (atomic, durable) ----------------------------------------

    def write_area(self, name: str, data: bytes) -> None:
        self._areas[name] = bytes(data)
        self.area_writes += 1

    def read_area(self, name: str) -> Optional[bytes]:
        return self._areas.get(name)

    def delete_area(self, name: str) -> None:
        self._areas.pop(name, None)

    # -- journal (staged until flushed) ---------------------------------

    def append_journal(self, record: bytes) -> None:
        self._journal.append(bytes(record))

    def flush_journal(self) -> None:
        if self._durable_len != len(self._journal):
            self._durable_len = len(self._journal)
            self.journal_flushes += 1

    def truncate_journal(self) -> None:
        self._journal.clear()
        self._durable_len = 0

    def durable_records(self) -> list[bytes]:
        return self._journal[:self._durable_len]

    @property
    def staged_count(self) -> int:
        return len(self._journal) - self._durable_len

    @property
    def record_count(self) -> int:
        return len(self._journal)

    def crash(self) -> None:
        """Lose the un-flushed journal tail; durable state survives."""
        self.lost_records += self.staged_count
        del self._journal[self._durable_len:]

    def corrupt_area(self, name: str, offset: int, value: int = 0xFF) -> None:
        """Flip one byte of an area (test hook for damage injection)."""
        data = bytearray(self._areas[name])
        data[offset % len(data)] ^= value
        self._areas[name] = bytes(data)

    def corrupt_record(self, pos: int, offset: int = 6) -> None:
        """Flip one byte of a journal record (test hook)."""
        data = bytearray(self._journal[pos])
        data[offset % len(data)] ^= 0xFF
        self._journal[pos] = bytes(data)


@dataclass
class RecoveryInfo:
    """What a :meth:`BitmapStore.recover` actually reconstructed."""

    #: ``"journal"`` (snapshot + intact replay), ``"corrupt-snapshot"`` or
    #: ``"corrupt-journal"`` (conservative all-dirty).
    source: str = "journal"
    #: True when no information was lost: the recovered set equals the
    #: true pending set at the crash (always the case under ``"wal"``).
    exact: bool = True
    #: Journal sequence the recovered snapshot carried.
    snapshot_seq: int = 0
    #: Intact journal records replayed on top of the snapshot.
    replayed_records: int = 0
    #: Guard regions unioned in (each may over-mark up to a whole region).
    guard_regions: int = 0
    #: Staged journal records the crash destroyed.  Lost SETs are covered
    #: by guard regions; lost CLEARs just leave their blocks pending —
    #: either way the recovery is no longer exact.
    lost_records: int = 0
    #: Blocks marked pending purely by guard regions / conservative
    #: fallback — the over-marking cost of the lazy sync policy.
    overmarked_blocks: int = 0
    #: Pending blocks in the recovered bitmap.
    pending_blocks: int = 0


@dataclass
class StoreStats:
    """Lifetime write-side counters of one store."""

    records_appended: int = 0
    set_records: int = 0
    clear_records: int = 0
    snapshots_written: int = 0
    sessions_opened: int = 0
    recoveries: int = 0
    crashes: int = 0
    journal_flushes: int = 0
    area_writes: int = 0
    extra: dict = field(default_factory=dict)


class BitmapStore:
    """One domain's durable block-bitmap: journal, snapshots, recovery.

    Lifecycle::

        store.open_session(initial_indices)   # migration starts
        store.record_set(...)                 # guest writes (via wrapper)
        store.record_clear(...)               # chunks confirmed at dest
        store.complete()                      # migration committed: clean

    A simulated host crash calls :meth:`crash` (losing the staged journal
    tail and the in-memory mirror); the restarted host checks
    :attr:`recoverable` and calls :meth:`recover`, which rebuilds a
    conservative superset of the pending set and re-baselines the store so
    journaling continues from the recovered state.

    All operations are synchronous (zero simulated time): real stores pay
    I/O latency for durability, but charging it here would perturb the
    bit-identical equivalence gate; the *write-amplification* counters in
    :meth:`stats` expose the cost instead.
    """

    def __init__(self, nbits: int, policy: str = "wal",
                 flush_every: int = 64, region_bits: int = 4096,
                 snapshot_every: int = 4096,
                 storage: Optional[StableStorage] = None) -> None:
        if nbits <= 0:
            raise PersistError(f"store must cover >= 1 block, got {nbits}")
        if policy not in SYNC_POLICIES:
            raise PersistError(f"unknown sync policy {policy!r}; "
                               f"valid: {SYNC_POLICIES}")
        if flush_every < 1:
            raise PersistError(f"flush_every must be >= 1, got {flush_every}")
        if region_bits < 1:
            raise PersistError(f"region_bits must be >= 1, got {region_bits}")
        if snapshot_every < 1:
            raise PersistError(
                f"snapshot_every must be >= 1, got {snapshot_every}")
        self.nbits = int(nbits)
        self.policy = policy
        self.flush_every = int(flush_every)
        self.region_bits = int(region_bits)
        self.snapshot_every = int(snapshot_every)
        self.storage = storage if storage is not None else StableStorage()
        self.nregions = (self.nbits + self.region_bits - 1) // self.region_bits
        #: In-memory mirror of the pending set; None = no open session.
        self._mirror: Optional[FlatBitmap] = None
        #: Next journal record sequence number.
        self._seq = 0
        #: In-memory guard regions (durable copy lives in AREA_GUARD).
        self._guard = np.zeros(self.nregions, dtype=bool)
        self.stats = StoreStats()
        #: Info of the most recent :meth:`recover` (None before any).
        self.last_recovery: Optional[RecoveryInfo] = None

    # -- session lifecycle ----------------------------------------------

    @property
    def is_open(self) -> bool:
        return self._mirror is not None

    def open_session(self,
                     initial_indices: Optional[np.ndarray] = None) -> None:
        """Begin a tracked session with the given initial pending set.

        ``None`` marks the *whole device* pending — the primary-migration
        case where nothing has been confirmed at the destination yet.  An
        index array (possibly empty) marks exactly those blocks, e.g. an
        IM dirty set or a backup chain starting with nothing pending.
        """
        mirror = FlatBitmap(self.nbits)
        if initial_indices is None:
            mirror.set_all()
        else:
            indices = np.asarray(initial_indices, dtype=np.int64)
            if indices.size:
                mirror.set_many(indices)
        self._mirror = mirror
        self._seq = 0
        self.stats.sessions_opened += 1
        self._write_snapshot(clean=False)

    def complete(self) -> None:
        """Orderly close: the session's pending set is fully resolved.

        Writes a clean empty snapshot (QEMU: clearing the "in use" flag)
        so a later crash finds nothing to recover.
        """
        self._require_open()
        self._mirror = FlatBitmap(self.nbits)
        self._seq = 0
        self._write_snapshot(clean=True)
        self._mirror = None

    def _require_open(self) -> FlatBitmap:
        if self._mirror is None:
            raise PersistError("no open session on this bitmap store")
        return self._mirror

    # -- journaling ------------------------------------------------------

    def record_set(self, indices: np.ndarray) -> None:
        """Journal a dirty batch (guest writes).  Deduplicated against the
        mirror: already-pending blocks cost nothing."""
        mirror = self._require_open()
        indices = np.asarray(indices, dtype=np.int64)
        fresh = indices[~mirror.test_many(indices)]
        if fresh.size == 0:
            return
        mirror._set_many_unchecked(fresh)
        if self.policy != "wal":
            self._raise_guard(fresh)
        self._append(OP_SET, fresh)
        self.stats.set_records += 1

    def record_clear(self, indices: np.ndarray) -> None:
        """Journal a clean batch (chunk confirmed written at destination).

        Clears are never guarded: losing one leaves the block pending,
        which is safe (the retry re-sends it).
        """
        mirror = self._require_open()
        indices = np.asarray(indices, dtype=np.int64)
        pending = indices[mirror.test_many(indices)]
        if pending.size == 0:
            return
        mirror.clear_many(pending)
        self._append(OP_CLEAR, pending)
        self.stats.clear_records += 1

    def _append(self, op: int, indices: np.ndarray) -> None:
        self.storage.append_journal(encode_record(self._seq, op, indices))
        self._seq += 1
        self.stats.records_appended += 1
        if self.policy == "wal":
            self.storage.flush_journal()
        elif (self.policy == "batch"
              and self.storage.staged_count >= self.flush_every):
            self.flush()
        if self.storage.record_count >= self.snapshot_every:
            self.snapshot()

    def flush(self) -> None:
        """Make the staged journal tail durable and drop the guard bits it
        was covering."""
        self._require_open()
        self.storage.flush_journal()
        self._lower_guard()

    def snapshot(self) -> None:
        """Compact: write the mirror as a new snapshot, truncate the
        journal, drop all guard bits."""
        self._require_open()
        self._seq = 0
        self._write_snapshot(clean=False)

    def _write_snapshot(self, clean: bool) -> None:
        mirror = self._require_open()
        self.storage.write_area(
            AREA_SNAPSHOT,
            encode_snapshot(mirror.to_bool_array(), seq=self._seq,
                            clean=clean))
        self.storage.truncate_journal()
        self._lower_guard()
        self.stats.snapshots_written += 1

    # -- guard regions ---------------------------------------------------

    def _raise_guard(self, indices: np.ndarray) -> None:
        regions = np.unique(indices // self.region_bits)
        if self._guard[regions].all():
            return
        self._guard[regions] = True
        self._persist_guard()

    def _lower_guard(self) -> None:
        if self._guard.any():
            self._guard[:] = False
            self._persist_guard()

    def _persist_guard(self) -> None:
        self.storage.write_area(AREA_GUARD,
                                encode_snapshot(self._guard, seq=0,
                                                granularity=self.region_bits))

    # -- crash & recovery ------------------------------------------------

    def crash(self) -> None:
        """Simulate the host dying: the staged journal tail and every
        in-memory structure are lost; durable areas survive."""
        self.storage.crash()
        self._mirror = None
        self._seq = 0
        self._guard[:] = False
        self.stats.crashes += 1

    @property
    def recoverable(self) -> bool:
        """True when a crashed session left state worth recovering: a
        persisted snapshot that is either not clean or unreadable."""
        raw = self.storage.read_area(AREA_SNAPSHOT)
        if raw is None:
            return False
        try:
            _bits, _seq, clean, _gran = decode_snapshot(raw)
        except PersistError:
            return True  # corrupt: recover conservatively
        return not clean

    def recover(self, layout: str = "flat",
                leaf_bits: int = DEFAULT_LEAF_BITS
                ) -> tuple[BlockBitmap, RecoveryInfo]:
        """Rebuild the pending set after a crash; returns
        ``(bitmap, info)`` with ``bitmap ⊇ true-pending`` guaranteed.

        Verified snapshot, plus the intact prefix of the durable journal,
        plus the union of persisted guard regions.  Any deeper damage
        (unreadable snapshot, a hole mid-journal) degrades to all-dirty.
        The store is re-baselined from the recovered state, so the
        returned bitmap can keep journaling through a wrapper.
        """
        raw = self.storage.read_area(AREA_SNAPSHOT)
        if raw is None:
            raise PersistError("nothing persisted: no snapshot area")
        info = RecoveryInfo()
        bits: Optional[np.ndarray] = None
        snap_seq = 0
        try:
            bits, snap_seq, clean, _gran = decode_snapshot(raw)
            if bits.size != self.nbits:
                raise PersistError(
                    f"snapshot covers {bits.size} bits, store {self.nbits}")
        except PersistError:
            bits = None
        if bits is None:
            bits = np.ones(self.nbits, dtype=bool)
            info.source = "corrupt-snapshot"
            info.exact = False
        else:
            if clean:
                raise PersistError(
                    "store is clean: the last session completed; nothing "
                    "to recover")
            info.snapshot_seq = snap_seq
            expected = snap_seq
            records = self.storage.durable_records()
            damaged = False
            for pos, raw_rec in enumerate(records):
                try:
                    seq, op, indices = decode_record(raw_rec)
                except PersistError:
                    damaged = True
                    break
                if seq != expected:
                    damaged = True
                    break
                if op == OP_SET:
                    bits[indices] = True
                else:
                    bits[indices] = False
                expected += 1
                info.replayed_records += 1
            if damaged:
                # A hole mid-journal is disk corruption, not a torn tail:
                # the coverage of everything after it is unknown, so only
                # all-dirty is safe.
                bits = np.ones(self.nbits, dtype=bool)
                info.source = "corrupt-journal"
                info.exact = False

        before = int(bits.sum())
        guard_regions = self._read_guard()
        if guard_regions.size and info.source == "journal":
            for region in guard_regions.tolist():
                start = region * self.region_bits
                bits[start:min(start + self.region_bits, self.nbits)] = True
            info.guard_regions = int(guard_regions.size)
            if info.guard_regions:
                info.exact = False
        info.overmarked_blocks = int(bits.sum()) - before
        if info.source != "journal":
            info.overmarked_blocks = int(bits.sum())
        info.pending_blocks = int(bits.sum())
        info.lost_records = self.storage.lost_records
        if info.lost_records:
            info.exact = False
        self.storage.lost_records = 0

        # Re-baseline: the recovered state becomes the new durable
        # snapshot, and the mirror resumes from it so wrapped bitmaps can
        # keep journaling against this store.
        mirror = FlatBitmap(self.nbits)
        mirror._set_many_unchecked(np.flatnonzero(bits))
        self._mirror = mirror
        self._seq = 0
        self._guard[:] = False
        self._write_snapshot(clean=False)

        recovered = make_bitmap(self.nbits, layout, leaf_bits=leaf_bits)
        recovered.set_many(np.flatnonzero(bits))
        self.stats.recoveries += 1
        self.last_recovery = info
        return recovered, info

    def _read_guard(self) -> np.ndarray:
        raw = self.storage.read_area(AREA_GUARD)
        if raw is None:
            return np.empty(0, dtype=np.int64)
        try:
            guard_bits, _seq, _clean, _gran = decode_snapshot(raw)
        except PersistError:
            return np.arange(self.nregions, dtype=np.int64)
        if guard_bits.size != self.nregions:
            return np.arange(self.nregions, dtype=np.int64)
        return np.flatnonzero(guard_bits)

    # -- introspection ---------------------------------------------------

    def pending_count(self) -> int:
        """Pending blocks in the open session's mirror."""
        return self._require_open().count()

    def pending_indices(self) -> np.ndarray:
        return self._require_open().dirty_indices().copy()

    def snapshot_nbytes(self) -> int:
        raw = self.storage.read_area(AREA_SNAPSHOT)
        return len(raw) if raw is not None else 0

    def collect_stats(self) -> StoreStats:
        """Stats with the storage-level counters folded in."""
        self.stats.journal_flushes = self.storage.journal_flushes
        self.stats.area_writes = self.storage.area_writes
        return self.stats

    def __repr__(self) -> str:
        state = ("open" if self.is_open
                 else "recoverable" if self.recoverable else "closed")
        return (f"<BitmapStore {self.nbits} bits policy={self.policy} "
                f"{state}>")
