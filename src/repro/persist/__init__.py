"""Durable block-bitmaps: snapshot format, journaling store, recovery,
and bitmap-driven backup chains (ROADMAP item 3).

The in-memory block-bitmap is the heart of the paper's §V incremental
migration — and the one piece a host crash destroys.  This package makes
it durable: :class:`BitmapStore` persists snapshots plus a write-ahead
journal to (simulated) stable storage, :class:`PersistentBitmap` makes
any tracking bitmap journal its mutations, recovery rebuilds a
conservative superset of the pending set after a crash (never
under-marking), and :class:`BackupChain` reuses the same machinery for
full + incremental backups that survive both crashes and live migrations.
"""

from .backup import BACKUP_TRACKING_PREFIX, BackupChain, BackupRecord, backup_tracking_name
from .format import (
    FORMAT_VERSION,
    decode_record,
    decode_snapshot,
    encode_record,
    encode_snapshot,
)
from .store import SYNC_POLICIES, BitmapStore, RecoveryInfo, StableStorage, StoreStats
from .tracked import PersistentBitmap

__all__ = [
    "BACKUP_TRACKING_PREFIX",
    "BackupChain",
    "BackupRecord",
    "backup_tracking_name",
    "BitmapStore",
    "FORMAT_VERSION",
    "PersistentBitmap",
    "RecoveryInfo",
    "StableStorage",
    "StoreStats",
    "SYNC_POLICIES",
    "decode_record",
    "decode_snapshot",
    "encode_record",
    "encode_snapshot",
]
