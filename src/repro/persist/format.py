"""Versioned on-"disk" formats for the durable bitmap store.

Two record types, both self-describing and checksummed:

* **Snapshot** — the whole bitmap at one instant: a fixed header (magic,
  version, flags, bit count, block granularity, journal sequence) followed
  by the packed words (:meth:`~repro.bitmap.flat.FlatBitmap.pack`) and a
  trailing CRC-32 over everything before it.  The ``clean`` flag mirrors
  QEMU's persistent dirty-bitmap "in use" bit inverted: a snapshot written
  at an orderly close is *clean*; one written while a session is live is
  not, and a recovery that finds it must assume the journal tail may be
  missing.

* **Journal record** — one set/clear batch appended between snapshots:
  magic, sequence number, opcode, index count, the ``int64`` indices, and
  a trailing CRC-32.  Records are strictly sequenced so recovery can
  detect a gap (lost or torn record) and stop replaying at exactly the
  last intact prefix.

The guard-region area (see :class:`~repro.persist.store.BitmapStore`)
reuses the snapshot format with one bit per region.

Everything is plain ``struct`` + ``zlib.crc32`` + NumPy — deliberately
dependency-free and byte-stable so the property tests can corrupt
arbitrary bytes and assert the codecs never mis-decode silently.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..errors import PersistError
from ..units import BLOCK_SIZE

#: Snapshot area magic ("Repro BitMap Snapshot").
SNAPSHOT_MAGIC = b"RBMS"
#: Journal record magic ("Repro BitMap Journal").
JOURNAL_MAGIC = b"RBMJ"
#: Current format version; decoders reject anything newer.
FORMAT_VERSION = 1

#: Journal opcodes.
OP_SET = 1
OP_CLEAR = 2

#: Snapshot flag bits.
FLAG_CLEAN = 0x1

_SNAP_HEADER = struct.Struct("<HHQQQ")   # version, flags, nbits, gran, seq
_REC_HEADER = struct.Struct("<QBI")      # seq, op, count
_CRC = struct.Struct("<I")


def _crc32(*parts: bytes) -> int:
    acc = 0
    for part in parts:
        acc = zlib.crc32(part, acc)
    return acc & 0xFFFFFFFF


# -- snapshots ---------------------------------------------------------------

def encode_snapshot(bits: np.ndarray, seq: int, clean: bool = False,
                    granularity: int = BLOCK_SIZE) -> bytes:
    """Serialize a dense boolean bitmap into the snapshot format."""
    bits = np.asarray(bits, dtype=bool)
    if bits.ndim != 1 or bits.size == 0:
        raise PersistError(f"snapshot needs a 1-D non-empty bitmap, "
                           f"got shape {bits.shape}")
    if seq < 0:
        raise PersistError(f"snapshot sequence cannot be negative: {seq}")
    flags = FLAG_CLEAN if clean else 0
    header = SNAPSHOT_MAGIC + _SNAP_HEADER.pack(
        FORMAT_VERSION, flags, bits.size, int(granularity), int(seq))
    payload = np.packbits(bits).tobytes()
    return header + payload + _CRC.pack(_crc32(header, payload))


def decode_snapshot(data: bytes) -> tuple[np.ndarray, int, bool, int]:
    """Parse a snapshot; returns ``(bits, seq, clean, granularity)``.

    Raises :class:`~repro.errors.PersistError` on any damage — bad magic,
    unknown version, truncation, or checksum mismatch.  Callers treat that
    as "snapshot unusable" and fall back to conservative all-dirty.
    """
    head_len = 4 + _SNAP_HEADER.size
    if len(data) < head_len + _CRC.size:
        raise PersistError(f"snapshot truncated: {len(data)} bytes")
    if data[:4] != SNAPSHOT_MAGIC:
        raise PersistError(f"bad snapshot magic {data[:4]!r}")
    version, flags, nbits, granularity, seq = _SNAP_HEADER.unpack(
        data[4:head_len])
    if version > FORMAT_VERSION:
        raise PersistError(f"snapshot format v{version} is newer than "
                           f"supported v{FORMAT_VERSION}")
    npacked = (nbits + 7) // 8
    expected_len = head_len + npacked + _CRC.size
    if len(data) != expected_len:
        raise PersistError(f"snapshot length {len(data)} != expected "
                           f"{expected_len} for {nbits} bits")
    payload = data[head_len:head_len + npacked]
    (crc,) = _CRC.unpack(data[-_CRC.size:])
    if crc != _crc32(data[:head_len], payload):
        raise PersistError("snapshot checksum mismatch")
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8),
                         count=nbits).astype(bool)
    return bits, int(seq), bool(flags & FLAG_CLEAN), int(granularity)


# -- journal records ---------------------------------------------------------

def encode_record(seq: int, op: int, indices: np.ndarray) -> bytes:
    """Serialize one set/clear batch as a journal record."""
    if op not in (OP_SET, OP_CLEAR):
        raise PersistError(f"unknown journal opcode {op}")
    if seq < 0:
        raise PersistError(f"record sequence cannot be negative: {seq}")
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    body = (JOURNAL_MAGIC
            + _REC_HEADER.pack(int(seq), op, indices.size)
            + indices.tobytes())
    return body + _CRC.pack(_crc32(body))


def decode_record(data: bytes) -> tuple[int, int, np.ndarray]:
    """Parse one journal record; returns ``(seq, op, indices)``.

    Raises :class:`~repro.errors.PersistError` on damage.  During recovery
    a damaged record ends the intact prefix — nothing after it is trusted.
    """
    head_len = 4 + _REC_HEADER.size
    if len(data) < head_len + _CRC.size:
        raise PersistError(f"journal record truncated: {len(data)} bytes")
    if data[:4] != JOURNAL_MAGIC:
        raise PersistError(f"bad journal magic {data[:4]!r}")
    seq, op, count = _REC_HEADER.unpack(data[4:head_len])
    if op not in (OP_SET, OP_CLEAR):
        raise PersistError(f"unknown journal opcode {op}")
    expected_len = head_len + count * 8 + _CRC.size
    if len(data) != expected_len:
        raise PersistError(f"journal record length {len(data)} != expected "
                           f"{expected_len} for {count} indices")
    (crc,) = _CRC.unpack(data[-_CRC.size:])
    if crc != _crc32(data[:-_CRC.size]):
        raise PersistError("journal record checksum mismatch")
    indices = np.frombuffer(data, dtype=np.int64, count=count,
                            offset=head_len).copy()
    return int(seq), int(op), indices
