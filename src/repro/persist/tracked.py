"""A write-tracking bitmap that journals its mutations into a store.

:class:`PersistentBitmap` wraps any :class:`~repro.bitmap.base.BlockBitmap`
and forwards every mutation to a :class:`~repro.persist.store.BitmapStore`
session, so the pending set survives a simulated host crash.  It *is* a
``BlockBitmap`` (registered under the backend driver's tracking dict like
any other), which keeps the whole pre-copy/IM machinery oblivious to
persistence.

Journaling is best-effort with respect to the store's lifecycle: if the
store has been crashed or closed out from under the wrapper (e.g. a backup
store left on a host the domain has migrated away from), mutations still
apply to the in-memory bitmap — a dead store must never break a healthy
domain's write path.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..bitmap.base import BlockBitmap
from .store import BitmapStore


class PersistentBitmap(BlockBitmap):
    """Durability wrapper around an in-memory block bitmap."""

    def __init__(self, inner: BlockBitmap, store: BitmapStore,
                 recovered: bool = False) -> None:
        if len(inner) != store.nbits:
            from ..errors import PersistError

            raise PersistError(
                f"bitmap covers {len(inner)} blocks but store covers "
                f"{store.nbits}")
        super().__init__(len(inner))
        self.inner = inner
        self.store = store
        #: True when this bitmap was rebuilt by crash recovery rather than
        #: started fresh — consumers stamp it into migration reports.
        self.recovered = recovered

    # -- journaled mutations --------------------------------------------

    def set(self, index: int) -> None:
        self.inner.set(index)
        if self.store.is_open:
            self.store.record_set(np.asarray([index], dtype=np.int64))

    def clear(self, index: int) -> None:
        self.inner.clear(index)
        if self.store.is_open:
            self.store.record_clear(np.asarray([index], dtype=np.int64))

    def set_many(self, indices: np.ndarray) -> None:
        self.inner.set_many(indices)
        if self.store.is_open:
            self.store.record_set(indices)

    def clear_many(self, indices: np.ndarray) -> None:
        self.inner.clear_many(indices)
        if self.store.is_open:
            self.store.record_clear(indices)

    def set_range(self, start: int, count: int) -> None:
        self.inner.set_range(start, count)
        if self.store.is_open and count > 0:
            self.store.record_set(
                np.arange(start, start + count, dtype=np.int64))

    def set_all(self) -> None:
        self.inner.set_all()
        if self.store.is_open:
            self.store.record_set(np.arange(self.nbits, dtype=np.int64))

    def reset(self) -> None:
        self.inner.reset()
        if self.store.is_open:
            self.store.record_clear(np.arange(self.nbits, dtype=np.int64))

    def union_update(self, other: BlockBitmap) -> None:
        self.inner.union_update(other)
        if self.store.is_open:
            self.store.record_set(other.dirty_indices())

    # -- read-only delegation -------------------------------------------

    def test(self, index: int) -> bool:
        return self.inner.test(index)

    def test_many(self, indices: np.ndarray) -> np.ndarray:
        return self.inner.test_many(indices)

    def count(self) -> int:
        return self.inner.count()

    def dirty_indices(self) -> np.ndarray:
        return self.inner.dirty_indices()

    def to_bool_array(self) -> np.ndarray:
        return self.inner.to_bool_array()

    def iter_dirty(self) -> Iterator[int]:
        return self.inner.iter_dirty()

    def any(self) -> bool:
        return self.inner.any()

    def serialized_nbytes(self) -> int:
        return self.inner.serialized_nbytes()

    def memory_nbytes(self) -> int:
        return self.inner.memory_nbytes()

    def copy(self) -> BlockBitmap:
        """A plain in-memory copy — copies do not journal."""
        return self.inner.copy()

    def __repr__(self) -> str:
        return (f"<PersistentBitmap {self.count()}/{self.nbits} "
                f"store={self.store!r}>")
