"""Hierarchical span tracing keyed to simulated time.

A :class:`Tracer` records what the migration machinery *did* and *when*
(in simulated seconds) as a tree of spans::

    migration:domU                          <- root, one per attempt
      phase:init
      phase:precopy-disk
        iteration:1
          chunk ...                         <- one per streamed chunk
        iteration:2
      phase:precopy-mem
        round:1
      phase:freeze
      phase:postcopy
      phase:verify

plus point-in-time *instants* (faults firing, retry backoffs, pull
requests).  Spans never advance the clock — recording is free in
simulated time, so a traced run reports numbers identical to an
untraced one.

Disabled tracing costs (almost) nothing: :data:`NULL_TRACER` is a
no-allocation sink installed on every
:class:`~repro.sim.engine.Environment` by default; instrumented code
calls it unconditionally and every method is a one-line no-op.  Install
a real tracer with :func:`repro.obs.install` (or set ``env.tracer``
directly) to start recording.

Span timestamps are read from ``env.now`` at the same statements that
stamp :class:`~repro.core.metrics.MigrationReport`, so per-phase span
durations equal the report's phase durations *exactly* — the invariant
``tests/obs/test_trace_integration.py`` locks down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


@dataclass
class Span:
    """One named interval of simulated time, possibly nested in another."""

    sid: int
    parent: Optional[int]
    name: str
    category: str
    start: float
    end: Optional[float] = None
    args: dict = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        """Simulated seconds covered; 0.0 while still open."""
        return 0.0 if self.end is None else self.end - self.start

    def note(self, **args) -> "Span":
        """Attach key/value annotations to the span."""
        self.args.update(args)
        return self


@dataclass
class Instant:
    """A point event (a fault firing, a retry backoff, a pull request)."""

    name: str
    category: str
    at: float
    args: dict = field(default_factory=dict)


class _SpanContext:
    """Context manager closing one span on exit (error-annotating it)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc is not None:
            self._span.note(error=str(exc))
        self._tracer.end(self._span)
        return False


class Tracer:
    """Records spans and instants against an environment's clock."""

    enabled = True

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Every span ever begun, in start order (open ones included).
        self.spans: list[Span] = []
        #: Point events, in record order.
        self.instants: list[Instant] = []
        #: Currently open spans, outermost first.
        self._stack: list[Span] = []
        self._next_sid = 0

    # -- recording ---------------------------------------------------------

    def begin(self, name: str, category: str = "migration", **args) -> Span:
        """Open a span now; its parent is the innermost open span."""
        self._next_sid += 1
        span = Span(
            sid=self._next_sid,
            parent=self._stack[-1].sid if self._stack else None,
            name=name,
            category=category,
            start=self.env.now,
            args=args,
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, at: Optional[float] = None, **args) -> Span:
        """Close ``span`` (idempotent).  ``at`` overrides the end time —
        used where the logical end precedes the current clock (e.g. the
        post-copy phase ends at synchronization, not when its processes
        finish winding down)."""
        if args:
            span.note(**args)
        if span.end is None:
            span.end = self.env.now if at is None else at
        try:
            self._stack.remove(span)
        except ValueError:
            pass
        return span

    def span(self, name: str, category: str = "migration",
             **args) -> _SpanContext:
        """``with tracer.span(...) as s:`` — begin now, end on exit."""
        return _SpanContext(self, self.begin(name, category, **args))

    def instant(self, name: str, category: str = "event", **args) -> Instant:
        """Record a point event at the current simulated time."""
        inst = Instant(name=name, category=category, at=self.env.now,
                       args=args)
        self.instants.append(inst)
        return inst

    def close_open(self, at: Optional[float] = None, **args) -> None:
        """Close every open span, innermost first (failure/abort paths)."""
        while self._stack:
            self.end(self._stack[-1], at=at, **args)

    # -- queries -----------------------------------------------------------

    @property
    def open_spans(self) -> list[Span]:
        return list(self._stack)

    def find(self, name: Optional[str] = None,
             category: Optional[str] = None) -> list[Span]:
        """Completed-or-open spans matching the given name/category."""
        return [s for s in self.spans
                if (name is None or s.name == name)
                and (category is None or s.category == category)]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent == span.sid]

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Yield ``(depth, span)`` in start order."""
        depth: dict[Optional[int], int] = {None: -1}
        for span in self.spans:
            d = depth.get(span.parent, -1) + 1
            depth[span.sid] = d
            yield d, span

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)


# ---------------------------------------------------------------------------
# The disabled path: no events, no allocations, no clock effect.
# ---------------------------------------------------------------------------


class _NullSpan:
    """Inert span: annotations are discarded, duration is always zero."""

    __slots__ = ()
    sid = 0
    parent = None
    name = ""
    category = ""
    start = 0.0
    end = 0.0
    open = False
    duration = 0.0

    @property
    def args(self) -> dict:
        return {}

    def note(self, **args) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CTX = _NullSpanContext()


class NullTracer:
    """No-op tracer installed by default; records nothing."""

    enabled = False
    spans: list = []
    instants: list = []

    def begin(self, name: str, category: str = "migration",
              **args) -> _NullSpan:
        return NULL_SPAN

    def end(self, span, at=None, **args):
        return span

    def span(self, name: str, category: str = "migration",
             **args) -> _NullSpanContext:
        return _NULL_CTX

    def instant(self, name: str, category: str = "event", **args) -> None:
        return None

    def close_open(self, at=None, **args) -> None:
        return None

    @property
    def open_spans(self) -> list:
        return []

    def find(self, name=None, category=None) -> list:
        return []

    def children_of(self, span) -> list:
        return []

    def walk(self):
        return iter(())

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
