"""Trace and metrics exporters.

Two formats:

* **Chrome trace-event JSON** (:func:`to_chrome_trace`) — loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev.  Spans become complete
  (``"ph": "X"``) events, instants become instant (``"ph": "i"``) events,
  and counters become counter (``"ph": "C"``) tracks.  Timestamps are
  simulated *microseconds* (the format's native unit), so one simulated
  second reads as 1 s on the tracing timeline.
* **Plain JSON** (:func:`to_json`) — the full span tree, instants, and
  per-metric sample series, for programmatic post-processing (pandas,
  plotting, CI assertions).

Both functions accept the null tracer/registry and emit empty documents,
so export call sites need no enabled-checks.

The file schema is documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
from typing import Optional

from .metrics import MetricsRegistry, NullMetrics
from .tracer import Tracer

#: Synthetic process/thread ids for the tracing UI's lanes.
TRACE_PID = 1
SPAN_TID = 1
INSTANT_TID = 2

#: Trace-file schema version, bumped on incompatible layout changes.
SCHEMA_VERSION = 1


def _span_events(tracer: Tracer, pid: int = TRACE_PID) -> list[dict]:
    events = []
    for span in tracer.spans:
        end = span.end if span.end is not None else span.start
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": (end - span.start) * 1e6,
            "pid": pid,
            "tid": SPAN_TID,
            "args": {**span.args, "sid": span.sid, "parent": span.parent},
        })
    return events


def _instant_events(tracer: Tracer, pid: int = TRACE_PID) -> list[dict]:
    return [{
        "name": inst.name,
        "cat": inst.category,
        "ph": "i",
        "s": "p",  # process-scoped: draws a line across the lane
        "ts": inst.at * 1e6,
        "pid": pid,
        "tid": INSTANT_TID,
        "args": dict(inst.args),
    } for inst in tracer.instants]


def _counter_events(metrics: MetricsRegistry,
                    pid: int = TRACE_PID) -> list[dict]:
    events = []
    for name in metrics.names():
        inst = metrics.get(name)
        if inst is None or inst.kind == "histogram":
            continue  # histograms have no sensible counter-track rendering
        for t, value in inst.samples:
            events.append({
                "name": name,
                "cat": inst.kind,
                "ph": "C",
                "ts": t * 1e6,
                "pid": pid,
                "args": {"value": value},
            })
    return events


def to_chrome_trace(tracer: Tracer,
                    metrics: Optional[MetricsRegistry] = None) -> dict:
    """The trace as a ``chrome://tracing``-loadable document (a dict)."""
    events = _span_events(tracer) + _instant_events(tracer)
    if metrics is not None and not isinstance(metrics, NullMetrics):
        events += _counter_events(metrics)
    events.sort(key=lambda e: (e["ts"], 0 if e["ph"] == "X" else 1))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": SCHEMA_VERSION,
            "producer": "repro.obs",
            "clock": "simulated-seconds",
        },
    }


def to_chrome_trace_merged(parts) -> dict:
    """One Chrome trace for a *sharded* run: ``parts`` is a sequence of
    ``(name, tracer, metrics)`` — one per shard — and each part renders
    as its own process lane (``pid`` = shard index + 1, labelled with
    the shard name), all on the shared simulated-time axis."""
    events: list[dict] = []
    for pid, (name, tracer, metrics) in enumerate(parts, start=1):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": name},
        })
        events += _span_events(tracer, pid) + _instant_events(tracer, pid)
        if metrics is not None and not isinstance(metrics, NullMetrics):
            events += _counter_events(metrics, pid)
    events.sort(key=lambda e: (e.get("ts", -1.0),
                               0 if e["ph"] == "X" else 1))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": SCHEMA_VERSION,
            "producer": "repro.obs",
            "clock": "simulated-seconds",
            "shards": [name for name, _t, _m in parts],
        },
    }


def to_json(tracer: Tracer,
            metrics: Optional[MetricsRegistry] = None) -> dict:
    """The full observability record as plain JSON-serializable data."""
    doc: dict = {
        "schema_version": SCHEMA_VERSION,
        "clock": "simulated-seconds",
        "spans": [{
            "sid": s.sid,
            "parent": s.parent,
            "name": s.name,
            "category": s.category,
            "start": s.start,
            "end": s.end,
            "duration": s.duration,
            "args": dict(s.args),
        } for s in tracer.spans],
        "instants": [{
            "name": i.name,
            "category": i.category,
            "at": i.at,
            "args": dict(i.args),
        } for i in tracer.instants],
        "metrics": {},
    }
    if metrics is not None:
        doc["metrics"] = {
            name: {**metrics.get(name).summary(),
                   "series": [list(pair)
                              for pair in metrics.get(name).samples]}
            for name in metrics.names()
        }
    return doc


def dump_chrome_trace(path: str, tracer: Tracer,
                      metrics: Optional[MetricsRegistry] = None) -> str:
    """Write the Chrome trace to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tracer, metrics), fh, default=str)
    return path


def dump_chrome_trace_merged(path: str, parts) -> str:
    """Write the merged multi-shard Chrome trace to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace_merged(parts), fh, default=str)
    return path


def dump_json(path: str, tracer: Tracer,
              metrics: Optional[MetricsRegistry] = None) -> str:
    """Write the plain-JSON record to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_json(tracer, metrics), fh, indent=2, default=str)
    return path


def phase_durations(tracer: Tracer) -> dict[str, float]:
    """Summed duration of every ``phase:*`` span, keyed by phase name.

    Multiple migrations (e.g. retry attempts) in one trace sum per
    phase; compare single-attempt values against the corresponding
    :class:`~repro.core.metrics.MigrationReport` fields for an exact
    match.
    """
    totals: dict[str, float] = {}
    for span in tracer.find(category="phase"):
        name = span.name.split(":", 1)[1] if ":" in span.name else span.name
        totals[name] = totals.get(name, 0.0) + span.duration
    return totals
