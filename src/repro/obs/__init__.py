"""Observability: structured tracing and time-series metrics.

The paper's results are all time-series claims — downtime, per-phase
duration, degradation under load — so this package turns one simulated
migration into data you can *look at*:

* :class:`~repro.obs.tracer.Tracer` — hierarchical spans
  (migration → phase → iteration → chunk transfer) keyed to simulated
  time, plus point instants (faults, retries, pulls);
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  histograms with timestamped samples (wire bytes per link, dirty-set
  population, push/pull/cancel counts, backoff delays);
* exporters for plain JSON and the Chrome trace-event format
  (``chrome://tracing`` / Perfetto), see :mod:`repro.obs.export`.

Recording never advances the simulated clock, and the disabled path is
a pair of no-op singletons — an environment without observability
installed behaves byte-identically to one that predates this package.

Enable it on any environment::

    from repro.obs import install

    tracer, metrics = install(env)
    ...                                  # run the experiment
    dump_chrome_trace("run.trace.json", tracer, metrics)

or pass ``observe=True`` to :func:`repro.analysis.build_testbed` (and
the ``run_*_experiment`` helpers), or use ``repro-sim trace`` /
``repro-sim migrate --trace`` from the shell.
"""

from .export import (
    SCHEMA_VERSION,
    dump_chrome_trace,
    dump_chrome_trace_merged,
    dump_json,
    phase_durations,
    to_chrome_trace,
    to_chrome_trace_merged,
    to_json,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from .tracer import Instant, NULL_TRACER, NullTracer, Span, Tracer


def install(env) -> tuple[Tracer, MetricsRegistry]:
    """Attach a fresh tracer + registry to ``env``; returns both.

    Idempotent: if the environment already carries live instances they
    are returned unchanged (so helpers can call it defensively).
    """
    if not env.tracer.enabled:
        env.tracer = Tracer(env)
    if not env.metrics.enabled:
        env.metrics = MetricsRegistry(env)
    return env.tracer, env.metrics


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "SCHEMA_VERSION",
    "Span",
    "Tracer",
    "dump_chrome_trace",
    "dump_chrome_trace_merged",
    "dump_json",
    "install",
    "phase_durations",
    "to_chrome_trace",
    "to_chrome_trace_merged",
    "to_json",
]
