"""Time-series metrics: counters, gauges, and histograms.

Every instrument stamps its samples with the *simulated* clock, so a
metric is a timeline, not just a final number: bytes on the wire per
link, dirty-bitmap population over pre-copy iterations, post-copy
push/pull/cancel counts, retry backoff delays.  Recording never yields
or advances the clock, so an instrumented run is numerically identical
to a bare one.

Like the tracer, the registry has a no-op twin (:data:`NULL_METRICS`)
installed on every environment by default; instrumented code calls
``env.metrics.counter("x").inc(n)`` unconditionally and pays one no-op
method call when metrics are off.

Instrument semantics:

* :class:`Counter` — monotone accumulator; samples are ``(t, total)``
  after each increment, so deltas between any two times are exact.
* :class:`Gauge` — last-write-wins level; samples are ``(t, value)``.
* :class:`Histogram` — value distribution; samples are ``(t, value)``
  per observation, with count/sum/min/max and percentiles on demand.

``bucketed(dt)`` on any instrument folds its samples into fixed-width
time buckets — the form the Chrome-trace exporter and the throughput
plots consume.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class _Instrument:
    """Shared sample storage: a list of ``(time, value)`` pairs."""

    kind = "instrument"

    def __init__(self, env: "Environment", name: str) -> None:
        self.env = env
        self.name = name
        #: ``(simulated time, value)`` pairs in record order.
        self.samples: list[tuple[float, float]] = []

    def _record(self, value: float) -> None:
        self.samples.append((self.env.now, float(value)))

    def bucketed(self, dt: float) -> list[tuple[float, float]]:
        """Fold samples into ``dt``-wide buckets as ``(bucket_start, value)``.

        Counters report the *increase* within each bucket; gauges and
        histograms report the last (respectively mean) value seen.  Empty
        buckets are omitted.
        """
        if dt <= 0:
            raise ValueError(f"bucket width must be positive, got {dt}")
        if not self.samples:
            return []
        buckets: dict[int, list[tuple[float, float]]] = {}
        for t, v in self.samples:
            buckets.setdefault(int(t // dt), []).append((t, v))
        out = []
        prev_total = 0.0
        for idx in sorted(buckets):
            group = buckets[idx]
            if self.kind == "counter":
                total = group[-1][1]
                out.append((idx * dt, total - prev_total))
                prev_total = total
            elif self.kind == "gauge":
                out.append((idx * dt, group[-1][1]))
            else:  # histogram: mean of the observations in the bucket
                out.append((idx * dt,
                            sum(v for _, v in group) / len(group)))
        return out

    def summary(self) -> dict:
        return {"kind": self.kind, "samples": len(self.samples)}


class Counter(_Instrument):
    """Monotone accumulator (bytes sent, blocks pushed, events processed)."""

    kind = "counter"

    def __init__(self, env: "Environment", name: str) -> None:
        super().__init__(env, name)
        self.total = 0.0

    def inc(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.total += value
        self._record(self.total)

    def summary(self) -> dict:
        return {**super().summary(), "total": self.total}


class Gauge(_Instrument):
    """Last-write-wins level (dirty-set size, queue depth, backoff delay)."""

    kind = "gauge"

    def __init__(self, env: "Environment", name: str) -> None:
        super().__init__(env, name)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self._record(value)

    def summary(self) -> dict:
        return {**super().summary(), "value": self.value}


class Histogram(_Instrument):
    """Distribution of observed values (stall times, chunk sizes)."""

    kind = "histogram"

    def __init__(self, env: "Environment", name: str) -> None:
        super().__init__(env, name)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self._record(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of all observations, 0.0 when empty."""
        if not self.samples:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        ordered = sorted(v for _, v in self.samples)
        idx = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[idx]

    def summary(self) -> dict:
        return {**super().summary(), "count": self.count, "sum": self.sum,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
                "mean": self.mean,
                "p50": self.percentile(0.5),
                "p99": self.percentile(0.99)}


class MetricsRegistry:
    """Owns every named instrument of one environment."""

    enabled = True

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._instruments: dict[str, _Instrument] = {}

    def _get(self, name: str, cls) -> _Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(self.env, name)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} is a {inst.kind}, not a "
                f"{cls.kind}")
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument by name, or None if never touched."""
        return self._instruments.get(name)

    def names(self, prefix: str = "") -> list[str]:
        return sorted(n for n in self._instruments if n.startswith(prefix))

    def snapshot(self) -> dict:
        """``{name: summary dict}`` for every instrument."""
        return {name: inst.summary()
                for name, inst in sorted(self._instruments.items())}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments


# ---------------------------------------------------------------------------
# The disabled path.
# ---------------------------------------------------------------------------


class _NullInstrument:
    __slots__ = ()
    kind = "null"
    name = ""
    samples: list = []
    total = 0.0
    value = 0.0
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0

    def inc(self, value: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def bucketed(self, dt: float) -> list:
        return []

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict:
        return {}


NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """No-op registry installed by default; records nothing."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def names(self, prefix: str = "") -> list:
        return []

    def snapshot(self) -> dict:
        return {}

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False


NULL_METRICS = NullMetrics()
