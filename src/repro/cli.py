"""Command-line interface: run migrations and experiments from a shell.

Installed as ``repro-sim`` (see ``pyproject.toml``), or run as
``python -m repro.cli``.

Examples::

    repro-sim migrate --workload specweb --scale 0.02
    repro-sim migrate --workload bonnie --rate-limit 30e6 --roundtrip
    repro-sim migrate --scheme freeze-and-copy --workload idle
    repro-sim migrate --workload video --trace video.trace.json
    repro-sim table1 --workload video --scale 0.1
    repro-sim table2 --workload specweb --scale 0.05 --dwell 60
    repro-sim locality --workload kernelbuild
    repro-sim trace --workload specweb --out specweb.trace.json
    repro-sim scale --racks 25 --hosts-per-rack 40 --rack-failure 10

Any trace written with ``--trace``/``trace`` in the default ``chrome``
format loads directly into ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import (
    PAPER_LOCALITY,
    PAPER_TABLE1,
    PAPER_TABLE2,
    format_table,
    run_locality_experiment,
    run_table1_experiment,
    run_table2_experiment,
)
from .analysis.experiments import run_baseline_experiment
from .core import MigrationConfig, scheme_names
from .units import fmt_bytes, fmt_time

WORKLOADS = ("specweb", "video", "bonnie", "kernelbuild", "idle")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=WORKLOADS, default="specweb",
                        help="guest workload (default: specweb)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="testbed scale factor, 1.0 = paper geometry "
                             "(default: 0.02)")
    parser.add_argument("--seed", type=int, default=0,
                        help="random seed (default: 0)")
    parser.add_argument("--warmup", type=float, default=20.0,
                        help="seconds of workload before migrating "
                             "(default: 20)")


def _add_config(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rate-limit", type=float, default=None,
                        metavar="BYTES_PER_S",
                        help="cap migration bandwidth during pre-copy")
    parser.add_argument("--guest-aware", action="store_true",
                        help="skip never-written blocks (paper §VII)")
    parser.add_argument("--compress", action="store_true",
                        help="compress bulk migration data (paper §III-A)")
    parser.add_argument("--compression-ratio", type=float, default=2.0,
                        help="assumed compression ratio (default: 2.0)")
    parser.add_argument("--bitmap", choices=("flat", "layered"),
                        default="flat", help="block-bitmap layout")
    parser.add_argument("--max-iterations", type=int, default=4,
                        help="disk pre-copy iteration cap (default: 4)")


def _add_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a trace of the run to PATH "
                             "(enables the tracer)")
    parser.add_argument("--trace-format", choices=("chrome", "json"),
                        default="chrome",
                        help="trace file format: 'chrome' loads into "
                             "chrome://tracing (default), 'json' is the "
                             "raw span/metric dump")


def _maybe_dump_trace(args: argparse.Namespace, bed) -> None:
    if getattr(args, "trace", None):
        path = bed.dump_trace(args.trace, fmt=args.trace_format)
        print(f"trace written to {path} ({args.trace_format} format)")


def _config_from(args: argparse.Namespace) -> MigrationConfig:
    return MigrationConfig(
        rate_limit=args.rate_limit,
        guest_aware=args.guest_aware,
        compress=args.compress,
        compression_ratio=args.compression_ratio,
        bitmap_layout=args.bitmap,
        max_disk_iterations=args.max_iterations,
    )


def _print_report(report, label: str = "") -> None:
    if label:
        print(f"== {label} ==")
    print(report.summary())
    print(f"  phase times: disk pre-copy "
          f"{fmt_time(report.precopy_disk_ended_at - report.precopy_disk_started_at)}"
          f", memory {fmt_time(report.precopy_mem_ended_at - report.precopy_mem_started_at)}"
          f", post-copy {fmt_time(report.postcopy.duration)}")
    if report.bytes_by_category:
        ledger = ", ".join(f"{k}={fmt_bytes(v)}" for k, v in
                           sorted(report.bytes_by_category.items()))
        print(f"  wire ledger: {ledger}")
    for key, value in report.extra.items():
        print(f"  {key}: {value}")
    print()


def cmd_migrate(args: argparse.Namespace) -> int:
    config = _config_from(args)
    observe = args.trace is not None
    if args.scheme == "tpm":
        report, bed = run_table1_experiment(
            args.workload, scale=args.scale, seed=args.seed,
            config=config, warmup=args.warmup, observe=observe)
        _print_report(report, "primary TPM migration")
        if args.roundtrip:
            bed.run_for(args.dwell)
            back = bed.migrate()
            _print_report(back, "incremental migration back")
        _maybe_dump_trace(args, bed)
        return 0
    report, bed, migration = run_baseline_experiment(
        args.scheme, args.workload, scale=args.scale, seed=args.seed,
        config=config, warmup=args.warmup, tail=args.dwell, observe=observe)
    _print_report(report, f"{args.scheme} migration")
    if args.scheme == "on-demand" and migration is not None:
        print(f"  residual dependency: {migration.residual_blocks} blocks "
              f"still only on the source "
              f"({'alive' if migration.dependency_alive else 'done'})")
        migration.stop()
    _maybe_dump_trace(args, bed)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one traced migration and print the span tree + key metrics."""
    from .obs.export import phase_durations

    config = _config_from(args)
    observe_scheme = args.scheme
    if observe_scheme == "tpm":
        report, bed = run_table1_experiment(
            args.workload, scale=args.scale, seed=args.seed,
            config=config, warmup=args.warmup, observe=True)
    else:
        report, bed, migration = run_baseline_experiment(
            observe_scheme, args.workload, scale=args.scale, seed=args.seed,
            config=config, warmup=args.warmup, observe=True)
        if observe_scheme == "on-demand" and migration is not None:
            migration.stop()
    _print_report(report, f"{observe_scheme} migration")

    tracer = bed.tracer
    nchunks = sum(1 for s in tracer.spans if s.category == "transfer")
    print(f"span tree ({len(tracer.spans)} spans, "
          f"{nchunks} chunk transfers collapsed):")
    for depth, span in tracer.walk():
        if span.category == "transfer":
            continue
        print(f"  {'  ' * depth}{span.name:<28s} {fmt_time(span.duration)}")
    phases = phase_durations(tracer)
    if phases:
        print("phase durations:",
              ", ".join(f"{k}={fmt_time(v)}" for k, v in phases.items()))
    counters = [name for name in bed.metrics.names()
                if name.startswith(("chan.", "link."))]
    if counters:
        print("wire counters:")
        for name in sorted(counters):
            print(f"  {name:<28s} {fmt_bytes(bed.metrics.get(name).total)}")
    path = bed.dump_trace(args.out, fmt=args.trace_format)
    print(f"trace written to {path} ({args.trace_format} format)")
    return 0


def cmd_evacuate(args: argparse.Namespace) -> int:
    """Evacuate one host of a simulated cluster through the scheduler."""
    from .cluster import RoundRobin, build_cluster, least_loaded

    bed = build_cluster(
        nhosts=args.hosts, vms_per_host=args.vms_per_host,
        wiring=args.wiring, nblocks=args.nblocks, npages=args.npages,
        max_concurrent=args.concurrency, per_link_limit=args.per_link_limit,
        observe=args.trace is not None)
    policy = (RoundRobin() if args.policy == "round-robin"
              else least_loaded)
    victim = bed.hosts[0]
    jobs = bed.scheduler.evacuate(victim, policy=policy, scheme=args.scheme)
    bed.scheduler.drain(jobs)
    print(f"evacuated {victim.name}: {len(jobs)} VMs, "
          f"makespan {fmt_time(bed.scheduler.makespan(jobs))}")
    for job in jobs:
        status = job.status
        downtime = (fmt_time(job.report.downtime)
                    if job.report is not None and job.succeeded else "-")
        print(f"  {job.domain.name:<16s} -> {job.destination.name:<8s} "
              f"{status:<7s} queue {fmt_time(job.queue_time)} "
              f"downtime {downtime}")
    from .cluster import audit_link_bytes

    bad = [a for a in audit_link_bytes(bed.migrator.migrations)
           if not a.conserved]
    print(f"per-link byte accounting: "
          f"{'conserved' if not bad else f'{len(bad)} MISMATCHES'}")
    if args.trace:
        from .obs import dump_chrome_trace, dump_json

        dump = (dump_chrome_trace if args.trace_format == "chrome"
                else dump_json)
        path = dump(args.trace, bed.env.tracer, bed.env.metrics)
        print(f"trace written to {path} ({args.trace_format} format)")
    return 0 if not bad and all(j.succeeded for j in jobs) else 1


def cmd_scale(args: argparse.Namespace) -> int:
    """Drive a datacenter-scale churn scenario on the sharded engine.

    Builds one simulation shard per rack (conservative lookahead set by
    the inter-rack link latency), runs the configured churn timeline —
    VM arrivals/departures, rolling maintenance evacuations, correlated
    rack failures — then drains outstanding evacuations and prints SLO
    and conservation results.
    """
    from .cluster import (ChurnConfig, ChurnGenerator,
                          build_sharded_cluster, slo_report)

    cluster = build_sharded_cluster(
        nracks=args.racks, hosts_per_rack=args.hosts_per_rack,
        vms_per_host=args.vms_per_host, nblocks=args.nblocks,
        npages=args.npages, max_concurrent=args.concurrency,
        seed=args.seed, workers=args.workers)
    nhosts = args.racks * args.hosts_per_rack
    print(f"sharded cluster: {nhosts} hosts / "
          f"{nhosts * args.vms_per_host} VMs in {args.racks} racks "
          f"(lookahead {cluster.engine.lookahead * 1e6:.0f} us, "
          f"workers={args.workers})")

    config = ChurnConfig(
        duration=args.duration, arrival_rate=args.arrival_rate,
        departure_rate=args.departure_rate,
        maintenance_interval=args.maintenance_interval,
        maintenance_hold=args.maintenance_hold,
        rack_failure_times=tuple(args.rack_failure or ()),
        rack_failure_down_for=args.rack_down_for,
        vm_nblocks=args.nblocks, vm_npages=args.npages)
    generator = ChurnGenerator(cluster, config)
    applied = generator.run()
    print("churn applied: " + (", ".join(
        f"{kind}={count}" for kind, count in sorted(applied.items()))
        or "nothing scheduled"))

    jobs = cluster.drain(generator.evacuation_jobs)
    report = slo_report(jobs, default_budget=args.downtime_budget)
    if jobs:
        print(f"maintenance evacuations ({len(jobs)} jobs):")
        print("  " + report.summary().replace("\n", "\n  "))
    else:
        print("no maintenance evacuations were scheduled")

    engine = cluster.engine
    print(f"engine: {cluster.events_processed} events across "
          f"{len(cluster.shards)} shards, {engine.windows} sync windows, "
          f"{engine.messages_delivered} cross-shard messages")
    bad = [audit for audit in cluster.audits() if not audit.conserved]
    print(f"per-link byte accounting: "
          f"{'conserved' if not bad else f'{len(bad)} MISMATCHES'}")
    return 0 if not bad else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run seeded chaos schedules and check the recovery invariants.

    Each seed drives a randomized-but-reproducible fault schedule
    (partitions, link flaps, host crashes) against a cluster running a
    migration wave with retry + health tracking on, then asserts byte
    conservation, placement integrity, bitmap coverage, and
    surrogate-leak freedom.  Exit code 1 (with the seed printed) on any
    violation, so CI failures replay exactly.
    """
    from .cluster.chaos import ChaosConfig, run_chaos
    from .cluster.scheduler import RetryPolicy

    seeds = args.seed if args.seed else [0, 1]
    modes = (("monolithic", "sharded") if args.mode == "both"
             else (args.mode,))
    retry = RetryPolicy(max_attempts=args.max_attempts,
                        initial_backoff=0.2, max_backoff=2.0)
    bad = 0
    for mode in modes:
        for seed in seeds:
            report = run_chaos(ChaosConfig(
                seed=seed, mode=mode, nracks=args.racks,
                hosts_per_rack=args.hosts_per_rack,
                vms_per_host=args.vms_per_host, njobs=args.jobs,
                nblocks=args.nblocks, npages=args.npages, retry=retry))
            print(report.summary())
            bad += not report.ok
    if bad:
        print(f"\n{bad} run(s) violated invariants -- replay with "
              f"`repro-sim chaos --seed <seed> --mode <mode>`")
    return 1 if bad else 0


def cmd_backup(args: argparse.Namespace) -> int:
    """Run a bitmap-driven backup chain against a live workload.

    One full backup, then ``--increments`` incremental deltas at
    ``--interval`` simulated seconds apart; with ``--migrate-between``
    the VM live-migrates mid-chain (the tp-qemu
    backup-with-migration scenario) and the chain keeps accumulating.
    The chain is finally restored into a fresh device and verified
    against the live disk.
    """
    from .analysis.experiments import build_testbed
    from .persist import BackupChain

    config = _config_from(args).replace(
        persist_sync_policy=args.sync_policy)
    bed = build_testbed(args.workload, scale=args.scale, seed=args.seed,
                        config=config)
    bed.start_workload()
    bed.run_for(args.warmup)

    chain = BackupChain(bed.domain, policy=args.sync_policy)
    chain.full_backup()
    for i in range(args.increments):
        bed.run_for(args.interval)
        if args.migrate_between and i == args.increments // 2:
            report = bed.migrate()
            print(f"live-migrated mid-chain to "
                  f"{bed.domain.host.name} "
                  f"(downtime {fmt_time(report.downtime)})")
        chain.incremental_backup()

    # Final delta from a quiesced guest, so the restore target has a
    # well-defined point-in-time to match.
    domain = bed.domain
    driver = domain.host.driver_of(domain.domain_id)

    def quiesce(env):
        domain.suspend()
        yield from driver.quiesce()

    bed.env.run(until=bed.env.process(quiesce(bed.env)))
    chain.incremental_backup()
    restored = chain.restore()
    live = domain.host.vbd_of(domain.domain_id)
    consistent = restored.identical_to(live)
    domain.resume()

    total = chain.total_backup_bytes()
    full_bytes = chain.records[0].nblocks * chain.block_size
    print(f"backup chain for {domain.name!r} "
          f"({args.workload}, policy={args.sync_policy}):")
    for record in chain.records:
        note = " (recovered bitmap)" if record.recovered else ""
        print(f"  #{record.seq:<3d}{record.kind:<12s}"
              f"{record.nblocks:>8d} blocks  "
              f"{fmt_bytes(record.nblocks * chain.block_size):>10s}  "
              f"at t={record.taken_at:.1f}s{note}")
    scratch = full_bytes * len(chain.records)
    print(f"  chain total {fmt_bytes(total)} vs "
          f"{fmt_bytes(scratch)} for all-full backups "
          f"({total / scratch:.1%})")
    stats = chain.store.collect_stats()
    print(f"  store: {stats.records_appended} journal records, "
          f"{stats.journal_flushes} flushes, "
          f"{stats.snapshots_written} snapshots, "
          f"{stats.area_writes} area writes")
    print(f"  restore verified: {'CONSISTENT' if consistent else 'DIVERGED'}")
    chain.close()
    return 0 if consistent else 1


def cmd_table1(args: argparse.Namespace) -> int:
    report, _bed = run_table1_experiment(
        args.workload, scale=args.scale, seed=args.seed, warmup=args.warmup)
    paper = PAPER_TABLE1.get(args.workload, {})
    rows = [
        ["Total migration time (s)", paper.get("total_s", "n/a"),
         report.total_migration_time],
        ["Downtime (ms)", paper.get("downtime_ms", "n/a"),
         report.downtime * 1e3],
        ["Migrated data (MB)", paper.get("data_mb", "n/a"),
         report.migrated_mb],
    ]
    print(format_table(["metric", "paper", "measured"], rows,
                       title=f"Table I — {args.workload} "
                             f"(scale={args.scale})"))
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    primary, back, _bed = run_table2_experiment(
        args.workload, scale=args.scale, seed=args.seed,
        warmup=args.warmup, dwell=args.dwell)
    paper = PAPER_TABLE2.get(args.workload, {})
    rows = [
        ["Primary TPM time (s)", "Table I", primary.total_migration_time],
        ["IM storage time (s)", paper.get("time_s", "n/a"),
         back.storage_migration_time],
        ["IM storage data (MB)", paper.get("data_mb", "n/a"),
         back.storage_bytes / 2**20],
    ]
    print(format_table(["metric", "paper", "measured"], rows,
                       title=f"Table II — {args.workload} "
                             f"(dwell={args.dwell}s)"))
    return 0


def cmd_locality(args: argparse.Namespace) -> int:
    stats, _bed = run_locality_experiment(
        args.workload, duration=args.duration, scale=max(args.scale, 0.02),
        seed=args.seed, warmup=args.warmup)
    paper = PAPER_LOCALITY.get(args.workload)
    rows = [
        ["rewrite fraction (ops)",
         f"{paper * 100:.1f} %" if paper else "n/a",
         f"{stats.op_rewrite_fraction * 100:.1f} %"],
        ["write operations", "-", stats.write_ops],
        ["delta-queue redundant blocks", "-",
         stats.delta_redundancy_blocks],
    ]
    print(format_table(["metric", "paper", "measured"], rows,
                       title=f"§IV-A-2 locality — {args.workload}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Whole-system VM live migration (CLUSTER'08) — "
                    "simulated experiments")
    parser.add_argument("--profile", action="store_true",
                        help="run the command under cProfile and print the "
                             "top 25 functions by cumulative time.  Must "
                             "precede the subcommand: "
                             "repro-sim --profile migrate")
    parser.add_argument("--profile-out", metavar="PATH", default=None,
                        help="with --profile, dump raw pstats to PATH "
                             "(load with pstats or snakeviz) instead of "
                             "printing")
    sub = parser.add_subparsers(dest="command", required=True)

    p_migrate = sub.add_parser(
        "migrate", help="run one migration and print the report")
    _add_common(p_migrate)
    _add_config(p_migrate)
    p_migrate.add_argument("--scheme", choices=scheme_names(aliases=True),
                           default="tpm", help="migration scheme")
    p_migrate.add_argument("--roundtrip", action="store_true",
                           help="also migrate back (IM) after --dwell")
    p_migrate.add_argument("--dwell", type=float, default=30.0,
                           help="seconds on the destination before the "
                                "return trip (default: 30)")
    _add_trace(p_migrate)
    p_migrate.set_defaults(func=cmd_migrate)

    p_trace = sub.add_parser(
        "trace", help="run one traced migration and dump the trace file")
    _add_common(p_trace)
    _add_config(p_trace)
    p_trace.add_argument("--scheme", choices=scheme_names(aliases=True),
                         default="tpm", help="migration scheme")
    p_trace.add_argument("--out", metavar="PATH",
                         default="migration.trace.json",
                         help="trace output path "
                              "(default: migration.trace.json)")
    p_trace.add_argument("--trace-format", choices=("chrome", "json"),
                         default="chrome",
                         help="'chrome' loads into chrome://tracing "
                              "(default); 'json' is the raw dump")
    p_trace.set_defaults(func=cmd_trace)

    p_evac = sub.add_parser(
        "evacuate", help="drain one host of a simulated cluster")
    p_evac.add_argument("--hosts", type=int, default=4,
                        help="number of hosts (default: 4)")
    p_evac.add_argument("--vms-per-host", type=int, default=2,
                        help="VMs per host (default: 2)")
    p_evac.add_argument("--wiring", choices=("full", "star", "rack"),
                        default="star", help="cluster wiring (default: star)")
    p_evac.add_argument("--concurrency", type=int, default=4,
                        help="admission cap: concurrent migrations "
                             "(default: 4)")
    p_evac.add_argument("--per-link-limit", type=int, default=None,
                        help="max in-flight migrations per link "
                             "(default: unlimited)")
    p_evac.add_argument("--policy", choices=("least-loaded", "round-robin"),
                        default="least-loaded", help="placement policy")
    p_evac.add_argument("--scheme", choices=scheme_names(aliases=True), default="tpm",
                        help="migration scheme (default: tpm)")
    p_evac.add_argument("--nblocks", type=int, default=2048,
                        help="VBD blocks per VM (default: 2048)")
    p_evac.add_argument("--npages", type=int, default=256,
                        help="memory pages per VM (default: 256)")
    _add_trace(p_evac)
    p_evac.set_defaults(func=cmd_evacuate)

    p_scale = sub.add_parser(
        "scale", help="run a datacenter-scale churn scenario on the "
                      "sharded per-rack engine")
    p_scale.add_argument("--racks", type=int, default=25,
                         help="racks = simulation shards (default: 25)")
    p_scale.add_argument("--hosts-per-rack", type=int, default=40,
                         help="hosts per rack (default: 40)")
    p_scale.add_argument("--vms-per-host", type=int, default=10,
                         help="seed VMs per host (default: 10)")
    p_scale.add_argument("--nblocks", type=int, default=256,
                         help="VBD blocks per VM (default: 256)")
    p_scale.add_argument("--npages", type=int, default=32,
                         help="memory pages per VM (default: 32)")
    p_scale.add_argument("--concurrency", type=int, default=64,
                         help="admission cap per shard scheduler "
                              "(default: 64)")
    p_scale.add_argument("--seed", type=int, default=0,
                         help="seed; shard i draws from "
                              "default_rng((seed, i)) (default: 0)")
    p_scale.add_argument("--duration", type=float, default=30.0,
                         help="simulated seconds of churn (default: 30)")
    p_scale.add_argument("--arrival-rate", type=float, default=2.0,
                         help="VM arrivals/s cluster-wide (default: 2)")
    p_scale.add_argument("--departure-rate", type=float, default=1.0,
                         help="VM departures/s cluster-wide (default: 1)")
    p_scale.add_argument("--maintenance-interval", type=float, default=5.0,
                         help="seconds between rolling-maintenance "
                              "evacuations, 0 disables (default: 5)")
    p_scale.add_argument("--maintenance-hold", type=float, default=5.0,
                         help="seconds a host stays in its window "
                              "(default: 5)")
    p_scale.add_argument("--rack-failure", type=float, action="append",
                         metavar="T", default=None,
                         help="inject a correlated rack failure at "
                              "simulated time T (repeatable)")
    p_scale.add_argument("--rack-down-for", type=float, default=5.0,
                         help="seconds crashed racks stay down "
                              "(default: 5)")
    p_scale.add_argument("--downtime-budget", type=float, default=None,
                         metavar="SECONDS",
                         help="per-tenant downtime budget for the SLO "
                              "report (default: none)")
    p_scale.add_argument("--workers", choices=("inline", "fork"),
                         default="inline",
                         help="drain backend: advance shard groups in "
                              "this process or in forked workers "
                              "(default: inline)")
    p_scale.set_defaults(func=cmd_scale)

    p_chaos = sub.add_parser(
        "chaos", help="seeded chaos runs checking the cluster recovery "
                      "invariants")
    p_chaos.add_argument("--seed", type=int, action="append", default=None,
                         metavar="N",
                         help="seed to run (repeatable; default: 0 1)")
    p_chaos.add_argument("--mode", choices=("monolithic", "sharded", "both"),
                         default="both",
                         help="cluster engine(s) to test (default: both)")
    p_chaos.add_argument("--racks", type=int, default=2,
                         help="racks in the test cluster (default: 2)")
    p_chaos.add_argument("--hosts-per-rack", type=int, default=3,
                         help="hosts per rack (default: 3)")
    p_chaos.add_argument("--vms-per-host", type=int, default=2,
                         help="VMs per host (default: 2)")
    p_chaos.add_argument("--jobs", type=int, default=6,
                         help="migrations submitted per run (default: 6)")
    p_chaos.add_argument("--nblocks", type=int, default=2048,
                         help="VBD blocks per VM (default: 2048)")
    p_chaos.add_argument("--npages", type=int, default=64,
                         help="memory pages per VM (default: 64)")
    p_chaos.add_argument("--max-attempts", type=int, default=3,
                         help="retry budget per job (default: 3)")
    p_chaos.set_defaults(func=cmd_chaos)

    p_backup = sub.add_parser(
        "backup", help="run a bitmap-driven incremental backup chain")
    _add_common(p_backup)
    _add_config(p_backup)
    p_backup.add_argument("--increments", type=int, default=4,
                          help="incremental backups after the full "
                               "(default: 4)")
    p_backup.add_argument("--interval", type=float, default=10.0,
                          help="simulated seconds between incrementals "
                               "(default: 10)")
    p_backup.add_argument("--sync-policy",
                          choices=("wal", "batch", "snapshot"),
                          default="wal",
                          help="bitmap store write-back policy "
                               "(default: wal)")
    p_backup.add_argument("--migrate-between", action="store_true",
                          help="live-migrate the VM mid-chain "
                               "(backup-during-migration scenario)")
    p_backup.set_defaults(func=cmd_backup)

    p_t1 = sub.add_parser("table1", help="reproduce a Table I row")
    _add_common(p_t1)
    p_t1.set_defaults(func=cmd_table1)

    p_t2 = sub.add_parser("table2", help="reproduce a Table II row")
    _add_common(p_t2)
    p_t2.add_argument("--dwell", type=float, default=30.0)
    p_t2.set_defaults(func=cmd_table2)

    p_loc = sub.add_parser("locality",
                           help="measure a workload's rewrite locality")
    _add_common(p_loc)
    p_loc.add_argument("--duration", type=float, default=120.0)
    p_loc.set_defaults(func=cmd_locality)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.profile or args.profile_out:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        try:
            return profiler.runcall(args.func, args)
        finally:
            if args.profile_out:
                profiler.dump_stats(args.profile_out)
                print(f"profile written to {args.profile_out}",
                      file=sys.stderr)
            else:
                pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - direct execution
    sys.exit(main())
