"""repro — reproduction of "Live and Incremental Whole-System Migration of
Virtual Machines Using Block-Bitmap" (Luo et al., CLUSTER 2008).

The package implements the paper's Three-Phase Migration (TPM) and
Incremental Migration (IM) algorithms on a discrete-event simulation of
the paper's two-machine testbed, plus the baselines it compares against.

Quickstart::

    from repro.analysis import run_table1_experiment

    report, bed = run_table1_experiment("specweb", scale=0.01)
    print(report.summary())

Subpackages
-----------
``repro.sim``
    Discrete-event engine (environment, processes, resources, timelines).
``repro.bitmap``
    Flat and layered block-bitmaps, granularity arithmetic.
``repro.storage``
    VBDs, the physical-disk model, and the intercepting backend driver.
``repro.net``
    Links, token-bucket rate limiting, typed migration channels.
``repro.vm``
    CPU state, guest memory with dirty logging, domains, hosts.
``repro.workloads``
    SPECweb banking, video streaming, Bonnie++, kernel build, idle.
``repro.core``
    TPM, IM, pre-copy/post-copy engines, the ``Migrator`` façade.
``repro.baselines``
    Freeze-and-copy, on-demand fetching, Bradford delta-queue, and
    shared-storage (memory-only) migration.
``repro.faults``
    Deterministic fault injection (link blackouts, degradation windows,
    host crashes) and bitmap-preserving failure recovery.
``repro.obs``
    Observability: hierarchical span tracer, metrics registry, and
    JSON / Chrome-trace exporters (see ``docs/OBSERVABILITY.md``).
``repro.analysis``
    Metrics, write-locality, tables, canned experiments.
"""

from .errors import (
    BitmapError,
    ConsistencyError,
    FaultError,
    MigrationAborted,
    MigrationError,
    MigrationFailed,
    NetworkError,
    ReproError,
    SimulationError,
    StorageError,
)
from .units import BLOCK_SIZE, GiB, Gbps, KiB, MiB, PAGE_SIZE, SECTOR_SIZE

__version__ = "1.0.0"

__all__ = [
    "BLOCK_SIZE",
    "BitmapError",
    "ConsistencyError",
    "FaultError",
    "GiB",
    "Gbps",
    "KiB",
    "MiB",
    "MigrationAborted",
    "MigrationError",
    "MigrationFailed",
    "NetworkError",
    "PAGE_SIZE",
    "ReproError",
    "SECTOR_SIZE",
    "SimulationError",
    "StorageError",
    "__version__",
]
