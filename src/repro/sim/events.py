"""Core event primitives for the discrete-event engine.

The design follows the classic *SimPy* shape: an :class:`Event` is a one-shot
box that is eventually *triggered* (succeeded or failed) and, once the
environment processes it, invokes its callbacks.  Processes are generators
that ``yield`` events; the engine resumes them when the event fires.

The engine is deliberately small and legible — the HPC guides' first rule is
"make it work, make it right" before making it fast; all performance-critical
work in this library happens in vectorized NumPy (bitmaps, block scans), not
in the event loop.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Environment

#: Scheduling priorities: urgent events fire before normal ones at equal time.
URGENT = 0
NORMAL = 1

#: Sentinel for "not yet triggered".
PENDING = object()


class Interrupt(Exception):
    """Thrown *into* a process when another process interrupts it.

    The ``cause`` attribute carries whatever object the interrupter passed.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that processes may wait on.

    Lifecycle: *pending* → *triggered* (``succeed``/``fail``) → *processed*
    (callbacks have run).  Triggering twice is an error.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks invoked with this event when it is processed.  Becomes
        #: ``None`` after processing — appending then is a bug.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Failed events whose exception was delivered to at least one
        #: waiter are "defused"; an un-defused failure crashes the run.
        self._defused = False

    # -- state inspection --------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        eid = env._eid = env._eid + 1
        # Triggered events fire *now*, which the engine keeps at or before
        # the calendar's current bucket — straight to the near heap.
        heappush(env._queue, (env._now, NORMAL, eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception delivered to waiters."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        env = self.env
        eid = env._eid = env._eid + 1
        heappush(env._queue, (env._now, NORMAL, eid, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Copy another event's outcome into this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Timeouts are the single most-constructed event type (every modelled
    latency is one), so construction is a fast lane: the triggered state
    is written directly and the heap entry is pushed inline, skipping the
    generic ``Event.__init__``/``Environment.schedule`` pair (and its
    redundant second delay validation).
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self.delay = delay
        eid = env._eid = env._eid + 1
        when = env._now + delay
        width = env._cal_width
        if width:
            key = int(when / width)
            if key > env._cal_k:
                env._defer(key, (when, NORMAL, eid, self))
            else:
                heappush(env._queue, (when, NORMAL, eid, self))
        else:
            heappush(env._queue, (when, NORMAL, eid, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class Condition(Event):
    """Waits for a combination of events (base for :class:`AllOf`/:class:`AnyOf`).

    The condition's value is a dict mapping each *triggered* constituent
    event to its value, in original order.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")

        if not self._events:
            self.succeed(self._collect())
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events count as having fired: a Timeout is
        # "triggered" (has a value) from construction, but it has not
        # happened until the loop processes it.
        return {e: e.value for e in self._events if e.processed}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()  # condition already resolved; swallow
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires when *all* constituent events have fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= len(events), events)


class AnyOf(Condition):
    """Fires as soon as *any* constituent event has fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= 1, events)
