"""Time-series recording for simulation metrics (throughput plots, etc.)."""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Environment


class Timeline:
    """Append-only recorder of ``(time, value)`` samples per named series.

    Used by throughput monitors and the benchmark harness to regenerate the
    paper's figures.  Samples are buffered in plain lists (cheap appends) and
    materialised as NumPy arrays on demand.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._samples: dict[str, list[tuple[float, float]]] = defaultdict(list)

    def record(self, series: str, value: float) -> None:
        """Record ``value`` for ``series`` at the current simulated time."""
        self._samples[series].append((self.env.now, value))

    def record_at(self, series: str, time: float, value: float) -> None:
        """Record a sample with an explicit timestamp."""
        self._samples[series].append((time, value))

    @property
    def series_names(self) -> list[str]:
        return sorted(self._samples)

    def series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` arrays for ``name`` (empty if unknown)."""
        samples = self._samples.get(name, [])
        if not samples:
            return np.empty(0), np.empty(0)
        arr = np.asarray(samples, dtype=np.float64)
        return arr[:, 0], arr[:, 1]

    def windowed_rate(
        self, name: str, window: float, t_end: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Aggregate a series of per-event amounts into a rate per ``window``.

        Returns ``(bin_centres, rate)`` where ``rate[i]`` is the sum of values
        recorded inside bin ``i`` divided by the window length — i.e. a
        throughput curve like the paper's Figures 5 and 6.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        times, values = self.series(name)
        if times.size == 0:
            return np.empty(0), np.empty(0)
        end = t_end if t_end is not None else times[-1] + window
        edges = np.arange(0.0, end + window, window)
        sums, _ = np.histogram(times, bins=edges, weights=values)
        centres = (edges[:-1] + edges[1:]) / 2.0
        return centres, sums / window

    def total(self, name: str) -> float:
        """Sum of all values recorded for ``name``."""
        _, values = self.series(name)
        return float(values.sum()) if values.size else 0.0

    def merge(self, other: "Timeline", prefix: str = "") -> None:
        """Fold ``other``'s samples into this timeline, optionally prefixed."""
        for name, samples in other._samples.items():
            self._samples[prefix + name].extend(samples)

    def clear(self, names: Iterable[str] | None = None) -> None:
        if names is None:
            self._samples.clear()
        else:
            for name in names:
                self._samples.pop(name, None)
