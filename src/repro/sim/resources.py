"""Shared-resource primitives: :class:`Resource`, :class:`Store`, :class:`Container`.

These model contention — e.g. a physical disk that can serve a bounded
number of in-flight operations, or a bounded queue of migration messages.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from ..errors import SimulationError
from .events import Event, PENDING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Environment


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when capacity is granted.

    Usable as a context manager so that the resource is always released::

        with disk.request() as req:
            yield req
            yield env.timeout(service_time)
    """

    __slots__ = ("resource", "priority", "_cancelled")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        # Inlined Event.__init__ — a Request is constructed per simulated
        # I/O, and the chained constructor call is measurable there.
        self.env = resource.env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self.resource = resource
        self.priority = priority
        #: Set when the request is withdrawn while still queued; the heap
        #: entry stays behind and is skipped lazily by ``Resource._grant``.
        self._cancelled = False
        resource._request(self)

    def release(self) -> None:
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class Resource:
    """A capacity-limited resource with FIFO (or priority) granting.

    Cancelling a queued request (releasing it before it was granted) is
    *lazy*: the heap entry is left in place, flagged, and skipped when it
    eventually surfaces in :meth:`_grant` — O(log n) instead of the O(n)
    rebuild-and-reheapify a physical removal would cost.
    """

    __slots__ = ("env", "capacity", "users", "_waiting", "_seq",
                 "_ncancelled")

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        #: Requests currently holding capacity.
        self.users: list[Request] = []
        #: Heap of (priority, sequence, request) awaiting capacity.
        self._waiting: list[tuple[int, int, Request]] = []
        self._seq = 0
        #: Entries in ``_waiting`` that are lazily-cancelled tombstones.
        self._ncancelled = 0

    @property
    def count(self) -> int:
        """Number of users currently holding the resource."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for capacity."""
        return len(self._waiting) - self._ncancelled

    def request(self, priority: int = 0) -> Request:
        """Claim one unit of capacity (lower ``priority`` wins)."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return ``request``'s unit of capacity and grant the next waiter."""
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing an ungranted request = cancelling it from the
            # queue.  A granted request is always triggered, so a pending
            # value means the entry is still in the heap: tombstone it.
            if request._value is PENDING and not request._cancelled:
                request._cancelled = True
                self._ncancelled += 1
            return
        self._grant()

    # -- internals -----------------------------------------------------------

    def _request(self, request: Request) -> None:
        self._seq += 1
        if not self._waiting and len(self.users) < self.capacity:
            # Uncontended fast path: grant without touching the heap.
            self.users.append(request)
            request.succeed()
            return
        heapq.heappush(self._waiting, (request.priority, self._seq, request))
        self._grant()

    def _grant(self) -> None:
        waiting = self._waiting
        users = self.users
        capacity = self.capacity
        while waiting and len(users) < capacity:
            request = heapq.heappop(waiting)[2]
            if request._cancelled:
                self._ncancelled -= 1
                continue
            users.append(request)
            request.succeed()


class PriorityResource(Resource):
    """Alias emphasising priority-aware granting (the base already supports it)."""

    __slots__ = ()


class Store:
    """An unbounded-or-bounded FIFO of Python objects with blocking get/put."""

    __slots__ = ("env", "capacity", "items", "_getters", "_putters")

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; the returned event fires when accepted."""
        event = Event(self.env)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._dispatch()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Withdraw the oldest item; the returned event fires with the item."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self.items.popleft())
            while self._putters and len(self.items) < self.capacity:
                putter, item = self._putters.popleft()
                self.items.append(item)
                putter.succeed()


class Container:
    """A homogeneous quantity (e.g. bytes of budget) with blocking get/put."""

    __slots__ = ("env", "capacity", "_level", "_getters", "_putters")

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"container capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise SimulationError(f"initial level {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError(f"cannot put negative amount {amount}")
        event = Event(self.env)
        self._putters.append((event, amount))
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError(f"cannot get negative amount {amount}")
        if amount > self.capacity:
            raise SimulationError(
                f"get({amount}) can never be satisfied (capacity {self.capacity})")
        event = Event(self.env)
        self._getters.append((event, amount))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed()
                    progress = True
