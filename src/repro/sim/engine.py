"""The discrete-event simulation environment (event loop)."""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Iterable, Optional

from ..errors import SimulationError, StaleSchedulingError
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from .events import AllOf, AnyOf, Event, Timeout, NORMAL
from .process import Process, ProcessGenerator


class Environment:
    """Owns simulated time and the pending-event queue.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(1.0)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 1.0 and proc.value == "done"

    Every environment carries an observability pair — :attr:`tracer` and
    :attr:`metrics` — initialised to no-op singletons so instrumented
    code can call them unconditionally at zero recording cost.  Install
    live instances with :func:`repro.obs.install` to start recording.

    The dispatch loops in :meth:`run` are deliberately inlined copies of
    :meth:`step` (local bindings, one attribute write per event): the
    loop body runs once per event and dominates wall-clock at cluster
    scale, so it trades a little repetition for a measurably hotter path.
    :meth:`step` remains the single-event reference implementation.

    **Calendar queue.**  Under Timeout-dominated load the pending set can
    grow to tens of thousands of entries, and every push/pop then pays
    ``O(log n)`` against the full heap.  When the queue crosses
    ``calendar_threshold`` entries the environment *engages* a two-level
    scheme: a small near-term heap (the current time bucket and earlier)
    plus far-term buckets keyed by ``int(t / width)``.  Far inserts are a
    dict lookup + list append; when the near heap drains, the next whole
    bucket is heapified in at once.  Dispatch order is provably unchanged:
    ``int(t / width)`` is monotone in ``t``, buckets are consumed in key
    order, and within a bucket the original ``(time, priority, seq)``
    tuples restore the exact global order — so the bit-identical
    equivalence gate holds with the calendar engaged or not.
    """

    #: Engage the calendar when the heap outgrows this many entries
    #: (constructor default); disengage below ``_CAL_LO`` to keep tiny
    #: simulations on the plain-heap fast path.
    _CAL_LO = 256
    #: Target mean bucket occupancy when sizing the bucket width.
    _CAL_OCCUPANCY = 64

    __slots__ = ("_now", "_queue", "_eid", "_active_process",
                 "tracer", "metrics", "events_processed",
                 "_far", "_far_keys", "_far_count",
                 "_cal_width", "_cal_k", "_cal_threshold")

    def __init__(self, initial_time: float = 0.0,
                 calendar_threshold: Optional[int] = 2048) -> None:
        self._now = float(initial_time)
        #: Heap of (time, priority, sequence, event).
        self._queue: list[tuple[float, int, int, Event]] = []
        #: Far-term calendar buckets: bucket key -> list of heap entries.
        self._far: dict[int, list[tuple[float, int, int, Event]]] = {}
        #: Min-heap of non-empty far bucket keys.
        self._far_keys: list[int] = []
        self._far_count = 0
        #: Bucket width in simulated seconds; 0.0 means "calendar off"
        #: (every insert goes straight to the heap, as before).
        self._cal_width = 0.0
        #: Highest bucket key already merged into the near heap.
        self._cal_k = 0
        self._cal_threshold = int(calendar_threshold or 0)
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Span/instant recorder (:class:`repro.obs.Tracer` when installed).
        self.tracer = NULL_TRACER
        #: Counter/gauge/histogram registry
        #: (:class:`repro.obs.MetricsRegistry` when installed).
        self.metrics = NULL_METRICS
        #: Events processed since construction (engine-level load signal,
        #: kept as a plain int so the hot loop stays cheap either way).
        self.events_processed = 0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Queue ``event`` to be processed ``delay`` seconds from now."""
        if delay < 0:
            raise StaleSchedulingError(
                f"cannot schedule {event!r} {delay!r}s into the past")
        self._eid += 1
        when = self._now + delay
        entry = (when, priority, self._eid, event)
        width = self._cal_width
        if width:
            key = int(when / width)
            if key > self._cal_k:
                self._defer(key, entry)
                return
        heapq.heappush(self._queue, entry)

    # -- calendar-queue internals -----------------------------------------

    def _defer(self, key: int, entry: tuple) -> None:
        """File ``entry`` in the far-term bucket ``key`` (calendar engaged)."""
        bucket = self._far.get(key)
        if bucket is None:
            self._far[key] = [entry]
            heapq.heappush(self._far_keys, key)
        else:
            bucket.append(entry)
        self._far_count += 1

    def _pull_far(self, limit_key: Optional[int] = None) -> bool:
        """Merge the earliest far bucket into the near heap.

        Returns False (and merges nothing) when no buckets remain or the
        earliest bucket's key exceeds ``limit_key``.  The near heap's list
        identity is preserved — the inlined ``_run`` loops hold an alias.
        """
        if not self._far_count:
            return False
        key = self._far_keys[0]
        if limit_key is not None and key > limit_key:
            return False
        heapq.heappop(self._far_keys)
        bucket = self._far.pop(key)
        self._far_count -= len(bucket)
        queue = self._queue
        queue.extend(bucket)
        heapq.heapify(queue)
        self._cal_k = key
        return True

    def _engage(self, width: Optional[float] = None) -> None:
        """Switch to calendar mode, repartitioning the pending heap.

        ``width`` is normally derived from the current queue's time span
        (targeting ``_CAL_OCCUPANCY`` entries per bucket); tests may pass
        an explicit width.  A no-op when the span is degenerate.
        """
        queue = self._queue
        if width is None:
            if len(queue) < 2:
                return
            span = max(entry[0] for entry in queue) - self._now
            if span <= 0.0:
                return
            width = max(span * self._CAL_OCCUPANCY / len(queue),
                        span / 4096.0)
        if width <= 0.0:
            return
        self._cal_width = width
        self._cal_k = key0 = int(self._now / width)
        near = []
        for entry in queue:
            key = int(entry[0] / width)
            if key <= key0:
                near.append(entry)
            else:
                self._defer(key, entry)
        queue[:] = near
        heapq.heapify(queue)

    def _disengage(self) -> None:
        """Flush every far bucket back into the heap and turn the calendar off."""
        if self._far_count:
            queue = self._queue
            for bucket in self._far.values():
                queue.extend(bucket)
            heapq.heapify(queue)
        self._far.clear()
        self._far_keys.clear()
        self._far_count = 0
        self._cal_width = 0.0
        self._cal_k = 0

    def _maybe_adapt(self) -> None:
        """Periodic load check from the dispatch loops: engage the calendar
        above the threshold, drop back to the plain heap when the pending
        set shrinks below ``_CAL_LO``."""
        if self._cal_width:
            if len(self._queue) + self._far_count < self._CAL_LO:
                self._disengage()
        elif self._cal_threshold and len(self._queue) > self._cal_threshold:
            self._engage()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        if not self._queue and self._far_count:
            self._pull_far()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue and self._far_count:
            self._pull_far()
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("no more events to process") from None

        self._now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it rather than losing it.
            if isinstance(event._value, BaseException):
                raise event._value
            raise SimulationError(f"unhandled event failure: {event._value!r}")

    def run(self, until: "float | Event | None" = None) -> Any:
        """Drive the simulation.

        * ``until=None`` — run until no events remain.
        * ``until=<number>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until that event is processed and return
          its value (raising if it failed).

        With a live metrics registry installed, every call also refreshes
        the ``engine.events_per_sec`` gauge (events dispatched per *host*
        second during this call) so traces show engine load alongside the
        simulated-time spans.
        """
        if not self.metrics.enabled:
            return self._run(until)
        start_events = self.events_processed
        start_wall = perf_counter()
        try:
            return self._run(until)
        finally:
            elapsed = perf_counter() - start_wall
            dispatched = self.events_processed - start_events
            if elapsed > 0 and dispatched:
                self.metrics.gauge("engine.events_per_sec").set(
                    dispatched / elapsed)

    def _run(self, until: "float | Event | None") -> Any:
        queue = self._queue
        heappop = heapq.heappop
        processed = 0

        if until is None:
            try:
                while queue or self._far_count:
                    while queue:
                        when, _prio, _eid, event = heappop(queue)
                        self._now = when
                        processed += 1
                        callbacks, event.callbacks = event.callbacks, None
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not event._defused:
                            if isinstance(event._value, BaseException):
                                raise event._value
                            raise SimulationError(
                                f"unhandled event failure: {event._value!r}")
                        if not processed & 2047:
                            self._maybe_adapt()
                    if not self._pull_far():
                        break
            finally:
                self.events_processed += processed
            return None

        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is not None:  # not yet processed
                done = [False]
                stop_event.callbacks.append(
                    lambda _e: done.__setitem__(0, True))
                try:
                    while not done[0]:
                        if not queue and not self._pull_far():
                            raise SimulationError(
                                f"run(until={stop_event!r}) but the event "
                                f"queue drained first")
                        when, _prio, _eid, event = heappop(queue)
                        self._now = when
                        processed += 1
                        callbacks, event.callbacks = event.callbacks, None
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not event._defused:
                            if isinstance(event._value, BaseException):
                                raise event._value
                            raise SimulationError(
                                f"unhandled event failure: {event._value!r}")
                        if not processed & 2047:
                            self._maybe_adapt()
                finally:
                    self.events_processed += processed
            if not stop_event._ok:
                # Defuse in the already-processed case too: raising here
                # hands the failure to the caller, so the watchdog in
                # step() must not surface it a second time.
                stop_event.defuse()
                raise stop_event.value
            return stop_event.value

        horizon = float(until)
        if horizon < self._now:
            raise StaleSchedulingError(
                f"cannot run until {horizon!r}; clock is already at {self._now!r}")
        try:
            while True:
                while queue and queue[0][0] <= horizon:
                    when, _prio, _eid, event = heappop(queue)
                    self._now = when
                    processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        if isinstance(event._value, BaseException):
                            raise event._value
                        raise SimulationError(
                            f"unhandled event failure: {event._value!r}")
                    if not processed & 2047:
                        self._maybe_adapt()
                # int(t / width) is monotone in t, so every event at or
                # before the horizon lives in a bucket keyed at or before
                # int(horizon / width); pulling up to that key can never
                # strand an in-horizon event in the far calendar.
                width = self._cal_width
                if not width or not self._pull_far(int(horizon / width)):
                    break
        finally:
            self.events_processed += processed
        self._now = horizon
        width = self._cal_width
        if width:
            # The clock jumped past dispatched events, so re-anchor the
            # current-bucket key: triggered events insert at ``now`` on the
            # near heap, which is only order-safe while no far bucket at or
            # before ``int(now / width)`` exists (all such buckets were
            # pulled above).
            key = int(horizon / width)
            if key > self._cal_k:
                self._cal_k = key
        return None
