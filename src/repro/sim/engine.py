"""The discrete-event simulation environment (event loop)."""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Iterable, Optional

from ..errors import SimulationError, StaleSchedulingError
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from .events import AllOf, AnyOf, Event, Timeout, NORMAL
from .process import Process, ProcessGenerator


class Environment:
    """Owns simulated time and the pending-event queue.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(1.0)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 1.0 and proc.value == "done"

    Every environment carries an observability pair — :attr:`tracer` and
    :attr:`metrics` — initialised to no-op singletons so instrumented
    code can call them unconditionally at zero recording cost.  Install
    live instances with :func:`repro.obs.install` to start recording.

    The dispatch loops in :meth:`run` are deliberately inlined copies of
    :meth:`step` (local bindings, one attribute write per event): the
    loop body runs once per event and dominates wall-clock at cluster
    scale, so it trades a little repetition for a measurably hotter path.
    :meth:`step` remains the single-event reference implementation.
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_process",
                 "tracer", "metrics", "events_processed")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Heap of (time, priority, sequence, event).
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Span/instant recorder (:class:`repro.obs.Tracer` when installed).
        self.tracer = NULL_TRACER
        #: Counter/gauge/histogram registry
        #: (:class:`repro.obs.MetricsRegistry` when installed).
        self.metrics = NULL_METRICS
        #: Events processed since construction (engine-level load signal,
        #: kept as a plain int so the hot loop stays cheap either way).
        self.events_processed = 0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Queue ``event`` to be processed ``delay`` seconds from now."""
        if delay < 0:
            raise StaleSchedulingError(
                f"cannot schedule {event!r} {delay!r}s into the past")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("no more events to process") from None

        self._now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it rather than losing it.
            if isinstance(event._value, BaseException):
                raise event._value
            raise SimulationError(f"unhandled event failure: {event._value!r}")

    def run(self, until: "float | Event | None" = None) -> Any:
        """Drive the simulation.

        * ``until=None`` — run until no events remain.
        * ``until=<number>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until that event is processed and return
          its value (raising if it failed).

        With a live metrics registry installed, every call also refreshes
        the ``engine.events_per_sec`` gauge (events dispatched per *host*
        second during this call) so traces show engine load alongside the
        simulated-time spans.
        """
        if not self.metrics.enabled:
            return self._run(until)
        start_events = self.events_processed
        start_wall = perf_counter()
        try:
            return self._run(until)
        finally:
            elapsed = perf_counter() - start_wall
            dispatched = self.events_processed - start_events
            if elapsed > 0 and dispatched:
                self.metrics.gauge("engine.events_per_sec").set(
                    dispatched / elapsed)

    def _run(self, until: "float | Event | None") -> Any:
        queue = self._queue
        heappop = heapq.heappop
        processed = 0

        if until is None:
            try:
                while queue:
                    when, _prio, _eid, event = heappop(queue)
                    self._now = when
                    processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        if isinstance(event._value, BaseException):
                            raise event._value
                        raise SimulationError(
                            f"unhandled event failure: {event._value!r}")
            finally:
                self.events_processed += processed
            return None

        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is not None:  # not yet processed
                done = [False]
                stop_event.callbacks.append(
                    lambda _e: done.__setitem__(0, True))
                try:
                    while not done[0]:
                        if not queue:
                            raise SimulationError(
                                f"run(until={stop_event!r}) but the event "
                                f"queue drained first")
                        when, _prio, _eid, event = heappop(queue)
                        self._now = when
                        processed += 1
                        callbacks, event.callbacks = event.callbacks, None
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not event._defused:
                            if isinstance(event._value, BaseException):
                                raise event._value
                            raise SimulationError(
                                f"unhandled event failure: {event._value!r}")
                finally:
                    self.events_processed += processed
            if not stop_event._ok:
                # Defuse in the already-processed case too: raising here
                # hands the failure to the caller, so the watchdog in
                # step() must not surface it a second time.
                stop_event.defuse()
                raise stop_event.value
            return stop_event.value

        horizon = float(until)
        if horizon < self._now:
            raise StaleSchedulingError(
                f"cannot run until {horizon!r}; clock is already at {self._now!r}")
        try:
            while queue and queue[0][0] <= horizon:
                when, _prio, _eid, event = heappop(queue)
                self._now = when
                processed += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    if isinstance(event._value, BaseException):
                        raise event._value
                    raise SimulationError(
                        f"unhandled event failure: {event._value!r}")
        finally:
            self.events_processed += processed
        self._now = horizon
        return None
