"""Fork-based parallel execution of independent simulation work.

The sharded engine's quiescent fast path (no cross-shard sources, no
queued messages) proves that shards cannot influence each other — which
is exactly the precondition for running them in separate *processes*.
:func:`fork_map` is the primitive: it forks worker processes, runs each
assigned thunk in a child against the copy-on-write snapshot of the
parent's heap, and ships only the (picklable) return values back over a
pipe.  Generators, live Environments and the rest of the object graph
never cross the process boundary — the child *owns* its copy end to
end, so the usual "can't pickle a coroutine" wall never comes up.

Determinism: thunks are assigned round-robin in index order, each child
executes its thunks sequentially, and results are returned in the input
order — the schedule is a pure function of ``len(thunks)`` and the
worker count, never of OS timing.  Combined with the per-shard
seed-split streams (``default_rng((seed, shard))``) a forked run
produces bit-identical per-shard results to an inline run.

On platforms without ``os.fork`` (or with ``REPRO_FORK_WORKERS=0``)
everything degrades to inline execution with identical semantics.
"""

from __future__ import annotations

import gc
import os
import pickle
import signal
import traceback
from typing import Any, Callable, Optional, Sequence

from ..errors import SimulationError


class WorkerError(SimulationError):
    """One or more thunks failed inside forked workers.

    Carries the child-side traceback text (``child_traceback``, every
    failure's traceback concatenated) since the original frames died
    with the worker processes, plus ``failed_indices`` — the input
    positions of **all** failing thunks (-1 for a worker that died
    without producing a result, e.g. killed by a signal), so callers
    can retry or report exactly the failed subset instead of only the
    first casualty.
    """

    def __init__(self, message: str, child_traceback: str = "",
                 failed_indices: Sequence[int] = ()) -> None:
        super().__init__(message)
        self.child_traceback = child_traceback
        self.failed_indices = tuple(failed_indices)


def fork_available() -> bool:
    """True when this platform can fork worker processes."""
    return hasattr(os, "fork")


def worker_count(njobs: int, nworkers: Optional[int] = None) -> int:
    """The effective worker count for ``njobs`` independent jobs.

    Defaults to ``min(cpu_count, njobs)``; the ``REPRO_FORK_WORKERS``
    environment variable overrides (0 forces inline execution).
    """
    if njobs <= 0:
        return 0
    env_override = os.environ.get("REPRO_FORK_WORKERS")
    if env_override is not None:
        return max(0, min(int(env_override), njobs))
    if nworkers is not None:
        return max(0, min(int(nworkers), njobs))
    return min(os.cpu_count() or 1, njobs)


def _child_main(write_fd: int, indices: Sequence[int],
                thunks: Sequence[Callable[[], Any]]) -> None:
    """Worker body: run assigned thunks, pickle results to the pipe.

    Exits with ``os._exit`` so the parent's atexit hooks and buffered
    streams are never replayed from the child.
    """
    # The child lives only as long as its thunks and exits without
    # cleanup, so cycle collection buys nothing — but a GC pass would
    # traverse (and copy-on-write fault) every inherited heap page.
    gc.disable()
    results: list[tuple[int, str, Any]] = []
    for i in indices:
        try:
            value = thunks[i]()
            # Probe picklability here so a bad payload surfaces as a
            # job error instead of corrupting the whole result stream.
            pickle.dumps(value)
            results.append((i, "ok", value))
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            tb = traceback.format_exc()
            try:
                pickle.dumps(exc)
                results.append((i, "err", (exc, tb)))
            except Exception:
                results.append((i, "err", (None, f"{exc!r}\n{tb}")))
    with os.fdopen(write_fd, "wb") as fh:
        pickle.dump(results, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os._exit(0)


def fork_map(thunks: Sequence[Callable[[], Any]],
             nworkers: Optional[int] = None) -> list[Any]:
    """Run every thunk, fanning out across forked workers; results in
    input order.

    Thunks run against the copy-on-write fork snapshot, so they may
    freely mutate "their" objects; only return values (which must
    pickle) reach the parent.  A thunk that raises anywhere aborts the
    whole map with :class:`WorkerError` after all workers are reaped.
    Even a single worker forks (so mutation isolation is uniform across
    machine sizes); only ``REPRO_FORK_WORKERS=0`` or a platform without
    ``os.fork`` degrades to inline execution, where the parent *does*
    see mutations.
    """
    thunks = list(thunks)
    n = worker_count(len(thunks), nworkers)
    if n < 1 or not fork_available():
        return [thunk() for thunk in thunks]

    assignments: list[list[int]] = [[] for _ in range(n)]
    for i in range(len(thunks)):
        assignments[i % n].append(i)

    workers: list[tuple[int, int]] = []  # (pid, read_fd)
    for indices in assignments:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            os.close(read_fd)
            _child_main(write_fd, indices, thunks)
            raise AssertionError("unreachable")  # pragma: no cover
        os.close(write_fd)
        workers.append((pid, read_fd))

    # Sequential reads are deadlock-free: each child writes only its own
    # pipe, and a child blocked on a full pipe just waits its turn.
    results: list[Any] = [None] * len(thunks)
    errors: list[tuple[int, Any, str]] = []
    for pid, read_fd in workers:
        with os.fdopen(read_fd, "rb") as fh:
            payload = fh.read()
        _pid, status = os.waitpid(pid, 0)
        if not payload:
            if os.WIFSIGNALED(status):
                signum = os.WTERMSIG(status)
                try:
                    signame = signal.Signals(signum).name
                except ValueError:
                    signame = f"signal {signum}"
                cause = f"killed by {signame}"
            elif os.WIFEXITED(status):
                cause = f"exited with status {os.WEXITSTATUS(status)}"
            else:
                cause = f"wait status {status:#x}"
            errors.append((-1, None,
                           f"worker {pid} died without a result ({cause})"))
            continue
        for i, kind, value in pickle.loads(payload):
            if kind == "ok":
                results[i] = value
            else:
                exc, tb = value
                errors.append((i, exc, tb))
    if errors:
        # Report every casualty, not just the first: the indices let a
        # caller retry exactly the failed subset, and the concatenated
        # tracebacks keep correlated failures diagnosable in one read.
        errors.sort(key=lambda e: e[0])
        indices = [index for index, _exc, _tb in errors]
        tracebacks = "\n".join(
            f"--- thunk {index} ---\n{tb}" if index >= 0 else f"--- {tb} ---"
            for index, _exc, tb in errors)
        shown = ", ".join(str(i) for i in indices if i >= 0) or "unknown"
        dead = sum(1 for i in indices if i < 0)
        message = (f"{len(errors)} failure(s) in forked workers "
                   f"(thunks: {shown}"
                   + (f"; {dead} worker(s) died silently" if dead else "")
                   + ")")
        first_exc = next((exc for _i, exc, _tb in errors
                          if isinstance(exc, BaseException)), None)
        if first_exc is not None:
            message = f"{message}: first: {first_exc!r}"
        error = WorkerError(message, child_traceback=tracebacks,
                            failed_indices=indices)
        if first_exc is not None:
            raise error from first_exc
        raise error
    return results
