"""Sharded simulation: one event heap per rack, conservatively synced.

At datacenter scale (ROADMAP: 1,000+ hosts, 10,000+ VMs) a single
:class:`~repro.sim.engine.Environment` serializes every rack's events
through one heap and walks one giant object graph, which is where the
wall clock goes.  :class:`ShardedEngine` runs one Environment per rack
*shard* and advances them in **conservative lookahead windows**
(Chandy–Misra–Bryant style, time-stepped):

* Racks only influence each other across the inter-rack fabric, whose
  minimum one-way link latency ``L`` is exported by
  :meth:`repro.net.topology.Topology.lookahead`.  No event a shard
  executes at time ``t`` can affect another shard before ``t + L``.
* Each iteration computes ``t_next`` — the earliest pending event (or
  queued cross-shard message) across all shards — and runs every shard
  up to ``horizon = t_next + L`` in a fixed, deterministic shard order.
  All shard clocks meet at the boundary, messages due by then are
  applied, and the loop repeats.
* Cross-shard interactions travel through :meth:`send`: a message
  carries its earliest-visibility time and a callback; it is applied at
  the first window boundary at or after that time (arrival visibility
  is quantized to boundaries — deterministic, and never early).

**Application lookahead fast path.**  Message *sources* (e.g. in-flight
cross-rack migrations) register via :meth:`add_source`/
:meth:`remove_source`.  While no source is registered and no message is
queued, no shard can possibly influence another, so the window widens
to the caller's ``until`` — each shard then runs its whole span back to
back on a small heap with a hot cache, which is where the sharded
engine's throughput win over the monolithic engine comes from (the
conservative L-windows are only paid while cross-rack traffic is
actually in flight).

Determinism: shard order is fixed (registration order), window
boundaries are a pure function of event times, and messages apply in
(visibility time, sequence number) order — two runs of the same
scenario produce identical states, reports, and byte ledgers.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Optional

from ..errors import SimulationError
from .engine import Environment

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

#: A cross-shard message callback: ``fn(env)`` runs with the *target*
#: shard's environment, at that shard's current (boundary) time.
MessageFn = Callable[[Environment], None]


class Shard:
    """One rack-local simulation: a name, an Environment, an inbox."""

    __slots__ = ("name", "index", "env", "inbox")

    def __init__(self, name: str, env: Environment, index: int) -> None:
        self.name = name
        self.index = index
        self.env = env
        #: Heap of (visible_at, seq, fn) cross-shard messages awaiting
        #: a window boundary >= visible_at.
        self.inbox: list[tuple[float, int, MessageFn]] = []

    def __repr__(self) -> str:
        return (f"<Shard {self.name!r} now={self.env.now:g} "
                f"inbox={len(self.inbox)}>")


#: Valid execution backends for :class:`ShardedEngine`.
WORKER_BACKENDS = ("inline", "fork")


class ShardedEngine:
    """Coordinates per-shard Environments under conservative lookahead.

    ``workers`` selects the execution backend: ``"inline"`` (default)
    advances every shard in this process; ``"fork"`` lets
    :meth:`run_forked` fan independent shard groups out across forked
    worker processes (falling back to inline where fork is unavailable).
    """

    def __init__(self, lookahead: float, workers: str = "inline") -> None:
        if lookahead <= 0.0:
            raise SimulationError(
                f"lookahead must be positive, got {lookahead!r}")
        if workers not in WORKER_BACKENDS:
            raise SimulationError(
                f"workers must be one of {WORKER_BACKENDS}, got {workers!r}")
        self.workers = workers
        self.lookahead = float(lookahead)
        self._shards: list[Shard] = []
        self._by_name: dict[str, Shard] = {}
        self._seq = 0
        #: Registered cross-shard message sources (in-flight cross-rack
        #: migrations and the like).  While zero, windows widen to the
        #: caller's horizon.
        self._sources = 0
        #: Windows executed (1 window = every shard advanced once).
        self.windows = 0
        #: Messages delivered across shards.
        self.messages_delivered = 0

    # -- construction ------------------------------------------------------

    def add_shard(self, name: str, env: Optional[Environment] = None
                  ) -> Shard:
        """Register a shard; order of registration is execution order."""
        if name in self._by_name:
            raise SimulationError(f"duplicate shard name {name!r}")
        shard = Shard(name, env if env is not None else Environment(),
                      len(self._shards))
        self._shards.append(shard)
        self._by_name[name] = shard
        return shard

    @property
    def shards(self) -> list[Shard]:
        return list(self._shards)

    def shard(self, name: str) -> Shard:
        try:
            return self._by_name[name]
        except KeyError:
            raise SimulationError(f"no shard named {name!r}") from None

    # -- cross-shard messaging ---------------------------------------------

    def send(self, target: str, visible_at: float, fn: MessageFn) -> None:
        """Queue ``fn`` to run in shard ``target`` at the first window
        boundary at or after ``visible_at``.

        Safe to call from inside any shard's processes (that is the
        normal case: a cross-rack migration completing in its source
        shard hands the domain to the destination shard) — but only
        while a source is registered via :meth:`add_source`.  That
        contract is what makes the wide-window fast path sound: with no
        sources live, the coordinator *knows* no send can happen.
        """
        if self._sources <= 0:
            raise SimulationError(
                "send() without a registered source; wrap cross-shard "
                "activity in add_source()/remove_source()")
        shard = self.shard(target)
        self._seq += 1
        heapq.heappush(shard.inbox, (float(visible_at), self._seq, fn))

    def add_source(self) -> None:
        """Declare a live cross-shard message source (disables the
        wide-window fast path until :meth:`remove_source`)."""
        self._sources += 1

    def remove_source(self) -> None:
        if self._sources <= 0:
            raise SimulationError("remove_source() without add_source()")
        self._sources -= 1

    @property
    def quiescent(self) -> bool:
        """True when no cross-shard interaction is possible right now."""
        return self._sources == 0 and not any(
            shard.inbox for shard in self._shards)

    # -- the conservative loop ---------------------------------------------

    def _deliver_due(self, shard: Shard) -> None:
        """Apply inbox messages visible by the shard's current time."""
        inbox = shard.inbox
        env = shard.env
        while inbox and inbox[0][0] <= env.now:
            _when, _seq, fn = heapq.heappop(inbox)
            self.messages_delivered += 1
            fn(env)

    def _t_next(self) -> float:
        """Earliest pending work (event or message) across all shards."""
        t = float("inf")
        for shard in self._shards:
            peek = shard.env.peek()
            if peek < t:
                t = peek
            if shard.inbox and shard.inbox[0][0] < t:
                t = shard.inbox[0][0]
        return t

    def step_window(self, until: Optional[float] = None) -> bool:
        """Execute one synchronization window; False when no work was
        available (every queue idle and every inbox empty, or the next
        work item lies beyond ``until``)."""
        if not self._shards:
            raise SimulationError("no shards registered")
        shards = self._shards
        t_next = self._t_next()
        if t_next == float("inf"):
            return False
        if until is not None and t_next > until:
            return False
        if self.quiescent:
            # No possible cross-shard influence (send() requires a
            # registered source, and there are none): run each shard's
            # whole remaining span in one hot pass.
            self.windows += 1
            if until is None:
                for shard in shards:
                    shard.env.run()
                return True
            for shard in shards:
                if shard.env.now < until or shard.env.peek() <= until:
                    shard.env.run(until=float(until))
            return True
        horizon = t_next + self.lookahead
        if until is not None and horizon > until:
            horizon = float(until)
        self.windows += 1
        for shard in shards:
            self._deliver_due(shard)
            if shard.env.now < horizon or shard.env.peek() <= horizon:
                shard.env.run(until=horizon)
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Advance every shard to ``until`` (or until all work drains).

        With ``until`` given, all shard clocks equal it on return and
        every message visible by then has been applied.  With
        ``until=None`` the engine runs until no shard holds a pending
        event or message — beware perpetual background processes, which
        make that never happen (use a horizon or :meth:`step_window`).
        """
        while self.step_window(until=until):
            pass
        # Land every clock on the requested horizon and flush messages
        # that became visible by it.
        if until is not None:
            final = float(until)
            for shard in self._shards:
                if shard.env.now < final:
                    shard.env.run(until=final)
                self._deliver_due(shard)

    # -- parallel execution ------------------------------------------------

    def run_forked(self, until: Optional[float] = None,
                   extract: Optional[Callable[[Shard], object]] = None,
                   groups: Optional[list[list[str]]] = None,
                   nworkers: Optional[int] = None) -> dict:
        """Advance shard groups to ``until`` in forked workers; return
        ``{shard_name: extract(shard)}`` gathered from the children.

        This is a *map*, not an in-place run: each worker owns a
        copy-on-write snapshot, advances its groups' shards (delivering
        any due intra-group messages through the normal conservative
        loop), and ships back only what ``extract`` returns (which must
        pickle; default: the shard's events/now/inbox stats).  The
        parent's shard state is **not** advanced — callers that need
        merged state patch it back from the extracted values (see
        ``ShardedCluster.drain(workers="fork")``).

        Without explicit ``groups`` the engine must be quiescent (each
        shard becomes its own group); with groups, every pair of shards
        that can exchange messages must share a group — that is the
        caller's contract, same as :meth:`send`'s source contract.
        """
        from .parallel import fork_map

        if extract is None:
            def extract(shard: Shard) -> dict:
                return dict(events=shard.env.events_processed,
                            now=shard.env.now, inbox=len(shard.inbox))
        if groups is None:
            if not self.quiescent:
                raise SimulationError(
                    "run_forked() without groups requires a quiescent "
                    "engine; co-locate communicating shards explicitly")
            groups = [[shard.name] for shard in self._shards]
        for name_list in groups:
            for name in name_list:
                self.shard(name)  # validate early, in the parent

        def group_thunk(names: list[str]):
            def run_group() -> dict:
                members = [self._by_name[name] for name in names]
                # Narrow the engine to this group.  In a forked child the
                # narrowing is free (copy-on-write snapshot); on the
                # inline fallback the finally puts the parent back.
                saved = (self._shards, self._by_name)
                self._shards = members
                self._by_name = {shard.name: shard for shard in members}
                try:
                    self.run(until=until)
                    return {shard.name: extract(shard) for shard in members}
                finally:
                    self._shards, self._by_name = saved
            return run_group

        merged: dict = {}
        for result in fork_map([group_thunk(g) for g in groups],
                               nworkers=nworkers):
            merged.update(result)
        return merged

    # -- merged views ------------------------------------------------------

    @property
    def now(self) -> float:
        """The trailing clock across shards (all equal at boundaries)."""
        if not self._shards:
            return 0.0
        return min(shard.env.now for shard in self._shards)

    @property
    def events_processed(self) -> int:
        """Total events dispatched across every shard."""
        return sum(shard.env.events_processed for shard in self._shards)

    def stats(self) -> dict:
        """Per-shard progress snapshot (events, clock, inbox depth)."""
        return {
            shard.name: dict(events=shard.env.events_processed,
                             now=shard.env.now,
                             inbox=len(shard.inbox))
            for shard in self._shards
        }

    def __repr__(self) -> str:
        return (f"<ShardedEngine {len(self._shards)} shards "
                f"lookahead={self.lookahead:g} windows={self.windows}>")
