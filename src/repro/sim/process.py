"""Generator-based processes for the discrete-event engine."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..errors import SimulationError
from .events import Event, Interrupt, URGENT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Environment

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running coroutine inside the simulation.

    A process wraps a generator that yields :class:`Event` instances.  The
    process is itself an event: it succeeds with the generator's return value
    when the generator finishes, or fails with the exception that escaped it.
    Other processes can therefore ``yield proc`` to join on it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None once done).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")

        # Kick the generator off via an initialisation event so that the
        # process body runs inside the event loop, not in the caller.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init, priority=URGENT)
        self._target = init

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if self.triggered:
            raise SimulationError(f"{self} has terminated and cannot be interrupted")
        if self._target is None:
            raise SimulationError(f"{self} is not yet waiting and cannot be interrupted")

        # Deliver the interrupt through a dedicated failed event so that the
        # ordinary resume path (below) converts it into a thrown exception.
        hit = Event(self.env)
        hit._ok = False
        hit._value = Interrupt(cause)
        hit._defused = True
        hit.callbacks.append(self._resume)
        self.env.schedule(hit, priority=URGENT)

        # Detach from the event we were waiting on: when that event later
        # fires it must not resume us a second time.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    # -- engine plumbing ---------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        gen = self._generator
        send = gen.send

        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = gen.throw(event._value)
            except StopIteration as stop:
                self._target = None
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self._target = None
                env._active_process = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                msg = (
                    f"process {self.name!r} yielded {next_event!r}; "
                    "processes may only yield Event instances"
                )
                self._target = None
                env._active_process = None
                self.fail(SimulationError(msg))
                return
            if next_event.env is not env:
                self._target = None
                env._active_process = None
                self.fail(SimulationError(
                    "process yielded an event from a different environment"))
                return

            if next_event.callbacks is not None:
                # Not yet processed: park until it fires.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                env._active_process = None
                return

            # Already processed (e.g. an event triggered earlier this step):
            # consume its outcome immediately and keep driving the generator.
            event = next_event

    def __repr__(self) -> str:
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
