"""A small, self-contained discrete-event simulation engine.

The engine drives every experiment in this reproduction: simulated time is
what turns byte counts and bandwidths into the downtimes and migration times
the paper reports.  The API follows the familiar SimPy shape (generator
processes yielding events) but is implemented from scratch here.
"""

from .engine import Environment
from .events import AllOf, AnyOf, Event, Interrupt, Timeout, NORMAL, URGENT
from .parallel import WorkerError, fork_available, fork_map, worker_count
from .process import Process
from .resources import Container, PriorityResource, Request, Resource, Store
from .sharded import Shard, ShardedEngine, WORKER_BACKENDS
from .timeline import Timeline

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "NORMAL",
    "PriorityResource",
    "Process",
    "Request",
    "Resource",
    "Shard",
    "ShardedEngine",
    "Store",
    "Timeline",
    "Timeout",
    "URGENT",
    "WORKER_BACKENDS",
    "WorkerError",
    "fork_available",
    "fork_map",
    "worker_count",
]
