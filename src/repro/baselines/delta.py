"""Forward-and-replay migration with a delta queue (Bradford et al., VEE'07).

The paper's closest competitor (§II-B, §IV-A-2): local storage is
pre-copied once while every guest write is intercepted and *forwarded* to
the destination as a delta ``(data, location, size)``.  The destination
queues deltas and replays them in order once the bulk copy finishes.
After the VM resumes there, **all its disk I/O is blocked until the queue
has drained** — the I/O block time the block-bitmap design eliminates.

Two pathologies the bitmap fixes are measured here:

* *redundancy* — a block written ``k`` times crosses the wire ``k`` times
  (the bitmap coalesces them into one post-copy transfer).  The paper's
  locality study (11 % / 25.2 % / 35.6 % rewrites) quantifies how often
  this happens;
* *write throttling* — when the write rate outruns the network, guest
  writes must be delayed so the delta stream can keep up.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

import numpy as np

from ..core.memcopy import MemoryPreCopier
from ..core.scheme import MigrationScheme, register_scheme
from ..core.transfer import BlockStreamer, PageStreamer
from ..errors import MigrationError, NetworkError
from ..net.channel import Channel
from ..net.messages import ControlMsg, CPUStateMsg, DeltaMsg
from ..storage.block import IORequest
from ..storage.vbd import VirtualBlockDevice


@register_scheme
class DeltaQueueMigration(MigrationScheme):
    """Whole-system migration with forward-and-replay storage sync."""

    name = "delta-queue"
    aliases = ("delta",)

    def __init__(self, *args,
                 throttle_watermark: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Delay guest writes while more than this many delta bytes are
        #: waiting to be sent (None = no throttling).
        self.throttle_watermark = throttle_watermark
        #: Deltas ride their own channel on the same physical link, so they
        #: contend with (but do not corrupt) the bulk pre-copy stream.
        self.delta_channel = Channel(self.env, self.fwd.link, name="delta")
        self.extra_channels.append(self.delta_channel)
        self._outbox: deque = deque()
        self._backlog_bytes = 0
        #: Deltas collected at the destination, awaiting replay.
        self._queue: deque = deque()
        self._forwarding = False
        self._seen = None
        self._src_driver = None
        self._procs: list = []
        self.redundant_blocks = 0
        self.delta_count = 0
        self.throttle_time = 0.0

    # ------------------------------------------------------------------

    def _execute(self) -> Generator:
        env = self.env
        domain = self.domain
        cfg = self.config
        report = self.report
        tracer = env.tracer

        from ..vm.memory import GuestMemory

        src_vbd = self.source.vbd_of(domain.domain_id)
        src_driver = self._src_driver = self.source.driver_of(
            domain.domain_id)
        dest_vbd = self.destination.prepare_vbd(
            src_vbd.nblocks, src_vbd.block_size, data=src_vbd.has_data)
        self._seen = np.zeros(src_vbd.nblocks, dtype=bool)

        # Start forwarding every write as a delta.
        self._forwarding = True
        src_driver.write_observers.append(self._observe_write)
        if self.throttle_watermark is not None:
            src_driver.interceptor = self._throttle
        sender = env.process(self._delta_sender(src_vbd),
                             name="delta:send")
        collector = env.process(self._delta_collector(),
                                name="delta:collect")
        self._procs = [sender, collector]

        # Single-pass bulk disk copy.
        self._notify_phase("precopy-disk")
        disk_span = tracer.begin("phase:precopy-disk", category="phase",
                                 blocks=int(src_vbd.nblocks))
        report.precopy_disk_started_at = env.now
        streamer = BlockStreamer(env, self.source.disk, src_vbd,
                                 self.destination.disk, dest_vbd,
                                 self.fwd, cfg)
        yield from streamer.stream(
            np.arange(src_vbd.nblocks, dtype=np.int64), category="disk")
        report.precopy_disk_ended_at = env.now
        tracer.end(disk_span)

        # Memory pre-copy (disk writes keep being forwarded meanwhile).
        self._notify_phase("precopy-mem")
        shadow = GuestMemory(domain.memory.npages, domain.memory.page_size,
                             clock=domain.memory.clock)
        pages = PageStreamer(env, domain.memory, shadow, self.fwd, cfg)
        mem_span = tracer.begin("phase:precopy-mem", category="phase")
        report.precopy_mem_started_at = env.now
        report.mem_rounds = yield from MemoryPreCopier(
            env, domain.memory, pages, cfg).run()
        report.precopy_mem_ended_at = env.now
        tracer.end(mem_span, rounds=len(report.mem_rounds))

        # Freeze-and-copy.
        self._committed = True
        self._notify_phase("freeze")
        domain.suspend()
        freeze_span = tracer.begin("phase:freeze", category="phase")
        report.suspended_at = env.now
        tracer.instant("suspend", category="freeze")
        if cfg.suspend_overhead > 0:
            yield env.timeout(cfg.suspend_overhead)
        yield from src_driver.quiesce()
        self._forwarding = False
        src_driver.write_observers.remove(self._observe_write)
        src_driver.interceptor = None

        final = domain.memory.stop_logging()
        dirty_pages = final.dirty_indices()
        report.final_dirty_pages = int(dirty_pages.size)
        yield from pages.stream(dirty_pages, category="memory", limited=False)
        yield from self.fwd.send(CPUStateMsg(domain.cpu.state_nbytes),
                                 category="cpu", limited=False)
        yield self.fwd.recv()
        if not shadow.identical_to(domain.memory):
            raise MigrationError("memory inconsistent at end of freeze")

        # Flush the remaining delta backlog, then close the stream.
        yield sender  # sender drains the outbox, then exits on a sentinel
        yield collector

        self.source.detach_domain(domain.domain_id)
        dst_driver = self.destination.attach_domain(domain, dest_vbd)
        domain.memory = shadow

        # Resume immediately, but block every disk request until all
        # forwarded deltas have been replayed (Bradford's design).
        replay_done = env.event()

        def blocker(request: IORequest) -> Generator:
            if not replay_done.processed:
                yield replay_done
            return False

        dst_driver.interceptor = blocker
        if cfg.resume_overhead > 0:
            yield env.timeout(cfg.resume_overhead)
        domain.resume()
        report.resumed_at = env.now
        tracer.instant("resume", category="freeze",
                       downtime=report.resumed_at - report.suspended_at)
        tracer.end(freeze_span,
                   final_dirty_pages=report.final_dirty_pages)

        # Replay the queue in arrival order.
        self._notify_phase("delta-replay")
        replay_span = tracer.begin("phase:delta-replay", category="phase",
                                   queued=len(self._queue))
        replay_started = env.now
        while self._queue:
            block, nblocks, stamps, data = self._queue.popleft()
            yield from self.destination.disk.write(
                nblocks * dest_vbd.block_size,
                priority=cfg.migration_disk_priority)
            idx = np.arange(block, block + nblocks, dtype=np.int64)
            dest_vbd.import_blocks(idx, stamps, data)
        if cfg.verify_consistency:
            src_vbd.assert_identical(dest_vbd)
            report.consistency_verified = True
        report.extra["io_block_time"] = env.now - replay_started
        report.extra["delta_count"] = self.delta_count
        report.extra["redundant_blocks"] = self.redundant_blocks
        report.extra["throttle_time"] = self.throttle_time
        replay_done.succeed()
        dst_driver.interceptor = None
        tracer.end(replay_span, delta_count=self.delta_count,
                   redundant_blocks=self.redundant_blocks)
        report.ended_at = env.now
        return report

    # -- failure -----------------------------------------------------------

    def _on_failure(self, exc: NetworkError) -> Optional[VirtualBlockDevice]:
        """Tear down the write-forwarding plumbing on a mid-flight death."""
        self._forwarding = False
        if self._src_driver is not None:
            if self._observe_write in self._src_driver.write_observers:
                self._src_driver.write_observers.remove(self._observe_write)
            if self._src_driver.interceptor is self._throttle:
                self._src_driver.interceptor = None
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("migration failed")
        return None

    # -- source side -------------------------------------------------------

    def _observe_write(self, request: IORequest) -> None:
        """Capture one applied write as a delta (synchronous, zero-cost)."""
        if not self._forwarding:
            return
        self._outbox.append((request.block, request.nblocks))
        self._backlog_bytes += request.nbytes
        overlap = int(self._seen[request.block:request.block
                                 + request.nblocks].sum())
        self.redundant_blocks += overlap
        self._seen[request.block:request.block + request.nblocks] = True
        self.delta_count += 1

    def _throttle(self, request: IORequest) -> Generator:
        """Source interceptor: delay writes while the backlog is deep."""
        if request.is_write() and self.throttle_watermark is not None:
            start = self.env.now
            while self._backlog_bytes > self.throttle_watermark:
                yield self.env.timeout(1e-3)
            self.throttle_time += self.env.now - start
        return False

    def _delta_sender(self, src_vbd) -> Generator:
        """Ship queued deltas over the delta channel until forwarding ends
        and the outbox is empty."""
        env = self.env
        from ..sim import Interrupt

        try:
            while self._forwarding or self._outbox:
                if not self._outbox:
                    yield env.timeout(1e-3)
                    continue
                block, nblocks = self._outbox.popleft()
                idx = np.arange(block, block + nblocks, dtype=np.int64)
                # Content is captured at send time; replay in order still
                # converges to the source's final state (a later rewrite
                # simply ships its newer content twice).
                stamps, data = src_vbd.export_blocks(idx)
                msg = DeltaMsg(block, nblocks, src_vbd.block_size, stamps,
                               data)
                yield from self.delta_channel.send(msg, category="delta")
                self._backlog_bytes -= nblocks * src_vbd.block_size
            yield from self.delta_channel.send(
                ControlMsg("deltas-done"), category="control", limited=False)
        except Interrupt:
            return

    def _delta_collector(self) -> Generator:
        """Destination side: queue arriving deltas for later replay."""
        from ..sim import Interrupt

        try:
            while True:
                msg = yield self.delta_channel.recv()
                if isinstance(msg, ControlMsg) and msg.tag == "deltas-done":
                    break
                if isinstance(msg, DeltaMsg):
                    self._queue.append((msg.block, msg.nblocks, msg.stamps,
                                        msg.data))
        except Interrupt:
            return
