"""Freeze-and-copy whole-system migration (Internet Suspend/Resume).

The paper's Related Work §II-B: suspend the VM, copy *all* of its state —
disk, memory, CPU — to the destination, then restart it there.  Exactly
one copy of the run-time state crosses the wire (no retransfers, no
protocol redundancy beyond headers), but the service is down for the
entire transfer: minutes to hours for tens of GB.  This is the downtime
baseline TPM's three phases exist to destroy.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..core.scheme import MigrationScheme, register_scheme
from ..core.transfer import BlockStreamer, PageStreamer
from ..errors import MigrationError
from ..net.messages import CPUStateMsg
from ..vm.memory import GuestMemory


@register_scheme
class FreezeAndCopyMigration(MigrationScheme):
    """Suspend → copy everything → resume."""

    name = "freeze-and-copy"
    aliases = ("freeze-copy",)

    def _execute(self) -> Generator:
        env = self.env
        domain = self.domain
        cfg = self.config
        report = self.report
        tracer = env.tracer

        src_vbd = self.source.vbd_of(domain.domain_id)
        dest_vbd = self.destination.prepare_vbd(
            src_vbd.nblocks, src_vbd.block_size, data=src_vbd.has_data)

        # Freeze first: everything below happens with the VM down.
        self._committed = True
        self._notify_phase("freeze")
        domain.suspend()
        freeze_span = tracer.begin("phase:freeze", category="phase")
        report.suspended_at = env.now
        tracer.instant("suspend", category="freeze")
        if cfg.suspend_overhead > 0:
            yield env.timeout(cfg.suspend_overhead)
        yield from self.source.driver_of(domain.domain_id).quiesce()

        disk_span = tracer.begin("phase:copy-disk", category="phase",
                                 blocks=int(src_vbd.nblocks))
        report.precopy_disk_started_at = env.now
        streamer = BlockStreamer(env, self.source.disk, src_vbd,
                                 self.destination.disk, dest_vbd,
                                 self.fwd, cfg)
        yield from streamer.stream(
            np.arange(src_vbd.nblocks, dtype=np.int64),
            category="disk", limited=False)
        report.precopy_disk_ended_at = env.now
        tracer.end(disk_span)

        shadow = GuestMemory(domain.memory.npages, domain.memory.page_size,
                             clock=domain.memory.clock)
        pages = PageStreamer(env, domain.memory, shadow, self.fwd, cfg)
        yield from pages.stream(
            np.arange(domain.memory.npages, dtype=np.int64),
            category="memory", limited=False)
        yield from self.fwd.send(CPUStateMsg(domain.cpu.state_nbytes),
                                 category="cpu", limited=False)
        yield self.fwd.recv()
        if not shadow.identical_to(domain.memory):
            raise MigrationError("memory inconsistent after freeze-copy")

        self.source.detach_domain(domain.domain_id)
        self.destination.attach_domain(domain, dest_vbd)
        domain.memory = shadow
        if cfg.resume_overhead > 0:
            yield env.timeout(cfg.resume_overhead)
        domain.resume()
        report.resumed_at = env.now
        tracer.instant("resume", category="freeze",
                       downtime=report.resumed_at - report.suspended_at)
        tracer.end(freeze_span)
        report.ended_at = env.now

        if cfg.verify_consistency:
            src_vbd.assert_identical(dest_vbd)
            report.consistency_verified = True
        return report
