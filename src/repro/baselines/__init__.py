"""Baseline migration schemes the paper compares TPM against (§II).

* :class:`SharedStorageMigration` — Xen live migration / VMotion: memory +
  CPU only, disk assumed shared.  TPM's downtime target.
* :class:`FreezeAndCopyMigration` — Internet Suspend/Resume: stop the VM,
  copy everything, restart.  Minimal data, catastrophic downtime.
* :class:`OnDemandMigration` — resume immediately, fetch disk blocks on
  first access.  Short downtime, *irremovable* source dependency and
  availability p².
* :class:`DeltaQueueMigration` — Bradford et al. forward-and-replay:
  pre-copy once, forward every write as a delta, replay at the
  destination while blocking guest I/O.  Redundant under write locality.

All four run on exactly the same testbed substrate as TPM, so their
reports are directly comparable (see ``benchmarks/bench_ablation_baselines.py``).
"""

from .delta import DeltaQueueMigration
from .freeze_copy import FreezeAndCopyMigration
from .ondemand import OnDemandMigration, availability
from .shared_storage import SharedStorageMigration

__all__ = [
    "DeltaQueueMigration",
    "FreezeAndCopyMigration",
    "OnDemandMigration",
    "SharedStorageMigration",
    "availability",
]
