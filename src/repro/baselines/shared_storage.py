"""Shared-storage live migration (Xen live migration / VMware VMotion).

The paper's Related Work §II-A: migrate memory and CPU state only,
assuming both machines mount the same disk.  This is the downtime target
TPM aims to match ("downtime ... close to shared-storage migration") —
and the scheme TPM generalises by adding local-storage migration.
"""

from __future__ import annotations

from typing import Generator

from ..core.memcopy import MemoryPreCopier
from ..core.scheme import MigrationScheme, register_scheme
from ..core.transfer import PageStreamer
from ..errors import MigrationError
from ..net.messages import CPUStateMsg
from ..vm.memory import GuestMemory


@register_scheme
class SharedStorageMigration(MigrationScheme):
    """Memory+CPU live migration over shared disk storage."""

    name = "shared-storage"
    aliases = ("shared",)

    def _execute(self) -> Generator:
        env = self.env
        domain = self.domain
        cfg = self.config
        report = self.report
        tracer = env.tracer

        # The disk is shared: the destination attaches the *same* VBD.
        shared_vbd = self.source.vbd_of(domain.domain_id)

        # Iterative memory pre-copy.
        self._notify_phase("precopy-mem")
        shadow = GuestMemory(domain.memory.npages, domain.memory.page_size,
                             clock=domain.memory.clock)
        streamer = PageStreamer(env, domain.memory, shadow, self.fwd, cfg)
        mem_span = tracer.begin("phase:precopy-mem", category="phase")
        report.precopy_mem_started_at = env.now
        report.mem_rounds = yield from MemoryPreCopier(
            env, domain.memory, streamer, cfg).run()
        report.precopy_mem_ended_at = env.now
        tracer.end(mem_span, rounds=len(report.mem_rounds))

        # Freeze: final dirty pages + CPU state.
        self._committed = True
        self._notify_phase("freeze")
        domain.suspend()
        freeze_span = tracer.begin("phase:freeze", category="phase")
        report.suspended_at = env.now
        tracer.instant("suspend", category="freeze")
        if cfg.suspend_overhead > 0:
            yield env.timeout(cfg.suspend_overhead)
        yield from self.source.driver_of(domain.domain_id).quiesce()
        final = domain.memory.stop_logging()
        pages = final.dirty_indices()
        report.final_dirty_pages = int(pages.size)
        yield from streamer.stream(pages, category="memory", limited=False)
        yield from self.fwd.send(CPUStateMsg(domain.cpu.state_nbytes),
                                 category="cpu", limited=False)
        yield self.fwd.recv()
        if not shadow.identical_to(domain.memory):
            raise MigrationError("memory inconsistent at end of freeze")

        self.source.detach_domain(domain.domain_id)
        self.destination.attach_domain(domain, shared_vbd)
        domain.memory = shadow
        if cfg.resume_overhead > 0:
            yield env.timeout(cfg.resume_overhead)
        domain.resume()
        report.resumed_at = env.now
        tracer.instant("resume", category="freeze",
                       downtime=report.resumed_at - report.suspended_at)
        tracer.end(freeze_span,
                   final_dirty_pages=report.final_dirty_pages)
        report.ended_at = env.now

        report.consistency_verified = True  # trivially: the disk is shared
        return report
