"""Shared-storage live migration (Xen live migration / VMware VMotion).

The paper's Related Work §II-A: migrate memory and CPU state only,
assuming both machines mount the same disk.  This is the downtime target
TPM aims to match ("downtime ... close to shared-storage migration") —
and the scheme TPM generalises by adding local-storage migration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..core.config import MigrationConfig
from ..core.memcopy import MemoryPreCopier
from ..core.metrics import MigrationReport
from ..core.transfer import PageStreamer
from ..errors import MigrationError
from ..net.channel import Channel
from ..net.messages import ControlMsg, CPUStateMsg
from ..vm.domain import Domain
from ..vm.host import Host
from ..vm.memory import GuestMemory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class SharedStorageMigration:
    """Memory+CPU live migration over shared disk storage."""

    def __init__(
        self,
        env: "Environment",
        domain: Domain,
        source: Host,
        destination: Host,
        fwd_channel: Channel,
        rev_channel: Channel,
        config: Optional[MigrationConfig] = None,
        workload_name: str = "unknown",
    ) -> None:
        self.env = env
        self.domain = domain
        self.source = source
        self.destination = destination
        self.fwd = fwd_channel
        self.rev = rev_channel
        self.config = config if config is not None else MigrationConfig()
        self.report = MigrationReport(scheme="shared-storage",
                                      workload=workload_name)

    def run(self) -> Generator:
        """Execute the migration; returns a :class:`MigrationReport`."""
        env = self.env
        domain = self.domain
        cfg = self.config
        report = self.report
        tracer = env.tracer
        report.started_at = env.now
        mig_span = tracer.begin(f"migration:{domain.name}",
                                category="migration", scheme=report.scheme,
                                workload=report.workload)

        if domain.host is not self.source:
            raise MigrationError(f"{domain} is not on the source host")

        # The disk is shared: the destination attaches the *same* VBD.
        shared_vbd = self.source.vbd_of(domain.domain_id)

        # Iterative memory pre-copy.
        shadow = GuestMemory(domain.memory.npages, domain.memory.page_size,
                             clock=domain.memory.clock)
        streamer = PageStreamer(env, domain.memory, shadow, self.fwd, cfg)
        mem_span = tracer.begin("phase:precopy-mem", category="phase")
        report.precopy_mem_started_at = env.now
        report.mem_rounds = yield from MemoryPreCopier(
            env, domain.memory, streamer, cfg).run()
        report.precopy_mem_ended_at = env.now
        tracer.end(mem_span, rounds=len(report.mem_rounds))

        # Freeze: final dirty pages + CPU state.
        domain.suspend()
        freeze_span = tracer.begin("phase:freeze", category="phase")
        report.suspended_at = env.now
        tracer.instant("suspend", category="freeze")
        if cfg.suspend_overhead > 0:
            yield env.timeout(cfg.suspend_overhead)
        yield from self.source.driver_of(domain.domain_id).quiesce()
        final = domain.memory.stop_logging()
        pages = final.dirty_indices()
        report.final_dirty_pages = int(pages.size)
        yield from streamer.stream(pages, category="memory", limited=False)
        yield from self.fwd.send(CPUStateMsg(domain.cpu.state_nbytes),
                                 category="cpu", limited=False)
        yield self.fwd.recv()
        if not shadow.identical_to(domain.memory):
            raise MigrationError("memory inconsistent at end of freeze")

        self.source.detach_domain(domain.domain_id)
        self.destination.attach_domain(domain, shared_vbd)
        domain.memory = shadow
        if cfg.resume_overhead > 0:
            yield env.timeout(cfg.resume_overhead)
        domain.resume()
        report.resumed_at = env.now
        tracer.instant("resume", category="freeze",
                       downtime=report.resumed_at - report.suspended_at)
        tracer.end(freeze_span,
                   final_dirty_pages=report.final_dirty_pages)
        report.ended_at = env.now
        tracer.end(mig_span,
                   total_migration_time=report.total_migration_time,
                   downtime=report.downtime)

        report.bytes_by_category = dict(self.fwd.bytes_by_category)
        report.consistency_verified = True  # trivially: the disk is shared
        return report
