"""On-demand fetching migration (paper §II-B, after Kozuch et al.).

Memory and CPU state migrate live; the VM resumes on the destination
immediately and disk blocks are fetched from the source only when first
accessed.  Downtime matches shared-storage migration, but the source can
never be shut down: any block the guest has not yet touched still lives
only there — the *irremovable residual dependency* the paper criticises.
With machine availability ``p``, the migrated system's availability is
``p**2`` (both machines must be up), worse than not migrating at all.

TPM's post-copy borrows this scheme's *pull* path but adds the *push*
stream precisely so the dependency ends in finite time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..bitmap import FlatBitmap
from ..core.memcopy import MemoryPreCopier
from ..core.scheme import MigrationScheme, register_scheme
from ..core.transfer import PageStreamer
from ..errors import MigrationError
from ..net.messages import BlockDataMsg, CPUStateMsg, PullRequestMsg
from ..storage.block import IORequest
from ..vm.memory import GuestMemory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Event


def availability(p: float, machines: int = 2) -> float:
    """System availability when ``machines`` must all be up (paper §II-B)."""
    if not 0 <= p <= 1:
        raise ValueError(f"availability must be in [0, 1], got {p}")
    return p ** machines


@register_scheme
class OnDemandMigration(MigrationScheme):
    """Live memory migration with delayed, access-driven storage fetching."""

    name = "on-demand"
    aliases = ("ondemand",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Blocks already valid on the destination.
        self.present: Optional[FlatBitmap] = None
        #: Blocks fetched so far / reads that stalled on a fetch.
        self.fetched_blocks = 0
        self.stalled_reads = 0
        self.stall_time = 0.0
        self._pending: dict[int, list["Event"]] = {}
        self._requested: set[int] = set()
        self._procs: list = []
        self._dst_driver = None
        self._src_vbd = None
        self._dest_vbd = None

    # -- residual dependency -------------------------------------------------

    @property
    def residual_blocks(self) -> int:
        """Blocks still living only on the source machine."""
        if self.present is None:
            return 0
        return self.present.nbits - self.present.count()

    @property
    def dependency_alive(self) -> bool:
        """True while the source machine cannot be shut down."""
        return self.residual_blocks > 0

    def stop(self) -> None:
        """Tear down the fetch service (end of the experiment)."""
        if self._dst_driver is not None:
            self._dst_driver.interceptor = None
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("stop")

    # -- migration -------------------------------------------------------

    def _end_attrs(self) -> dict:
        attrs = super()._end_attrs()
        attrs["residual_blocks"] = self.residual_blocks
        return attrs

    def _execute(self) -> Generator:
        """Execute the live phase; returns a :class:`MigrationReport`.

        On return the VM runs on the destination but the fetch service
        keeps running in the background for as long as blocks are absent.
        """
        env = self.env
        domain = self.domain
        cfg = self.config
        report = self.report
        tracer = env.tracer

        self._src_vbd = self.source.vbd_of(domain.domain_id)
        self._dest_vbd = self.destination.prepare_vbd(
            self._src_vbd.nblocks, self._src_vbd.block_size,
            data=self._src_vbd.has_data)

        # Live memory migration (identical to the shared-storage scheme).
        self._notify_phase("precopy-mem")
        shadow = GuestMemory(domain.memory.npages, domain.memory.page_size,
                             clock=domain.memory.clock)
        streamer = PageStreamer(env, domain.memory, shadow, self.fwd, cfg)
        mem_span = tracer.begin("phase:precopy-mem", category="phase")
        report.precopy_mem_started_at = env.now
        report.mem_rounds = yield from MemoryPreCopier(
            env, domain.memory, streamer, cfg).run()
        report.precopy_mem_ended_at = env.now
        tracer.end(mem_span, rounds=len(report.mem_rounds))

        self._committed = True
        self._notify_phase("freeze")
        domain.suspend()
        freeze_span = tracer.begin("phase:freeze", category="phase")
        report.suspended_at = env.now
        tracer.instant("suspend", category="freeze")
        if cfg.suspend_overhead > 0:
            yield env.timeout(cfg.suspend_overhead)
        yield from self.source.driver_of(domain.domain_id).quiesce()
        final = domain.memory.stop_logging()
        pages = final.dirty_indices()
        report.final_dirty_pages = int(pages.size)
        yield from streamer.stream(pages, category="memory", limited=False)
        yield from self.fwd.send(CPUStateMsg(domain.cpu.state_nbytes),
                                 category="cpu", limited=False)
        yield self.fwd.recv()
        if not shadow.identical_to(domain.memory):
            raise MigrationError("memory inconsistent at end of freeze")

        self.source.detach_domain(domain.domain_id)
        self._dst_driver = self.destination.attach_domain(domain,
                                                          self._dest_vbd)
        domain.memory = shadow

        # Storage: nothing was transferred; everything is fetched on access.
        self.present = FlatBitmap(self._src_vbd.nblocks)
        self._dst_driver.interceptor = self._intercept
        self._procs = [
            env.process(self._fetch_server(), name="ondemand:server"),
            env.process(self._receiver(), name="ondemand:recv"),
        ]

        if cfg.resume_overhead > 0:
            yield env.timeout(cfg.resume_overhead)
        domain.resume()
        report.resumed_at = env.now
        tracer.instant("resume", category="freeze",
                       downtime=report.resumed_at - report.suspended_at)
        tracer.end(freeze_span,
                   final_dirty_pages=report.final_dirty_pages)
        self._notify_phase("fetch")
        report.ended_at = env.now  # the *live* migration is over...
        report.extra["residual_blocks_at_resume"] = self.residual_blocks
        return report

    # -- destination: on-demand interception ---------------------------------

    def _intercept(self, request: IORequest) -> Generator:
        present = self.present
        if request.is_write():
            # Whole-block writes need no fetch: the new content supersedes.
            for block in request.blocks():
                present.set(block)
            return False

        absent = [b for b in request.blocks() if not present.test(b)]
        if not absent:
            return False
        self.stalled_reads += 1
        self.env.metrics.counter("ondemand.stalled_reads").inc()
        stall_start = self.env.now
        waiters = [self._wait_for(b) for b in absent]
        for block in absent:
            if block not in self._requested:
                self._requested.add(block)
                yield from self.rev.send(PullRequestMsg(block),
                                         category="pull", limited=False)
        yield self.env.all_of(waiters)
        self.stall_time += self.env.now - stall_start
        yield from self._dst_driver.serve_direct(request)
        return True

    def _wait_for(self, block: int) -> "Event":
        event = self.env.event()
        self._pending.setdefault(block, []).append(event)
        return event

    # -- background fetch service -----------------------------------------

    def _fetch_server(self) -> Generator:
        """Source side: serve pull requests forever (the dependency)."""
        from ..sim import Interrupt

        try:
            while True:
                msg = yield self.rev.recv()
                if not isinstance(msg, PullRequestMsg):
                    continue
                import numpy as np

                blocks = np.array([msg.block], dtype=np.int64)
                yield from self.source.disk.read(
                    int(blocks.size) * self._src_vbd.block_size,
                    priority=self.config.migration_disk_priority)
                stamps, data = self._src_vbd.export_blocks(blocks)
                yield from self.fwd.send(
                    BlockDataMsg(blocks, stamps, data,
                                 self._src_vbd.block_size, pulled=True),
                    category="disk", limited=False)
        except Interrupt:
            return

    def _receiver(self) -> Generator:
        """Destination side: install fetched blocks and wake waiters."""
        from ..sim import Interrupt

        try:
            while True:
                msg = yield self.fwd.recv()
                if not isinstance(msg, BlockDataMsg):
                    continue
                yield from self.destination.disk.write(
                    msg.nblocks * self._dest_vbd.block_size,
                    priority=self.config.migration_disk_priority)
                self._dest_vbd.import_blocks(msg.indices, msg.stamps, msg.data)
                self.fetched_blocks += msg.nblocks
                self.env.metrics.counter("ondemand.fetched_blocks").inc(
                    msg.nblocks)
                for block in msg.indices.tolist():
                    self.present.set(int(block))
                    for event in self._pending.pop(block, []):
                        event.succeed()
        except Interrupt:
            return
