"""Size and time units used throughout the library.

All sizes are in **bytes** (plain ``int``) and all simulated times are in
**seconds** (plain ``float``) unless a name explicitly says otherwise.
These constants exist so that call sites read like the paper:
``40 * GiB``, ``4 * KiB`` blocks, ``Gbps`` links.
"""

from __future__ import annotations

#: Binary size units (bytes).
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Decimal size units (bytes) — used for network line rates.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

#: Network rates expressed as bytes/second.
Mbps = 1000 * 1000 / 8.0
Gbps = 1000 * Mbps

#: The paper's canonical geometry.
SECTOR_SIZE = 512          #: physical sector size (bytes)
BLOCK_SIZE = 4 * KiB       #: default bit granularity: one 4 KiB block per bit
PAGE_SIZE = 4 * KiB        #: guest memory page size (bytes)

#: Time units (seconds).
MS = 1e-3
US = 1e-6


def fmt_bytes(n: float) -> str:
    """Render a byte count with a human-readable binary suffix."""
    for unit, name in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if abs(n) >= unit:
            return f"{n / unit:.1f} {name}"
    return f"{n:.0f} B"


def fmt_time(t: float) -> str:
    """Render a duration in the most natural unit (s / ms / µs)."""
    if abs(t) >= 1.0:
        return f"{t:.1f} s"
    if abs(t) >= MS:
        return f"{t / MS:.1f} ms"
    return f"{t / US:.1f} µs"
