"""Migration metrics (paper §III-A) and the per-run report.

The five metrics the paper defines:

* **downtime** — VM paused on the source → resumed on the destination;
* **disruption time** — clients observe degraded responsiveness;
* **total migration time** — start of migration → both machines fully
  synchronized (end of post-copy for TPM);
* **amount of migrated data** — all bytes on the wire, protocol included;
* **performance overhead** — service throughput during vs without migration.

Disruption and overhead are computed post-hoc from throughput timelines
(:mod:`repro.analysis.throughput`); the rest live on the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..units import MiB, fmt_bytes, fmt_time


@dataclass
class IterationStats:
    """One disk pre-copy iteration (or one memory pre-copy round)."""

    index: int
    #: Blocks (or pages) transferred during the iteration.
    units_sent: int
    bytes_sent: int
    started_at: float
    ended_at: float
    #: Size of the dirty set accumulated *during* this iteration (the input
    #: of the next one).
    dirty_at_end: int

    @property
    def duration(self) -> float:
        return self.ended_at - self.started_at

    @property
    def transfer_rate(self) -> float:
        """Units (blocks or pages) per second achieved by this iteration."""
        return self.units_sent / self.duration if self.duration > 0 else float("inf")

    @property
    def dirty_rate(self) -> float:
        """Units dirtied per second during this iteration."""
        return self.dirty_at_end / self.duration if self.duration > 0 else 0.0


@dataclass
class PostCopyStats:
    """Outcome of the push-and-pull synchronization phase."""

    started_at: float = 0.0
    ended_at: float = 0.0
    #: Blocks the source pushed proactively.
    pushed_blocks: int = 0
    #: Blocks transferred in response to destination pull requests.
    pulled_blocks: int = 0
    #: Received blocks dropped because a guest write had already superseded
    #: them (paper's receive-algorithm lines 2-3).
    dropped_blocks: int = 0
    #: Guest read requests that had to wait for a pull.
    stalled_reads: int = 0
    #: Total guest-visible time spent waiting for pulled blocks.
    stall_time: float = 0.0

    @property
    def duration(self) -> float:
        return self.ended_at - self.started_at


@dataclass
class MigrationReport:
    """Everything measured about one migration run."""

    scheme: str = "tpm"
    workload: str = "unknown"
    incremental: bool = False

    # -- phase boundaries ----------------------------------------------------
    started_at: float = 0.0
    precopy_disk_started_at: float = 0.0
    precopy_disk_ended_at: float = 0.0
    precopy_mem_started_at: float = 0.0
    precopy_mem_ended_at: float = 0.0
    suspended_at: float = 0.0
    resumed_at: float = 0.0
    ended_at: float = 0.0

    # -- per-phase detail --------------------------------------------------
    disk_iterations: list[IterationStats] = field(default_factory=list)
    mem_rounds: list[IterationStats] = field(default_factory=list)
    postcopy: PostCopyStats = field(default_factory=PostCopyStats)

    # -- freeze-and-copy detail --------------------------------------------
    #: Dirty blocks marked in the bitmap shipped at freeze (to be fixed by
    #: post-copy).
    remaining_dirty_blocks: int = 0
    #: Wire size of the shipped block-bitmap.
    bitmap_nbytes: int = 0
    #: Dirty pages shipped during the freeze.
    final_dirty_pages: int = 0

    # -- wire accounting -----------------------------------------------------
    #: Per-category wire bytes (disk / memory / bitmap / cpu / pull / control).
    bytes_by_category: dict[str, int] = field(default_factory=dict)

    #: Filled by the consistency check when enabled.
    consistency_verified: bool = False

    # -- retry accounting ---------------------------------------------------
    #: Attempts this migration took end to end (1 = no failure).  Set by
    #: :class:`~repro.core.manager.MigrationRetrier` on the final report.
    attempts: int = 1
    #: Reports of the failed attempts, in order (each stamped with
    #: ``extra["failed_phase"]``, wire bytes, phase timings).
    failed_attempts: list["MigrationReport"] = field(default_factory=list)
    #: Simulated time spent sleeping between attempts.
    backoff_time: float = 0.0

    #: Scheme-specific extras (e.g. the delta baseline's I/O block time,
    #: the on-demand baseline's residual-dependency stats).
    extra: dict = field(default_factory=dict)

    # -- derived metrics ---------------------------------------------------

    @property
    def total_migration_time(self) -> float:
        """Paper metric: start → full synchronization."""
        return self.ended_at - self.started_at

    @property
    def downtime(self) -> float:
        """Paper metric: suspend on source → resume on destination."""
        return self.resumed_at - self.suspended_at

    @property
    def migrated_bytes(self) -> int:
        """Paper metric: amount of migrated data (protocol included)."""
        return sum(self.bytes_by_category.values())

    @property
    def migrated_mb(self) -> float:
        return self.migrated_bytes / MiB

    @property
    def storage_migration_time(self) -> float:
        """Disk phases only: disk pre-copy + (freeze) + post-copy.

        Used for Table II-style accounting, where IM's reported times are
        far below what a full 512 MiB memory transfer would need (see
        EXPERIMENTS.md for the interpretation).
        """
        disk_pre = self.precopy_disk_ended_at - self.precopy_disk_started_at
        freeze = self.resumed_at - self.suspended_at
        return disk_pre + freeze + self.postcopy.duration

    @property
    def storage_bytes(self) -> int:
        """Wire bytes attributable to disk state (data + bitmap + pulls)."""
        return sum(self.bytes_by_category.get(k, 0)
                   for k in ("disk", "bitmap", "pull"))

    @property
    def retransferred_blocks(self) -> int:
        """Blocks sent by pre-copy iterations after the first (redundancy)."""
        return sum(it.units_sent for it in self.disk_iterations[1:])

    @property
    def precopy_duration(self) -> float:
        return self.precopy_mem_ended_at - self.precopy_disk_started_at

    @property
    def migrated_bytes_all_attempts(self) -> int:
        """Wire bytes across the failed attempts plus the final one."""
        return self.migrated_bytes + sum(r.migrated_bytes
                                         for r in self.failed_attempts)

    @property
    def retries(self) -> int:
        """Failed attempts before the one that (finally) succeeded."""
        return self.attempts - 1

    @property
    def attempt_durations(self) -> list[float]:
        """Wall-clock duration of every attempt, failed ones first."""
        return ([r.ended_at - r.started_at for r in self.failed_attempts]
                + [self.ended_at - self.started_at])

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"{self.scheme.upper()} migration of {self.workload!r}"
            + (" (incremental)" if self.incremental else ""),
            f"  total migration time : {fmt_time(self.total_migration_time)}",
            f"  downtime             : {fmt_time(self.downtime)}",
            f"  migrated data        : {fmt_bytes(self.migrated_bytes)}",
            f"  disk iterations      : {len(self.disk_iterations)}"
            f" (retransferred {self.retransferred_blocks} blocks)",
            f"  remaining dirty      : {self.remaining_dirty_blocks} blocks"
            f" -> post-copy {fmt_time(self.postcopy.duration)}"
            f" ({self.postcopy.pushed_blocks} pushed,"
            f" {self.postcopy.pulled_blocks} pulled,"
            f" {self.postcopy.dropped_blocks} dropped)",
        ]
        if self.attempts > 1:
            lines.append(
                f"  attempts             : {self.attempts}"
                f" ({self.retries} failed,"
                f" backoff {fmt_time(self.backoff_time)})")
        return "\n".join(lines)
