"""Unified migration-scheme framework and scheme registry.

Every migration scheme — the paper's Three-Phase Migration and the four
§II baselines it is compared against — shares the same scaffolding: a
(fwd, rev) channel pair, a :class:`~repro.core.metrics.MigrationReport`
lifecycle, phase notifications (consumed by the fault injector), a
per-category byte ledger, tracer integration, and a failure path that
stamps the report and raises :class:`~repro.errors.MigrationFailed`.
:class:`MigrationScheme` extracts that scaffolding so each scheme only
implements :meth:`MigrationScheme._execute` with its own protocol, and so
the comparative experiments (§VI) run every scheme through the *same*
harness — history recording, retry, fault injection, and tracing come for
free rather than being hand-rolled (or silently missing) per scheme.

Schemes register themselves with :func:`register_scheme`;
:meth:`Migrator.migrate(..., scheme="delta-queue")
<repro.core.manager.Migrator.migrate>` resolves the name through
:func:`get_scheme` and runs any of them through one code path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..errors import MigrationError, MigrationFailed, NetworkError
from ..net.channel import Channel
from ..storage.vbd import VirtualBlockDevice
from ..vm.domain import Domain
from ..vm.host import Host
from .config import MigrationConfig
from .metrics import MigrationReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment

#: Scheme name -> scheme class.  Aliases map to the same class.
SCHEME_REGISTRY: dict[str, type] = {}


def register_scheme(cls: type) -> type:
    """Class decorator: add ``cls`` to the scheme registry by its name
    (and any :attr:`MigrationScheme.aliases`)."""
    if not getattr(cls, "name", None):
        raise MigrationError(f"{cls.__name__} has no scheme name")
    for key in (cls.name, *getattr(cls, "aliases", ())):
        existing = SCHEME_REGISTRY.get(key)
        if existing is not None and existing is not cls:
            raise MigrationError(
                f"scheme name {key!r} already registered to "
                f"{existing.__name__}")
        SCHEME_REGISTRY[key] = cls
    return cls


def _load_builtin_schemes() -> None:
    """Import the modules that register the built-in schemes."""
    from .. import baselines  # noqa: F401  (registers the four baselines)
    from . import tpm  # noqa: F401  (registers "tpm")


def get_scheme(name: str) -> type:
    """Resolve a registered scheme class by name or alias."""
    _load_builtin_schemes()
    try:
        return SCHEME_REGISTRY[name]
    except KeyError:
        raise MigrationError(
            f"unknown migration scheme {name!r}; registered: "
            f"{', '.join(scheme_names())}") from None


def scheme_names(aliases: bool = False) -> tuple[str, ...]:
    """Canonical names of all registered schemes (sorted).

    ``aliases=True`` includes every alias as well.
    """
    _load_builtin_schemes()
    if aliases:
        return tuple(sorted(SCHEME_REGISTRY))
    return tuple(sorted({cls.name for cls in SCHEME_REGISTRY.values()}))


class MigrationScheme:
    """Base class for one whole-system migration, source → destination.

    Subclasses implement :meth:`_execute` (a simulation generator) and may
    override the hook methods (:meth:`_span_attrs`, :meth:`_end_attrs`,
    :meth:`_on_failure`).  The template :meth:`run`:

    1. stamps ``report.started_at`` and opens the ``migration:<name>``
       tracer span,
    2. validates that the domain runs on the source host,
    3. snapshots the byte ledger across :attr:`channels`,
    4. runs :meth:`_execute`, converting any
       :class:`~repro.errors.NetworkError` into a stamped
       :class:`~repro.errors.MigrationFailed` (the guest, if still on the
       source, is resumed — it "keeps running untouched" per §V),
    5. fills ``report.bytes_by_category`` from the ledger delta and closes
       the migration span.
    """

    #: Registry key; also stamped on every report this scheme produces.
    name: str = ""
    #: Extra registry keys resolving to this scheme.
    aliases: tuple[str, ...] = ()
    #: True when the scheme honours :meth:`request_abort` before commit.
    supports_abort: bool = False
    #: True when the scheme participates in the Migrator's Incremental
    #: Migration bookkeeping (stale copies, divergence bitmaps, partial
    #: copies from failed attempts).
    uses_im: bool = False

    def __init__(
        self,
        env: "Environment",
        domain: Domain,
        source: Host,
        destination: Host,
        fwd_channel: Channel,
        rev_channel: Channel,
        config: Optional[MigrationConfig] = None,
        workload_name: str = "unknown",
    ) -> None:
        self.env = env
        self.domain = domain
        self.source = source
        self.destination = destination
        self.fwd = fwd_channel
        self.rev = rev_channel
        self.config = config if config is not None else MigrationConfig()
        self.workload_name = workload_name
        #: Additional channels the scheme opened (e.g. the delta baseline's
        #: delta stream); included in the byte ledger.
        self.extra_channels: list[Channel] = []
        #: Callables invoked as ``observer(phase_name)`` when the migration
        #: enters a phase — used by the fault injector for phase-triggered
        #: faults.  Empty by default; notifying costs nothing then.
        self.phase_observers: list = []
        self._phase = "init"
        self._abort_requested = False
        self._committed = False
        self._mig_span = None
        self._ledger_before: dict[str, int] = {}
        self.report = MigrationReport(scheme=type(self).name,
                                      workload=workload_name)

    # -- phases / abort ----------------------------------------------------

    def _notify_phase(self, name: str) -> None:
        self._phase = name
        for observer in self.phase_observers:
            observer(name)

    def request_abort(self) -> bool:
        """Cancel the migration at the next safe point.

        Only schemes with :attr:`supports_abort` honour this, and only
        before their commit point (once the VM is about to move the
        migration can no longer be cancelled).  Returns True if the
        request can still take effect.
        """
        if not self.supports_abort or self._committed:
            return False
        self._abort_requested = True
        return True

    @property
    def aborted(self) -> bool:
        return bool(self.report.extra.get("aborted"))

    # -- byte ledger -------------------------------------------------------

    @property
    def channels(self) -> list[Channel]:
        """Every channel whose bytes this migration is accountable for."""
        return [self.fwd, self.rev, *self.extra_channels]

    def _ledger_snapshot(self) -> dict[str, int]:
        snap: dict[str, int] = {}
        for chan in self.channels:
            for key, val in chan.bytes_by_category.items():
                snap[key] = snap.get(key, 0) + val
        return snap

    def _ledger_delta(self, before: dict[str, int]) -> dict[str, int]:
        after = self._ledger_snapshot()
        return {k: after[k] - before.get(k, 0) for k in after
                if after[k] - before.get(k, 0) > 0}

    # -- template ----------------------------------------------------------

    def run(self) -> Generator:
        """Execute the migration; returns a :class:`MigrationReport`.

        ``yield from`` inside a process, or wrap with ``env.process``.
        """
        env = self.env
        report = self.report
        tracer = env.tracer
        report.started_at = env.now
        self._mig_span = tracer.begin(
            f"migration:{self.domain.name}", category="migration",
            scheme=report.scheme, workload=self.workload_name,
            **self._span_attrs())
        if self.domain.host is not self.source:
            tracer.end(self._mig_span, error="domain not on source")
            raise MigrationError(
                f"{self.domain} is on "
                f"{self.domain.host and self.domain.host.name}, "
                f"not on source {self.source.name}")
        self._ledger_before = self._ledger_snapshot()
        try:
            yield from self._execute()
        except NetworkError as exc:
            raise self._fail(exc) from exc
        if not report.bytes_by_category:
            report.bytes_by_category = self._ledger_delta(self._ledger_before)
        tracer.end(self._mig_span, **self._end_attrs())
        return report

    def _execute(self) -> Generator:
        """The scheme's protocol; implemented by subclasses."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type parity

    # -- hooks -------------------------------------------------------------

    def _span_attrs(self) -> dict:
        """Extra args for the opening ``migration:*`` span."""
        return {}

    def _end_attrs(self) -> dict:
        """Args stamped on the ``migration:*`` span when it closes."""
        return dict(total_migration_time=self.report.total_migration_time,
                    downtime=self.report.downtime)

    def _on_failure(self, exc: NetworkError) -> Optional[VirtualBlockDevice]:
        """Scheme-specific failure bookkeeping (tear down interceptors,
        absorb unconfirmed transfers, ...).  Returns the destination VBD to
        carry on the :class:`~repro.errors.MigrationFailed` when a partial
        copy is worth keeping for an incremental retry, else None."""
        return None

    def _failure_attrs(self) -> dict:
        """Extra args for the ``migration:failed`` instant."""
        return {}

    def _fail(self, exc: NetworkError) -> MigrationFailed:
        """Stamp the report for a mid-flight death and build the exception.

        The guest — when it never left the source — resumes there untouched
        (the paper's §V failure story: "the user can resume the virtual
        machine on the source machine and retry later").
        """
        report = self.report
        keep_vbd = self._on_failure(exc)
        if self.domain.memory.logging:
            self.domain.memory.stop_logging()
        if (self.domain.host is self.source and not self.domain.running
                and not self.source.crashed):
            # A crashed source cannot resume anything — the host's own
            # restart brings the domain back.
            self.domain.resume()
        report.extra["failed"] = True
        report.extra["failure"] = str(exc)
        report.extra["failed_phase"] = self._phase
        report.ended_at = self.env.now
        report.bytes_by_category = self._ledger_delta(self._ledger_before)
        self.env.tracer.instant("migration:failed", category="migration",
                                phase=self._phase, failure=str(exc),
                                **self._failure_attrs())
        self.env.tracer.close_open(failed=True)
        return MigrationFailed(
            f"migration of {self.domain} failed during {self._phase}: {exc}",
            report=report, dest_vbd=keep_vbd)
