"""The paper's contribution: Three-Phase Migration and Incremental Migration.

Typical use::

    from repro.sim import Environment
    from repro.vm import make_testbed, Domain, GuestMemory
    from repro.core import Migrator, MigrationConfig

    env = Environment()
    src, dst, clock = make_testbed(env)
    dom = Domain(env, GuestMemory(131072, clock=clock))
    src.attach_domain(dom, src.prepare_vbd(nblocks))

    migrator = Migrator(env)
    migrator.connect(src, dst)
    proc = migrator.migrate_process(dom, dst)
    report = env.run(until=proc)
    print(report.summary())
"""

from .config import MigrationConfig
from .converge import AutoConvergeController
from .manager import MigrationRetrier, Migrator
from .memcopy import MemoryPreCopier
from .metrics import IterationStats, MigrationReport, PostCopyStats
from .postcopy import PostCopySynchronizer
from .precopy import DiskPreCopier, TRACKING_NAME
from .scheme import (MigrationScheme, get_scheme, register_scheme,
                     scheme_names)
from .tpm import IM_TRACKING_NAME, ThreePhaseMigration
from .transfer import BlockStreamer, PageStreamer, StreamStats

__all__ = [
    "AutoConvergeController",
    "BlockStreamer",
    "DiskPreCopier",
    "IM_TRACKING_NAME",
    "IterationStats",
    "MemoryPreCopier",
    "MigrationConfig",
    "MigrationReport",
    "MigrationRetrier",
    "MigrationScheme",
    "Migrator",
    "PageStreamer",
    "get_scheme",
    "register_scheme",
    "scheme_names",
    "PostCopyStats",
    "PostCopySynchronizer",
    "StreamStats",
    "ThreePhaseMigration",
    "TRACKING_NAME",
]
