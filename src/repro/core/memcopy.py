"""Iterative memory pre-copy (Xen-style, paper §II-A / Fig. 2).

The paper performs memory pre-copy *after* disk pre-copy ("simultaneous or
premature memory pre-copy is useless" — the long disk copy would dirty a
large amount of memory again).  Rounds work like Clark et al.'s scheme:
round 0 transfers every page, each later round the pages dirtied during
the previous round, until the dirty set is small, the round cap is hit, or
the rounds stop converging.  The residual dirty pages are shipped while
the VM is frozen.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..vm.memory import GuestMemory
from .config import MigrationConfig
from .metrics import IterationStats
from .transfer import PageStreamer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class MemoryPreCopier:
    """Runs the iterative memory pre-copy for one migration.

    After :meth:`run` returns, dirty logging is **left enabled** on the
    source memory; the final dirty set is harvested during freeze-and-copy
    via :meth:`GuestMemory.stop_logging`.
    """

    def __init__(
        self,
        env: "Environment",
        memory: GuestMemory,
        streamer: PageStreamer,
        config: MigrationConfig,
    ) -> None:
        self.env = env
        self.memory = memory
        self.streamer = streamer
        self.config = config

    def run(self) -> Generator:
        """Execute the rounds; returns ``list[IterationStats]``."""
        import numpy as np

        cfg = self.config
        self.memory.start_logging()

        indices = np.arange(self.memory.npages, dtype=np.int64)
        rounds: list[IterationStats] = []
        round_no = 1
        while True:
            started = self.env.now
            rd_span = self.env.tracer.begin(f"round:{round_no}",
                                            category="iteration",
                                            pages=int(indices.size))
            stats = yield from self.streamer.stream(indices, category="memory",
                                                    limited=True)
            ended = self.env.now
            dirty_now = self.memory.dirty_count()
            record = IterationStats(
                index=round_no,
                units_sent=stats.units_sent,
                bytes_sent=stats.bytes_sent,
                started_at=started,
                ended_at=ended,
                dirty_at_end=dirty_now,
            )
            rounds.append(record)
            self.env.tracer.end(rd_span, units_sent=stats.units_sent,
                                bytes_sent=stats.bytes_sent,
                                dirty_at_end=dirty_now)
            self.env.metrics.gauge("memcopy.dirty_pages").set(dirty_now)

            if not self._should_continue(record, round_no):
                break

            indices = self.memory.swap_dirty().dirty_indices()
            round_no += 1

        return rounds

    def _should_continue(self, record: IterationStats, round_no: int) -> bool:
        cfg = self.config
        if round_no >= cfg.max_mem_rounds:
            return False
        if record.dirty_at_end <= cfg.mem_dirty_threshold_pages:
            return False
        # Not converging: this round dirtied at least as much as it sent.
        if record.dirty_at_end >= record.units_sent and round_no > 1:
            return False
        return True
