"""Post-copy push-and-pull synchronization (paper §IV-A-3 and Fig. 3).

After the VM resumes on the destination, both machines hold the same
block-bitmap of still-inconsistent blocks (BM_1 on the source, BM_2 on the
destination).  The source *pushes* marked blocks continuously so the phase
finishes in finite time; the destination *pulls* a block only when the
guest reads it while still dirty.  A guest write to a dirty block
overwrites it wholesale, so the transfer is cancelled (BM_2 bit cleared)
and a later pushed copy is dropped on arrival.

The two numbered algorithms of §IV-A-3 map here as follows:

* *request interception* → :meth:`PostCopySynchronizer.intercept`,
  installed as the destination driver's interceptor;
* *block reception*      → :meth:`PostCopySynchronizer._receiver`.

One deliberate deviation, documented in DESIGN.md: when a guest write
clears BM_2 for a block that a queued read is waiting on, we wake that
read (it can be served from local disk, which now holds newer data).  The
paper's pseudocode would leave it pending forever, because the later
pushed copy is dropped without scanning the pending list — a liveness gap
for overlapping read/write to the same block.

Observability (see docs/OBSERVABILITY.md): with a real tracer installed
this module emits ``pull:request`` instants and maintains the
``postcopy.*`` counters (pushed/pulled/dropped/cancelled blocks, stalled
reads, pull requests), the ``postcopy.dirty_blocks`` gauge, and the
``postcopy.stall_seconds`` histogram of guest read stalls — the raw
material for the push-vs-pull ablation's timelines.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Generator

import numpy as np

from ..bitmap.base import BlockBitmap
from ..errors import MigrationError
from ..net.channel import Channel
from ..net.messages import BlockDataMsg, ControlMsg, PullRequestMsg
from ..storage.blkback import BackendDriver
from ..storage.block import IORequest
from ..storage.disk import PhysicalDisk
from ..storage.vbd import VirtualBlockDevice
from .config import MigrationConfig
from .metrics import PostCopyStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment, Event

#: Wire priority for pull replies: they jump ahead of queued push batches
#: ("sends the pulled block preferentially").
PULL_REPLY_PRIORITY = 0
PUSH_PRIORITY = 5


class PostCopySynchronizer:
    """Drives one migration's post-copy phase on both machines."""

    def __init__(
        self,
        env: "Environment",
        src_disk: PhysicalDisk,
        src_vbd: VirtualBlockDevice,
        dst_disk: PhysicalDisk,
        dst_vbd: VirtualBlockDevice,
        dst_driver: BackendDriver,
        fwd_channel: Channel,
        rev_channel: Channel,
        source_bitmap: BlockBitmap,
        transferred_bitmap: BlockBitmap,
        config: MigrationConfig,
    ) -> None:
        self.env = env
        self.src_disk = src_disk
        self.src_vbd = src_vbd
        self.dst_disk = dst_disk
        self.dst_vbd = dst_vbd
        self.dst_driver = dst_driver
        self.fwd = fwd_channel
        self.rev = rev_channel
        #: BM_1 — the source's copy; bits cleared as blocks are sent.
        self.source_bitmap = source_bitmap
        #: BM_2 — the destination's copy; bits cleared as blocks are
        #: received or overwritten by guest writes.
        self.transferred_bitmap = transferred_bitmap
        self.config = config
        self.stats = PostCopyStats()

        #: Still-dirty blocks on the destination, maintained incrementally
        #: for the ``postcopy.dirty_blocks`` gauge (counting the bitmap per
        #: message would re-scan it).
        self._remaining = transferred_bitmap.count()
        #: Pending list P: waiters per block number.
        self._pending: dict[int, list["Event"]] = {}
        #: Blocks for which a pull request is already outstanding.
        self._requested: set[int] = set()
        #: Pull requests received by the source, FIFO.
        self._pull_queue: deque[int] = deque()
        #: Set once the destination's bitmap first empties.
        self._synchronized_at: float | None = None
        #: Fires when the destination bitmap empties (pull-only termination).
        self._sync_event = env.event()
        #: Pusher parking spot while idle in pull-only mode.
        self._pull_wakeup: "Event | None" = None

    # ------------------------------------------------------------------
    # orchestration
    # ------------------------------------------------------------------

    def run(self) -> Generator:
        """Run the phase to completion; returns :class:`PostCopyStats`.

        Installs the destination interceptor for the duration; on return,
        destination storage is fully synchronized and the source may be
        shut down (finite dependency, §IV-A-4).
        """
        env = self.env
        self.stats.started_at = env.now
        self.dst_driver.interceptor = self.intercept
        env.metrics.gauge("postcopy.dirty_blocks").set(self._remaining)
        self._note_if_synchronized()  # the dirty set may already be empty
        procs = [
            env.process(self._receiver(), name="postcopy:recv"),
            env.process(self._pusher(), name="postcopy:push"),
            env.process(self._pull_listener(), name="postcopy:pulls"),
        ]
        if not self.config.postcopy_push:
            # Pure pull mode never converges on its own accord; a watcher
            # ends the phase the moment the destination bitmap empties.
            procs.append(env.process(self._pull_only_watcher(procs[:2]),
                                     name="postcopy:watch"))
        yield env.all_of(procs)
        self.dst_driver.interceptor = None
        leftover = self.transferred_bitmap.count()
        if leftover:
            raise MigrationError(
                f"post-copy ended with {leftover} unsynchronized blocks")
        self.stats.ended_at = (self._synchronized_at
                               if self._synchronized_at is not None
                               else env.now)
        return self.stats

    # ------------------------------------------------------------------
    # destination: request interception (paper's first algorithm)
    # ------------------------------------------------------------------

    def intercept(self, request: IORequest) -> Generator:
        """Route one guest request per §IV-A-3.

        Returns True when fully handled here; False to fall through to the
        driver's direct path (which performs the disk I/O and marks the IM
        bitmap BM_3 via normal tracking — the pseudocode's line 7).
        """
        bitmap = self.transferred_bitmap
        if request.is_write():
            # Lines 5-10: a whole-block write supersedes the stale copy.
            if request.nblocks == 1:
                block = request.block
                if bitmap.test(block):
                    bitmap.clear(block)
                    self._wake(block)  # documented deviation
                    cancelled = 1
                else:
                    cancelled = 0
            else:
                blocks = np.arange(request.block,
                                   request.block + request.nblocks,
                                   dtype=np.int64)
                hit = blocks[bitmap.test_many(blocks)]
                cancelled = int(hit.size)
                if cancelled:
                    bitmap.clear_many(hit)
                    for block in hit.tolist():
                        self._wake(block)  # documented deviation
            if cancelled:
                self._remaining -= cancelled
                metrics = self.env.metrics
                metrics.counter("postcopy.cancelled_blocks").inc(cancelled)
                metrics.gauge("postcopy.dirty_blocks").set(self._remaining)
            self._note_if_synchronized()
            return False

        # Lines 11-13: reads pull only still-dirty blocks.
        if request.nblocks == 1:
            dirty = [request.block] if bitmap.test(request.block) else []
        else:
            blocks = np.arange(request.block,
                               request.block + request.nblocks,
                               dtype=np.int64)
            dirty = blocks[bitmap.test_many(blocks)].tolist()
        if not dirty:
            return False

        self.stats.stalled_reads += 1
        self.env.metrics.counter("postcopy.stalled_reads").inc()
        stall_start = self.env.now
        waiters = [self._wait_for(b) for b in dirty]
        for block in dirty:
            if block not in self._requested:
                self._requested.add(block)
                self.env.metrics.counter("postcopy.pull_requests").inc()
                self.env.tracer.instant("pull:request", category="postcopy",
                                        block=int(block))
                yield from self.rev.send(
                    PullRequestMsg(block, request.request_id),
                    category="pull", limited=False)
        yield self.env.all_of(waiters)
        stall = self.env.now - stall_start
        self.stats.stall_time += stall
        self.env.metrics.histogram("postcopy.stall_seconds").observe(stall)
        # Lines 14-15: dequeue and submit to the physical driver.
        yield from self.dst_driver.serve_direct(request)
        return True

    def _wait_for(self, block: int) -> "Event":
        event = self.env.event()
        self._pending.setdefault(block, []).append(event)
        return event

    def _wake(self, block: int) -> None:
        for event in self._pending.pop(block, []):
            event.succeed()

    def _note_if_synchronized(self) -> None:
        # ``_remaining`` mirrors ``transferred_bitmap.count()`` exactly (the
        # interceptor and receiver decrement it on every clear), so the
        # per-message/per-write synchronization check never re-counts.
        if self._synchronized_at is None and self._remaining == 0:
            self._synchronized_at = self.env.now
            if not self._sync_event.triggered:
                self._sync_event.succeed()

    # ------------------------------------------------------------------
    # destination: block reception (paper's second algorithm)
    # ------------------------------------------------------------------

    def _receiver(self) -> Generator:
        from ..sim import Interrupt

        bitmap = self.transferred_bitmap
        block_size = self.dst_vbd.block_size
        while True:
            try:
                msg = yield self.fwd.recv()
            except Interrupt:
                return  # pull-only watcher ended the phase
            if isinstance(msg, ControlMsg):
                if msg.tag == "push-done":
                    break
                raise MigrationError(
                    f"unexpected control message {msg.tag!r} in post-copy")
            # Lines 2-3: drop blocks a local write has superseded.
            indices = np.asarray(msg.indices, dtype=np.int64)
            keep = bitmap.test_many(indices)
            dropped = int(indices.size - np.count_nonzero(keep))
            self.stats.dropped_blocks += dropped
            if dropped:
                self.env.metrics.counter("postcopy.dropped_blocks").inc(
                    dropped)
            live = indices[keep]
            if live.size:
                # Lines 4-5: update local disk, clear the bitmap.
                yield from self.dst_disk.write(
                    int(live.size) * block_size,
                    priority=self.config.migration_disk_priority)
                stamps = np.asarray(msg.stamps)[keep]
                data = msg.data[keep] if msg.data is not None else None
                self.dst_vbd.import_blocks(live, stamps, data)
                bitmap.clear_many(live)
                metrics = self.env.metrics
                self._remaining -= int(live.size)
                metrics.gauge("postcopy.dirty_blocks").set(self._remaining)
                if msg.pulled:
                    self.stats.pulled_blocks += int(live.size)
                    metrics.counter("postcopy.pulled_blocks").inc(
                        int(live.size))
                else:
                    self.stats.pushed_blocks += int(live.size)
                    metrics.counter("postcopy.pushed_blocks").inc(
                        int(live.size))
                # Lines 6-11: release pending requests waiting on them.
                for block in live.tolist():
                    self._wake(block)
                self._note_if_synchronized()
        self._note_if_synchronized()
        if self.transferred_bitmap.any():
            raise MigrationError(
                "source finished pushing but destination bitmap is not empty")
        # Tell the source it may stop listening for pulls: its finite
        # dependency ends here.
        yield from self.rev.send(ControlMsg("postcopy-complete"),
                                 category="control", limited=False)

    # ------------------------------------------------------------------
    # source: pusher and pull listener
    # ------------------------------------------------------------------

    def _pusher(self) -> Generator:
        """Push all BM_1 blocks, serving queued pulls preferentially.

        With ``postcopy_push`` disabled the process only answers pulls,
        parking between requests; the watcher interrupts it once the
        destination reports synchronization.
        """
        from ..sim import Interrupt

        cfg = self.config
        bitmap = self.source_bitmap
        order = bitmap.dirty_indices()
        position = 0
        try:
            while True:
                if self._pull_queue:
                    block = self._pull_queue.popleft()
                    if bitmap.test(block):
                        yield from self._send_blocks(
                            np.array([block], dtype=np.int64),
                            pulled=True, priority=PULL_REPLY_PRIORITY)
                    continue
                if not cfg.postcopy_push:
                    # Nothing to answer: park until the next pull arrives.
                    self._pull_wakeup = self.env.event()
                    yield self._pull_wakeup
                    self._pull_wakeup = None
                    continue
                # Consume candidates in windows: exactly as many blocks come
                # off ``order`` as the scalar test-one-at-a-time loop would
                # take, but each window is tested in one vector call.
                batch: "np.ndarray | None" = None
                need = cfg.push_chunk_blocks
                while position < order.size and need > 0:
                    window = order[position:position + need]
                    position += window.size
                    live = window[bitmap.test_many(window)]
                    batch = (live if batch is None
                             else np.concatenate((batch, live)))
                    need = cfg.push_chunk_blocks - batch.size
                if batch is not None and batch.size:
                    yield from self._send_blocks(batch, pulled=False,
                                                 priority=PUSH_PRIORITY)
                elif position >= order.size:
                    break
        except Interrupt:
            return  # pull-only watcher ended the phase
        yield from self.fwd.send(ControlMsg("push-done"),
                                 category="control", limited=False)

    def _send_blocks(self, blocks: np.ndarray, pulled: bool,
                     priority: int) -> Generator:
        """Read blocks from the (frozen) source disk and send them."""
        self.source_bitmap.clear_many(blocks)
        block_size = self.src_vbd.block_size
        yield from self.src_disk.read(
            int(blocks.size) * block_size,
            priority=self.config.migration_disk_priority)
        stamps, data = self.src_vbd.export_blocks(blocks)
        msg = BlockDataMsg(blocks, stamps, data, block_size, pulled=pulled)
        # Post-copy is never throttled: the paper's rate limit applies to
        # pre-copy only, and a stalled guest read is waiting on this.
        yield from self.fwd.send(msg, category="disk", limited=False,
                                 priority=priority)

    def _pull_listener(self) -> Generator:
        """Source-side: queue incoming pull requests for the pusher."""
        while True:
            msg = yield self.rev.recv()
            if isinstance(msg, ControlMsg) and msg.tag == "postcopy-complete":
                break
            if isinstance(msg, PullRequestMsg):
                self._pull_queue.append(msg.block)
                if (self._pull_wakeup is not None
                        and not self._pull_wakeup.triggered):
                    self._pull_wakeup.succeed()
            else:
                raise MigrationError(
                    f"unexpected message {msg!r} on the pull channel")

    def _pull_only_watcher(self, workers) -> Generator:
        """Pull-only mode: end the phase once the destination bitmap empties.

        Interrupts the receiver and pusher (which would otherwise wait
        forever — exactly the unbounded dependency the paper's push
        avoids) and releases the source's pull listener.
        """
        yield self._sync_event
        for proc in workers:
            if proc.is_alive:
                proc.interrupt("postcopy-synchronized")
        yield from self.rev.send(ControlMsg("postcopy-complete"),
                                 category="control", limited=False)
