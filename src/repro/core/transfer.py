"""Pipelined bulk-state transfer (disk blocks and memory pages).

Pre-copy moves gigabytes; doing it one block-event at a time would drown
the event loop.  Instead a chunk (default 1 MiB of blocks) is the unit of
work, and three overlapped stages — source disk read, network send,
destination disk write — run as coupled processes with a small buffer
between them, so the achieved rate is set by the slowest stage (as in a
real implementation) rather than the sum of all three.

Pipeline shape and invariants (see docs/TRANSFER.md for the full layer
guide):

* **Stages couple through a bounded Store.**  The reader may run at most
  ``config.pipeline_depth`` chunks ahead of the sender; the writer is
  driven by channel delivery, which the channel keeps in send order.
  Backpressure therefore propagates stage to stage: a slow network stalls
  the reader once the buffer fills, a slow destination disk stalls
  deliveries in the mailbox.
* **Completion = destination durability.**  ``stream()`` returns only
  when every chunk has been *written* at the destination (a completion
  barrier over all stage processes), never merely when the source
  finished sending.  The pre-copy loop's dirty-rate arithmetic depends on
  this.
* **Confirmation tracking for the failure path.**  The streamer records
  which chunks the destination confirmed; after a mid-batch network
  failure :meth:`BlockStreamer.unconfirmed_indices` names exactly the
  blocks that may never have landed, and the retry re-marks them dirty.
* **Adaptive stack hooks** (both optional, both default-off): a
  :class:`~repro.net.delta.DeltaCache` re-encodes re-sent chunks as
  deltas in the send stage, and a :class:`~repro.net.multifd.MultiFD`
  stripes chunks round-robin across N sub-channels with per-lane
  pipelining.  With neither installed the code path is byte-for-byte the
  single-channel pipeline above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from ..net.channel import Channel
from ..net.delta import DeltaCache
from ..net.messages import BlockDataMsg, MemoryPagesMsg
from ..net.multifd import MultiFD
from ..sim import Store
from ..storage.disk import PhysicalDisk
from ..storage.vbd import VirtualBlockDevice
from ..vm.memory import GuestMemory
from .config import MigrationConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


@dataclass
class StreamStats:
    """Outcome of one streamed batch."""

    units_sent: int = 0
    bytes_sent: int = 0


def split_chunks(indices: np.ndarray, chunk_size: int) -> list[np.ndarray]:
    """Split ``indices`` into ceil(n/chunk_size) nearly-equal chunks.

    Boundaries match ``np.array_split`` exactly (the first ``n % nchunks``
    chunks get one extra element), but the chunks are plain views of the
    one input array — no temporary division arrays per call.  An empty
    input yields no chunks.
    """
    n = indices.size
    if n == 0:
        return []
    nchunks = (n + chunk_size - 1) // chunk_size
    base, extra = divmod(n, nchunks)
    chunks = []
    pos = 0
    for i in range(nchunks):
        step = base + 1 if i < extra else base
        chunks.append(indices[pos:pos + step])
        pos += step
    return chunks


class BlockStreamer:
    """Moves disk blocks source→destination with stage pipelining."""

    def __init__(
        self,
        env: "Environment",
        src_disk: PhysicalDisk,
        src_vbd: VirtualBlockDevice,
        dst_disk: PhysicalDisk,
        dst_vbd: VirtualBlockDevice,
        channel: Channel,
        config: MigrationConfig,
        multifd: Optional[MultiFD] = None,
        delta: Optional[DeltaCache] = None,
    ) -> None:
        self.env = env
        self.src_disk = src_disk
        self.src_vbd = src_vbd
        self.dst_disk = dst_disk
        self.dst_vbd = dst_vbd
        self.channel = channel
        self.config = config
        #: Optional striped sub-channels; None = single-channel pipeline.
        self.multifd = multifd
        #: Optional XBZRLE-style cache; None = full-content sends.
        self.delta = delta
        #: Chunks of the in-flight (or last) batch, in send order, plus how
        #: many the destination has confirmed written — so a failed batch
        #: can report exactly which blocks never landed.
        self._chunks: list[np.ndarray] = []
        self._confirmed = 0
        #: Striped batches confirm out of send order; this per-chunk flag
        #: list replaces the prefix counter then (None on the single path).
        self._confirmed_flags: Optional[list[bool]] = None
        #: Called with each chunk's indices right after the destination
        #: confirms the write — the durable-bitmap hook that lets the
        #: source journal "these blocks are no longer pending".
        self.chunk_written = None

    def unconfirmed_indices(self) -> np.ndarray:
        """Blocks of the current batch not yet written at the destination.

        Single channel: the write stage is FIFO, so the confirmed chunks
        are exactly the prefix of the send order and everything after is
        conservatively treated as lost (an in-flight delivery may still
        land, but within one link latency — negligible against any retry
        backoff).  Multifd: each stripe is FIFO but stripes interleave,
        so confirmation is tracked per chunk instead.
        """
        if self._confirmed_flags is not None:
            pending = [chunk for chunk, done
                       in zip(self._chunks, self._confirmed_flags)
                       if not done]
        else:
            pending = self._chunks[self._confirmed:]
        if not pending:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pending)

    def stream(self, indices: np.ndarray, category: str = "disk",
               limited: bool = True) -> Generator:
        """Transfer the given blocks; returns :class:`StreamStats`.

        ``yield from`` inside a process.  Completion means the destination
        has *written* every block, not merely that the source finished
        sending.
        """
        indices = np.asarray(indices, dtype=np.int64)
        self._chunks = []
        self._confirmed = 0
        self._confirmed_flags = None
        if indices.size == 0:
            return StreamStats()

        env = self.env
        cfg = self.config
        block_size = self.src_vbd.block_size
        prio = cfg.migration_disk_priority
        chunks = split_chunks(indices, cfg.chunk_blocks)
        self._chunks = chunks
        if self.multifd is not None and len(chunks) > 1:
            stats = yield from self._stream_striped(
                chunks, category, limited, block_size, prio)
            return stats
        ready: Store = Store(env, capacity=cfg.pipeline_depth)

        def reader(env):
            for chunk in chunks:
                yield from self.src_disk.read(chunk.size * block_size,
                                              priority=prio)
                stamps, data = self.src_vbd.export_blocks(chunk)
                yield ready.put(BlockDataMsg(chunk, stamps, data, block_size))

        def sender(env):
            sent_bytes = 0
            for _ in range(len(chunks)):
                msg = yield ready.get()
                if self.delta is not None:
                    yield from self.delta.encode(env, msg)
                span = env.tracer.begin("chunk", category="transfer",
                                        blocks=msg.nblocks)
                yield from self.channel.send(msg, category=category,
                                             limited=limited)
                env.tracer.end(span, bytes=msg.wire_nbytes)
                sent_bytes += msg.wire_nbytes
            return sent_bytes

        def writer(env):
            for _ in range(len(chunks)):
                msg = yield self.channel.recv()
                yield from self.dst_disk.write(msg.nblocks * block_size,
                                               priority=prio)
                self.dst_vbd.import_blocks(msg.indices, msg.stamps, msg.data)
                self._confirmed += 1
                if self.chunk_written is not None:
                    self.chunk_written(msg.indices)

        read_proc = env.process(reader(env), name="stream:read")
        send_proc = env.process(sender(env), name="stream:send")
        write_proc = env.process(writer(env), name="stream:write")
        result = yield env.all_of([read_proc, send_proc, write_proc])
        return StreamStats(units_sent=int(indices.size),
                           bytes_sent=int(result[send_proc]))

    def _stream_striped(self, chunks, category, limited, block_size,
                        prio) -> Generator:
        """Multifd path: one shared reader fans chunks out round-robin to
        per-lane sender/writer pairs; a completion barrier joins them.

        The source disk is still one spindle, so a single reader stage
        feeds all lanes in chunk order (lane ``k % N`` gets chunk ``k``)
        — head-of-line blocking on a full lane buffer is deliberate, it
        is what one read stream into N sockets does.  Each lane has its
        own ``pipeline_depth`` read-ahead buffer and preserves in-order
        delivery internally; cross-lane ordering is unconstrained, so
        chunk completion is tracked by position (``lane + i * N``) in
        :attr:`_confirmed_flags` rather than a FIFO prefix count.
        """
        env = self.env
        cfg = self.config
        mfd = self.multifd
        n = mfd.nchannels
        lanes = mfd.lanes(chunks)
        flags = self._confirmed_flags = [False] * len(chunks)
        buffers = [Store(env, capacity=cfg.pipeline_depth) for _ in range(n)]

        def reader(env):
            for k, chunk in enumerate(chunks):
                yield from self.src_disk.read(chunk.size * block_size,
                                              priority=prio)
                stamps, data = self.src_vbd.export_blocks(chunk)
                yield buffers[k % n].put(
                    BlockDataMsg(chunk, stamps, data, block_size))

        def sender(env, lane):
            chan = mfd.channels[lane]
            sent_bytes = 0
            for _ in range(len(lanes[lane])):
                msg = yield buffers[lane].get()
                if self.delta is not None:
                    yield from self.delta.encode(env, msg)
                span = env.tracer.begin("chunk", category="transfer",
                                        blocks=msg.nblocks, lane=lane)
                yield from chan.send(msg, category=category, limited=limited)
                env.tracer.end(span, bytes=msg.wire_nbytes)
                sent_bytes += msg.wire_nbytes
            return sent_bytes

        def writer(env, lane):
            chan = mfd.channels[lane]
            for i in range(len(lanes[lane])):
                msg = yield chan.recv()
                yield from self.dst_disk.write(msg.nblocks * block_size,
                                               priority=prio)
                self.dst_vbd.import_blocks(msg.indices, msg.stamps, msg.data)
                flags[lane + i * n] = True
                if self.chunk_written is not None:
                    self.chunk_written(msg.indices)

        read_proc = env.process(reader(env), name="stream:read")
        send_procs = [env.process(sender(env, lane),
                                  name=f"stream:send:fd{lane}")
                      for lane in range(n)]
        write_procs = [env.process(writer(env, lane),
                                   name=f"stream:write:fd{lane}")
                       for lane in range(n)]
        # Completion barrier: the batch commits only once every lane's
        # writer has drained — no chunk may still be in flight.
        result = yield env.all_of([read_proc, *send_procs, *write_procs])
        sent_bytes = sum(int(result[proc]) for proc in send_procs)
        total = sum(int(chunk.size) for chunk in chunks)
        return StreamStats(units_sent=total, bytes_sent=sent_bytes)


class PageStreamer:
    """Moves memory pages source→destination.

    Pages come straight from RAM, so there is no disk stage — the transfer
    is network-bound (plus a small per-page mapping cost folded into the
    message size).  Supports the same optional delta cache and multifd
    striping as :class:`BlockStreamer`; the memory pre-copy rounds are
    where XBZRLE pays off most (hot pages are re-sent every round).
    """

    def __init__(
        self,
        env: "Environment",
        src_mem: GuestMemory,
        dst_mem: Optional[GuestMemory],
        channel: Channel,
        config: MigrationConfig,
        multifd: Optional[MultiFD] = None,
        delta: Optional[DeltaCache] = None,
    ) -> None:
        self.env = env
        self.src_mem = src_mem
        self.dst_mem = dst_mem
        self.channel = channel
        self.config = config
        self.multifd = multifd
        self.delta = delta

    def stream(self, indices: np.ndarray, category: str = "memory",
               limited: bool = True) -> Generator:
        """Transfer the given pages; returns :class:`StreamStats`."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return StreamStats()

        env = self.env
        cfg = self.config
        chunks = split_chunks(indices, cfg.mem_chunk_pages)
        if self.multifd is not None and len(chunks) > 1:
            stats = yield from self._stream_striped(chunks, category, limited)
            return stats

        def receiver(env):
            for _ in range(len(chunks)):
                msg = yield self.channel.recv()
                if self.dst_mem is not None:
                    self.dst_mem.import_pages(msg.indices, msg.stamps)

        def sender(env):
            sent_bytes = 0
            for chunk in chunks:
                stamps = self.src_mem.export_pages(chunk)
                msg = MemoryPagesMsg(chunk, stamps, self.src_mem.page_size)
                if self.delta is not None:
                    yield from self.delta.encode(env, msg)
                span = env.tracer.begin("chunk", category="transfer",
                                        pages=msg.npages)
                yield from self.channel.send(msg, category=category,
                                             limited=limited)
                env.tracer.end(span, bytes=msg.wire_nbytes)
                sent_bytes += msg.wire_nbytes
            return sent_bytes

        recv_proc = env.process(receiver(env), name="pages:recv")
        send_proc = env.process(sender(env), name="pages:send")
        result = yield env.all_of([send_proc, recv_proc])
        return StreamStats(units_sent=int(indices.size),
                           bytes_sent=int(result[send_proc]))

    def _stream_striped(self, chunks, category, limited) -> Generator:
        """Multifd path: per-lane sender/receiver pairs over the stripes.

        Pages are exported at send time (no disk read stage), so each
        lane's sender walks its own stripe independently; the completion
        barrier still joins every lane before the round commits.
        """
        env = self.env
        mfd = self.multifd
        lanes = mfd.lanes(chunks)

        def receiver(env, lane):
            chan = mfd.channels[lane]
            for _ in range(len(lanes[lane])):
                msg = yield chan.recv()
                if self.dst_mem is not None:
                    self.dst_mem.import_pages(msg.indices, msg.stamps)

        def sender(env, lane):
            chan = mfd.channels[lane]
            sent_bytes = 0
            for chunk in lanes[lane]:
                stamps = self.src_mem.export_pages(chunk)
                msg = MemoryPagesMsg(chunk, stamps, self.src_mem.page_size)
                if self.delta is not None:
                    yield from self.delta.encode(env, msg)
                span = env.tracer.begin("chunk", category="transfer",
                                        pages=msg.npages, lane=lane)
                yield from chan.send(msg, category=category, limited=limited)
                env.tracer.end(span, bytes=msg.wire_nbytes)
                sent_bytes += msg.wire_nbytes
            return sent_bytes

        send_procs = [env.process(sender(env, lane),
                                  name=f"pages:send:fd{lane}")
                      for lane in range(mfd.nchannels)]
        recv_procs = [env.process(receiver(env, lane),
                                  name=f"pages:recv:fd{lane}")
                      for lane in range(mfd.nchannels)]
        result = yield env.all_of([*send_procs, *recv_procs])
        sent_bytes = sum(int(result[proc]) for proc in send_procs)
        total = sum(int(chunk.size) for chunk in chunks)
        return StreamStats(units_sent=total, bytes_sent=sent_bytes)
