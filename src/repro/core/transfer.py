"""Pipelined bulk-state transfer (disk blocks and memory pages).

Pre-copy moves gigabytes; doing it one block-event at a time would drown
the event loop.  Instead a chunk (default 4 MiB) is the unit of work, and
three overlapped stages — source disk read, network send, destination disk
write — run as coupled processes with a small buffer between them, so the
achieved rate is set by the slowest stage (as in a real implementation)
rather than the sum of all three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from ..net.channel import Channel
from ..net.messages import BlockDataMsg, MemoryPagesMsg
from ..sim import Store
from ..storage.disk import PhysicalDisk
from ..storage.vbd import VirtualBlockDevice
from ..vm.memory import GuestMemory
from .config import MigrationConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


@dataclass
class StreamStats:
    """Outcome of one streamed batch."""

    units_sent: int = 0
    bytes_sent: int = 0


def split_chunks(indices: np.ndarray, chunk_size: int) -> list[np.ndarray]:
    """Split ``indices`` into ceil(n/chunk_size) nearly-equal chunks.

    Boundaries match ``np.array_split`` exactly (the first ``n % nchunks``
    chunks get one extra element), but the chunks are plain views of the
    one input array — no temporary division arrays per call.
    """
    n = indices.size
    nchunks = (n + chunk_size - 1) // chunk_size
    base, extra = divmod(n, nchunks)
    chunks = []
    pos = 0
    for i in range(nchunks):
        step = base + 1 if i < extra else base
        chunks.append(indices[pos:pos + step])
        pos += step
    return chunks


class BlockStreamer:
    """Moves disk blocks source→destination with stage pipelining."""

    def __init__(
        self,
        env: "Environment",
        src_disk: PhysicalDisk,
        src_vbd: VirtualBlockDevice,
        dst_disk: PhysicalDisk,
        dst_vbd: VirtualBlockDevice,
        channel: Channel,
        config: MigrationConfig,
    ) -> None:
        self.env = env
        self.src_disk = src_disk
        self.src_vbd = src_vbd
        self.dst_disk = dst_disk
        self.dst_vbd = dst_vbd
        self.channel = channel
        self.config = config
        #: Chunks of the in-flight (or last) batch, in send order, plus how
        #: many the destination has confirmed written — so a failed batch
        #: can report exactly which blocks never landed.
        self._chunks: list[np.ndarray] = []
        self._confirmed = 0
        #: Called with each chunk's indices right after the destination
        #: confirms the write — the durable-bitmap hook that lets the
        #: source journal "these blocks are no longer pending".
        self.chunk_written = None

    def unconfirmed_indices(self) -> np.ndarray:
        """Blocks of the current batch not yet written at the destination.

        The write stage is FIFO, so the confirmed chunks are exactly the
        prefix of the send order; everything after is conservatively
        treated as lost (an in-flight delivery may still land, but within
        one link latency — negligible against any retry backoff).
        """
        pending = self._chunks[self._confirmed:]
        if not pending:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pending)

    def stream(self, indices: np.ndarray, category: str = "disk",
               limited: bool = True) -> Generator:
        """Transfer the given blocks; returns :class:`StreamStats`.

        ``yield from`` inside a process.  Completion means the destination
        has *written* every block, not merely that the source finished
        sending.
        """
        indices = np.asarray(indices, dtype=np.int64)
        self._chunks = []
        self._confirmed = 0
        if indices.size == 0:
            return StreamStats()

        env = self.env
        cfg = self.config
        block_size = self.src_vbd.block_size
        prio = cfg.migration_disk_priority
        chunks = split_chunks(indices, cfg.chunk_blocks)
        self._chunks = chunks
        ready: Store = Store(env, capacity=cfg.pipeline_depth)

        def reader(env):
            for chunk in chunks:
                yield from self.src_disk.read(chunk.size * block_size,
                                              priority=prio)
                stamps, data = self.src_vbd.export_blocks(chunk)
                yield ready.put(BlockDataMsg(chunk, stamps, data, block_size))

        def sender(env):
            sent_bytes = 0
            for _ in range(len(chunks)):
                msg = yield ready.get()
                span = env.tracer.begin("chunk", category="transfer",
                                        blocks=msg.nblocks)
                yield from self.channel.send(msg, category=category,
                                             limited=limited)
                env.tracer.end(span, bytes=msg.wire_nbytes)
                sent_bytes += msg.wire_nbytes
            return sent_bytes

        def writer(env):
            for _ in range(len(chunks)):
                msg = yield self.channel.recv()
                yield from self.dst_disk.write(msg.nblocks * block_size,
                                               priority=prio)
                self.dst_vbd.import_blocks(msg.indices, msg.stamps, msg.data)
                self._confirmed += 1
                if self.chunk_written is not None:
                    self.chunk_written(msg.indices)

        read_proc = env.process(reader(env), name="stream:read")
        send_proc = env.process(sender(env), name="stream:send")
        write_proc = env.process(writer(env), name="stream:write")
        result = yield env.all_of([read_proc, send_proc, write_proc])
        return StreamStats(units_sent=int(indices.size),
                           bytes_sent=int(result[send_proc]))


class PageStreamer:
    """Moves memory pages source→destination.

    Pages come straight from RAM, so there is no disk stage — the transfer
    is network-bound (plus a small per-page mapping cost folded into the
    message size).
    """

    def __init__(
        self,
        env: "Environment",
        src_mem: GuestMemory,
        dst_mem: Optional[GuestMemory],
        channel: Channel,
        config: MigrationConfig,
    ) -> None:
        self.env = env
        self.src_mem = src_mem
        self.dst_mem = dst_mem
        self.channel = channel
        self.config = config

    def stream(self, indices: np.ndarray, category: str = "memory",
               limited: bool = True) -> Generator:
        """Transfer the given pages; returns :class:`StreamStats`."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return StreamStats()

        env = self.env
        cfg = self.config
        chunks = split_chunks(indices, cfg.mem_chunk_pages)

        def receiver(env):
            for _ in range(len(chunks)):
                msg = yield self.channel.recv()
                if self.dst_mem is not None:
                    self.dst_mem.import_pages(msg.indices, msg.stamps)

        def sender(env):
            sent_bytes = 0
            for chunk in chunks:
                stamps = self.src_mem.export_pages(chunk)
                msg = MemoryPagesMsg(chunk, stamps, self.src_mem.page_size)
                span = env.tracer.begin("chunk", category="transfer",
                                        pages=msg.npages)
                yield from self.channel.send(msg, category=category,
                                             limited=limited)
                env.tracer.end(span, bytes=msg.wire_nbytes)
                sent_bytes += msg.wire_nbytes
            return sent_bytes

        recv_proc = env.process(receiver(env), name="pages:recv")
        send_proc = env.process(sender(env), name="pages:send")
        result = yield env.all_of([send_proc, recv_proc])
        return StreamStats(units_sent=int(indices.size),
                           bytes_sent=int(result[send_proc]))
