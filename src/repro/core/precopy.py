"""Iterative local-disk pre-copy (paper §IV-A-1 and §IV-A-3).

The first iteration copies every block (or, for incremental migration,
only the blocks the IM bitmap marks).  Each later iteration retransfers
the blocks dirtied during the previous one, tracked by the block-bitmap
that ``blkback`` maintains.  Iteration stops when any of:

* the dirty set is small enough to hand to post-copy,
* the iteration cap is reached ("avoid endless migration"),
* the storage dirty rate exceeds the achieved transfer rate (proactive
  stop — more iterations cannot converge).

After :meth:`run` returns, the ``"precopy"`` tracking bitmap is **left
registered** on the source driver: it keeps accumulating dirt through the
memory pre-copy and is harvested at freeze-and-copy as the bitmap shipped
to the destination.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from ..bitmap import make_bitmap, union_indices
from ..storage.blkback import BackendDriver
from .config import MigrationConfig
from .metrics import IterationStats
from .transfer import BlockStreamer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment

#: Name under which the pre-copy dirty bitmap registers on the driver.
TRACKING_NAME = "precopy"


class DiskPreCopier:
    """Runs the iterative storage pre-copy for one migration."""

    def __init__(
        self,
        env: "Environment",
        driver: BackendDriver,
        streamer: BlockStreamer,
        config: MigrationConfig,
        initial_indices: Optional[np.ndarray] = None,
        abort_requested=None,
        resume: bool = False,
        store=None,
        converge=None,
    ) -> None:
        self.env = env
        self.driver = driver
        self.streamer = streamer
        self.config = config
        #: Optional :class:`~repro.core.converge.AutoConvergeController`:
        #: consulted at every iteration boundary; while it can still
        #: escalate the guest write throttle, the proactive stop is
        #: deferred in favour of throttling (``auto_converge`` config).
        self.converge = converge
        #: Optional :class:`~repro.persist.store.BitmapStore`: when set,
        #: every tracking bitmap this pre-copy registers is wrapped in a
        #: :class:`~repro.persist.tracked.PersistentBitmap` so guest
        #: writes journal to stable storage as they are marked.
        self.store = store
        #: True when the resume path adopted a bitmap rebuilt by crash
        #: recovery rather than one that survived in memory.
        self.adopted_recovered = False
        #: Blocks of the first iteration; None = the whole device (primary
        #: migration), an array = the IM dirty set (§V).
        self.initial_indices = initial_indices
        #: Optional callable checked at iteration boundaries; returning
        #: True stops the pre-copy early (migration cancellation).
        self.abort_requested = abort_requested
        #: True when retrying a failed migration: adopt the surviving
        #: ``"precopy"`` bitmap (atomically swapped for a fresh one, so no
        #: write during the retry handshake is ever missed) and start from
        #: its dirty set instead of the whole device.
        self.resume = resume

    def _fresh_bitmap(self):
        cfg = self.config
        bitmap = make_bitmap(self.driver.vbd.nblocks, cfg.bitmap_layout,
                             leaf_bits=cfg.leaf_bits)
        if self.store is not None:
            from ..persist.tracked import PersistentBitmap

            bitmap = PersistentBitmap(bitmap, self.store)
        return bitmap

    def run(self) -> Generator:
        """Execute the iterations; returns ``list[IterationStats]``."""
        cfg = self.config
        vbd = self.driver.vbd

        # Start tracking *before* the first block is read so no write is
        # ever missed (paper: blkback starts monitoring, then blkd copies).
        # ``tracking`` is the currently registered bitmap, rebound at every
        # swap below — the loop body never re-looks it up on the driver.
        if self.resume:
            # A failed attempt left its bitmap registered; swap it out
            # atomically so writes during the retry handshake land in the
            # fresh bitmap while the survivor becomes iteration 1's work.
            tracking = self._fresh_bitmap()
            surviving = self.driver.swap_tracking(TRACKING_NAME, tracking)
            self.adopted_recovered = bool(getattr(surviving, "recovered",
                                                  False))
            indices = surviving.dirty_indices()
            if self.initial_indices is not None:
                # Whole-bitmap merge: scatter both sets into one scratch
                # map and scan, instead of a sort-based union1d.
                indices = union_indices(vbd.nblocks, indices,
                                        self.initial_indices)
            if self.store is not None and self.store.is_open:
                # The retry's first-iteration work set is pending again by
                # definition (dedup in the store makes this nearly free).
                self.store.record_set(indices)
        else:
            tracking = self._fresh_bitmap()
            self.driver.start_tracking(TRACKING_NAME, tracking)
            if self.initial_indices is None:
                indices = np.arange(vbd.nblocks, dtype=np.int64)
            else:
                indices = np.asarray(self.initial_indices, dtype=np.int64)

        iterations: list[IterationStats] = []
        iteration = 1
        while True:
            started = self.env.now
            it_span = self.env.tracer.begin(f"iteration:{iteration}",
                                            category="iteration",
                                            blocks=int(indices.size))
            stats = yield from self.streamer.stream(indices, category="disk",
                                                    limited=True)
            ended = self.env.now
            dirty_now = tracking.count()
            record = IterationStats(
                index=iteration,
                units_sent=stats.units_sent,
                bytes_sent=stats.bytes_sent,
                started_at=started,
                ended_at=ended,
                dirty_at_end=dirty_now,
            )
            iterations.append(record)
            self.env.tracer.end(it_span, units_sent=stats.units_sent,
                                bytes_sent=stats.bytes_sent,
                                dirty_at_end=dirty_now)
            self.env.metrics.gauge("precopy.dirty_blocks").set(dirty_now)

            escalated = (self.converge.observe(record)
                         if self.converge is not None else False)
            if self.abort_requested is not None and self.abort_requested():
                break
            if not self._should_continue(record, iteration, escalated):
                break

            # Iteration boundary: hand the dirty map to blkd, reset tracking.
            tracking = self._fresh_bitmap()
            old = self.driver.swap_tracking(TRACKING_NAME, tracking)
            indices = old.dirty_indices()
            iteration += 1

        return iterations

    def _should_continue(self, record: IterationStats, iteration: int,
                         escalated: bool = False) -> bool:
        cfg = self.config
        # Auto-converge trades the tight iteration cap for a larger (but
        # still hard) bound: throttling needs a few rounds to bite.
        limit = (cfg.max_disk_iterations if self.converge is None
                 else cfg.auto_converge_max_iterations)
        if iteration >= limit:
            return False
        if record.dirty_at_end <= cfg.disk_dirty_threshold_blocks:
            return False
        if record.dirty_at_end == 0:
            return False
        if escalated:
            # The controller just tightened the guest write throttle in
            # response to this iteration's dirty rate; give the slower
            # guest an iteration before judging convergence.
            return True
        # Proactive stop: dirtying faster than we can send.
        if (record.duration > 0
                and record.dirty_rate
                > cfg.dirty_rate_stop_fraction * record.transfer_rate):
            return False
        # No forward progress: the dirty set is not shrinking.
        if record.dirty_at_end >= record.units_sent and iteration > 1:
            return False
        return True
