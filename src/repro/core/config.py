"""Migration configuration knobs.

Defaults correspond to the paper's setup: 4 KiB bit granularity, a handful
of pre-copy iterations with a proactive stop when the dirty rate outruns
the transfer rate, unthrottled migration bandwidth, and IM tracking enabled
after the primary migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import MigrationError
from ..units import BLOCK_SIZE, MiB


@dataclass
class MigrationConfig:
    """Tunable parameters of a TPM/IM migration run."""

    # -- block-bitmap --------------------------------------------------------
    #: ``"flat"`` or ``"layered"`` (paper §IV-A-2).
    bitmap_layout: str = "flat"
    #: Part size for the layered layout, in bits.
    leaf_bits: int = 4096

    # -- disk pre-copy ---------------------------------------------------
    #: Blocks per transfer chunk (1 MiB at 4 KiB blocks).  Chunks are the
    #: granularity at which migration I/O interleaves with guest I/O at the
    #: disk: much larger chunks starve the guest's small reads (visible as
    #: service-throughput dips the paper does not see on SPECweb), much
    #: smaller ones waste seeks.
    chunk_blocks: int = 256
    #: Hard cap on pre-copy iterations ("we limit the maximum number of
    #: iterations to avoid endless migration", §IV-A-1).  Four matches the
    #: paper's observed behaviour: Bonnie++ runs exactly 4 iterations while
    #: the calmer workloads converge in 2-3.
    max_disk_iterations: int = 4
    #: Stop iterating once the dirty set is at most this many blocks; the
    #: remainder is synchronized by post-copy.
    disk_dirty_threshold_blocks: int = 128
    #: Proactive stop: end pre-copy if the storage dirty rate exceeds this
    #: fraction of the achieved transfer rate (§IV-A-1).
    dirty_rate_stop_fraction: float = 0.9
    #: Disk-queue priority of migration I/O.  Guest I/O uses 0; the default
    #: of 0 means FIFO interleaving with guest requests (a real spindle does
    #: not privilege either side), which is what produces the paper's
    #: Figure 6 contention.  Raise it to favour guest I/O.
    migration_disk_priority: int = 0
    #: Chunks the bulk-transfer pipeline may hold read-but-unsent (the
    #: reader→sender buffer depth).  1 serialises read and send; larger
    #: values let the source disk run ahead of a slow network at the cost
    #: of buffering that many chunks in memory.
    pipeline_depth: int = 2

    # -- memory pre-copy ---------------------------------------------------
    #: Include memory + CPU in the migration (False = storage-only, used for
    #: Table II-style accounting; see EXPERIMENTS.md).
    include_memory: bool = True
    #: Pages per memory transfer chunk.
    mem_chunk_pages: int = 1024
    #: Maximum iterative memory pre-copy rounds (Xen uses a similar cap).
    max_mem_rounds: int = 30
    #: Enter freeze-and-copy once the dirty page set is at most this size.
    mem_dirty_threshold_pages: int = 256

    # -- bandwidth -------------------------------------------------------
    #: Migration rate limit in bytes/s for the *pre-copy* phase only
    #: (§VI-C-3); None = unthrottled.
    rate_limit: Optional[float] = None
    #: Token-bucket burst for the rate limiter (defaults to one second of
    #: budget when left None).
    rate_limit_burst: Optional[float] = None
    #: Compress bulk migration payloads before sending (paper §III-A:
    #: "compress the transferred data ... will show a reduction in total
    #: migration time").  Helps when the network is the bottleneck (WAN,
    #: rate-limited); on a fast LAN the disk is the limit and compression
    #: only adds CPU latency.
    compress: bool = False
    #: Compression ratio assumed for guest data (2:1 is typical for
    #: lz4/lzo-class codecs on mixed OS images).
    compression_ratio: float = 2.0
    #: Per-payload-kind compression ratios, keyed by the channel send
    #: category (``"disk"``, ``"memory"``, ...).  Kinds not listed fall
    #: back to :attr:`compression_ratio`.  Memory pages (zero-heavy) and
    #: delta-encoded disk chunks (already dense) compress very differently
    #: from raw disk blocks; None keeps the single-ratio behaviour.
    compression_ratios: Optional[dict] = None

    # -- adaptive transfer stack (ROADMAP item 2; all default OFF so the
    # -- default simulation stays bit-identical) ---------------------------
    #: XBZRLE-style delta compression: size in MiB of the bounded LRU
    #: cache of previously-sent block/page contents kept on the source.
    #: A re-send whose previous contents are still cached ships only the
    #: changed bytes (``1/delta_ratio`` of the unit); a miss or an entry
    #: evicted on overflow falls back to a full send.  ``0`` disables the
    #: cache entirely (the default).  See docs/TRANSFER.md.
    delta_cache_mb: float = 0.0
    #: Achieved delta-encoding ratio on a cache hit (full unit bytes over
    #: encoded bytes).  XBZRLE on sparsely-rewritten pages routinely
    #: reaches high single digits.
    delta_ratio: float = 8.0
    #: Sender CPU throughput of the delta encoder in bytes/s (the encoder
    #: scans old+new contents of every *hit* unit).
    delta_throughput: float = 800 * MiB
    #: Number of parallel sub-channels the bulk streamers stripe chunks
    #: across (QEMU multifd).  All sub-channels share the migration link,
    #: rate limiter, and compressor; ``1`` (the default) keeps the single
    #: pipelined channel.  See docs/TRANSFER.md for ordering guarantees.
    multifd_channels: int = 1
    #: Auto-converge: when a disk pre-copy iteration's dirty rate exceeds
    #: ``dirty_rate_stop_fraction`` of its transfer rate, throttle the
    #: guest's writes in steps (scaling each write's in-guest duration)
    #: instead of proactively giving up, until the pre-copy converges or
    #: the throttle maxes out.  Off by default.
    auto_converge: bool = False
    #: First write-throttle factor applied (1.0 = unthrottled; 2.0 makes
    #: every guest write take twice as long end-to-end).
    auto_converge_start: float = 2.0
    #: Additive factor increment per further escalation step.
    auto_converge_step: float = 2.0
    #: Ceiling on the throttle factor (QEMU caps its CPU throttle at 99%;
    #: a factor of 16 is a comparable ~94% write-rate reduction).
    auto_converge_max_factor: float = 16.0
    #: Iteration cap replacing ``max_disk_iterations`` while auto-converge
    #: is active — throttling needs room to bite, but the pre-copy must
    #: still terminate in bounded rounds.
    auto_converge_max_iterations: int = 30

    # -- post-copy -------------------------------------------------------
    #: Blocks per push batch.  Small batches keep pulled blocks from
    #: queueing behind long pushes.
    push_chunk_blocks: int = 64
    #: Enable the source's continuous push stream.  Disabling it leaves a
    #: pure pull-on-read post-copy — the on-demand behaviour whose
    #: unbounded source dependency the paper's push exists to avoid.  Used
    #: by the post-copy ablation; with it off, the phase ends only once the
    #: guest has touched every dirty block.
    postcopy_push: bool = True

    # -- incremental migration ---------------------------------------------
    #: Keep tracking writes on the destination after migration so a later
    #: migration back can be incremental (§V).
    track_incremental: bool = True

    # -- durable bitmaps (repro.persist) -----------------------------------
    #: Persist the pre-copy tracking bitmap to the source host's stable
    #: storage so a host crash mid-migration still allows an *incremental*
    #: retry after restart.  Off by default: persistence must not perturb
    #: the simulated timeline (the store itself charges zero simulated
    #: time, but this keeps the feature strictly opt-in).
    persist_bitmap: bool = False
    #: Store write-back policy: ``"wal"`` (flush every record; exact
    #: recovery), ``"batch"`` (flush every ``persist_flush_every``
    #: records), or ``"snapshot"`` (journal never flushed between
    #: snapshots; recovery over-marks up to guard-region granularity).
    persist_sync_policy: str = "wal"
    #: Records per journal flush under the ``"batch"`` policy.
    persist_flush_every: int = 64
    #: Blocks per eagerly-durable guard region (lazy policies over-mark at
    #: most this granularity per staged set batch).
    persist_region_bits: int = 4096
    #: Journal records accumulated before the store auto-compacts into a
    #: fresh snapshot.
    persist_snapshot_every: int = 4096

    # -- guest-aware migration (paper §VII future work, implemented) --------
    #: Skip blocks the guest never wrote: a never-written block is all
    #: zeroes on both the source and a freshly prepared destination VBD, so
    #: the first pre-copy iteration can transfer only the allocated set.
    #: "If the Guest OS ... can tell the migration process which part is
    #: not used, the amount of migrated data can be reduced further."
    guest_aware: bool = False

    # -- freeze costs ------------------------------------------------------
    #: Fixed hypervisor cost of suspending the domain (device quiesce,
    #: ring teardown).  Xen-era measurements put suspend+resume in the
    #: tens of milliseconds; these are charged inside the downtime window.
    suspend_overhead: float = 0.020
    #: Fixed hypervisor cost of resuming on the destination (device
    #: reattach, network fail-over ARP).
    resume_overhead: float = 0.030

    # -- verification ------------------------------------------------------
    #: After post-copy, assert that destination storage is consistent with
    #: the source (modulo blocks legitimately overwritten by the guest).
    verify_consistency: bool = True
    #: Total simulated time to wait for in-flight guest writes to land
    #: before declaring the destination inconsistent.
    verify_retry_budget: float = 1.0
    #: Interval between consistency re-checks within the budget.
    verify_retry_interval: float = 5e-3

    block_size: int = BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.bitmap_layout not in ("flat", "layered"):
            raise MigrationError(f"unknown bitmap layout {self.bitmap_layout!r}")
        if self.chunk_blocks < 1:
            raise MigrationError("chunk_blocks must be >= 1")
        if self.max_disk_iterations < 1:
            raise MigrationError("need at least one disk pre-copy iteration")
        if self.pipeline_depth < 1:
            raise MigrationError("pipeline_depth must be >= 1")
        if not 0 < self.dirty_rate_stop_fraction:
            raise MigrationError("dirty_rate_stop_fraction must be positive")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise MigrationError("rate_limit must be positive when set")
        if self.compression_ratio < 1.0:
            raise MigrationError("compression_ratio must be >= 1")
        if self.compression_ratios is not None:
            for kind, ratio in self.compression_ratios.items():
                if ratio < 1.0:
                    raise MigrationError(
                        f"compression ratio for {kind!r} must be >= 1")
        if self.delta_cache_mb < 0:
            raise MigrationError("delta_cache_mb cannot be negative")
        if self.delta_ratio < 1.0:
            raise MigrationError("delta_ratio must be >= 1")
        if self.delta_throughput <= 0:
            raise MigrationError("delta_throughput must be positive")
        if self.multifd_channels < 1:
            raise MigrationError("multifd_channels must be >= 1")
        if self.auto_converge_start <= 1.0:
            raise MigrationError("auto_converge_start must exceed 1.0")
        if self.auto_converge_step <= 0:
            raise MigrationError("auto_converge_step must be positive")
        if self.auto_converge_max_factor < self.auto_converge_start:
            raise MigrationError(
                "auto_converge_max_factor must be >= auto_converge_start")
        if self.auto_converge_max_iterations < 1:
            raise MigrationError("auto_converge_max_iterations must be >= 1")
        if self.push_chunk_blocks < 1:
            raise MigrationError("push_chunk_blocks must be >= 1")
        if self.max_mem_rounds < 1:
            raise MigrationError("need at least one memory round")
        if self.verify_retry_budget < 0:
            raise MigrationError("verify_retry_budget cannot be negative")
        if self.verify_retry_interval <= 0:
            raise MigrationError("verify_retry_interval must be positive")
        from ..persist.store import SYNC_POLICIES

        if self.persist_sync_policy not in SYNC_POLICIES:
            raise MigrationError(
                f"unknown persist sync policy {self.persist_sync_policy!r};"
                f" valid: {SYNC_POLICIES}")
        if self.persist_flush_every < 1:
            raise MigrationError("persist_flush_every must be >= 1")
        if self.persist_region_bits < 1:
            raise MigrationError("persist_region_bits must be >= 1")
        if self.persist_snapshot_every < 1:
            raise MigrationError("persist_snapshot_every must be >= 1")

    def replace(self, **overrides) -> "MigrationConfig":
        """A copy of this config with the given fields changed."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **overrides)
