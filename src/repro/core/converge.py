"""Auto-converge: guest write throttling when pre-copy cannot keep up.

The paper's proactive stop (§IV-A-1) gives up on iterating the moment the
storage dirty rate outruns the achieved transfer rate and hands the
remainder to post-copy.  Production hypervisors have a second answer:
QEMU's *auto-converge* throttles the guest's CPU in steps, shrinking the
dirty rate until the pre-copy converges.  This controller models that
loop for the diabolical (Bonnie++-class) workloads that otherwise never
converge:

* **Observation point** — the end of every disk pre-copy iteration, with
  that iteration's :class:`~repro.core.metrics.IterationStats` (the same
  dirty-rate/transfer-rate numbers the proactive stop reads).
* **Trigger** — ``dirty_rate > dirty_rate_stop_fraction * transfer_rate``
  (the exact condition that would otherwise stop the pre-copy).
* **Actuation** — the domain's :attr:`~repro.vm.domain.Domain.write_throttle`
  factor: every guest *write* is stretched to ``factor ×`` its unthrottled
  duration, scaling a closed-loop writer's inter-write delay and hence its
  dirty rate by ``~1/factor``.  Reads and memory touches are untouched
  (the disk dirty rate is what blocks convergence here).
* **Escalation** — first step jumps to ``auto_converge_start``, each
  further trigger adds ``auto_converge_step``, capped at
  ``auto_converge_max_factor``.  Once capped, the controller stops
  escalating and the normal stop conditions (including the proactive
  stop) terminate the pre-copy — rounds stay bounded either way via
  ``auto_converge_max_iterations``.
* **Release** — the throttle is dropped at freeze (the guest suspends
  anyway, and it must resume unthrottled on the destination) and on every
  abort/failure path.

Every step is recorded (time, factor) and surfaced in
``report.extra["auto_converge_*"]`` plus the ``autoconverge.throttle``
gauge.  Off by default (``MigrationConfig.auto_converge=False``): no
controller is constructed, no throttle branch is ever taken, and the
simulation is bit-identical to the baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .config import MigrationConfig
from .metrics import IterationStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment
    from ..vm.domain import Domain


class AutoConvergeController:
    """Steps up guest write throttling until the pre-copy converges."""

    def __init__(self, env: "Environment", domain: "Domain",
                 config: MigrationConfig) -> None:
        self.env = env
        self.domain = domain
        self.config = config
        #: Current throttle factor (1.0 = unthrottled).
        self.factor = 1.0
        #: Escalation log: (simulated time, factor) per step taken.
        self.steps: list[tuple[float, float]] = []

    @property
    def maxed(self) -> bool:
        """True once the throttle cannot be tightened further."""
        return self.factor >= self.config.auto_converge_max_factor

    def observe(self, record: IterationStats) -> bool:
        """Inspect one finished iteration; returns True if it escalated.

        Escalates exactly when the proactive-stop condition holds — the
        iteration dirtied faster than ``dirty_rate_stop_fraction`` of what
        it transferred — and the throttle still has headroom.
        """
        cfg = self.config
        if record.duration <= 0:
            return False
        if (record.dirty_rate
                <= cfg.dirty_rate_stop_fraction * record.transfer_rate):
            return False
        if self.maxed:
            return False
        if self.factor <= 1.0:
            self.factor = cfg.auto_converge_start
        else:
            self.factor = min(self.factor + cfg.auto_converge_step,
                              cfg.auto_converge_max_factor)
        self.domain.write_throttle = self.factor
        self.steps.append((self.env.now, self.factor))
        self.env.metrics.gauge("autoconverge.throttle").set(self.factor)
        self.env.tracer.instant("autoconverge:step", category="migration",
                                factor=self.factor,
                                dirty_rate=record.dirty_rate,
                                transfer_rate=record.transfer_rate)
        return True

    def release(self) -> None:
        """Drop the throttle (freeze, abort, or failure teardown)."""
        if self.domain.write_throttle != 1.0:
            self.domain.write_throttle = 1.0
            self.env.metrics.gauge("autoconverge.throttle").set(1.0)
            self.env.tracer.instant("autoconverge:release",
                                    category="migration")

    def summary(self) -> dict:
        """JSON-friendly record for ``report.extra``."""
        return dict(steps=len(self.steps), final_factor=self.factor,
                    log=[[t, f] for t, f in self.steps])
