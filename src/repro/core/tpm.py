"""Three-Phase Migration (TPM) — the paper's core contribution (§IV).

Phases (Fig. 1/2):

1. **Pre-copy** — initialisation (destination prepares a VBD), iterative
   local-disk pre-copy with block-bitmap tracking, then iterative memory
   pre-copy (disk first, because the long disk copy would re-dirty any
   prematurely copied memory).
2. **Freeze-and-copy** — suspend the VM; ship the final dirty pages, the
   CPU state, and the block-bitmap itself; move the domain to the
   destination; resume.  Downtime is exactly this window.
3. **Post-copy** — resume immediately; the source pushes remaining dirty
   blocks while the destination pulls on guest reads
   (:class:`~repro.core.postcopy.PostCopySynchronizer`).

Incremental Migration (§V) is this same class with ``initial_indices``
set to the IM bitmap's dirty set instead of the whole device, and with
the destination's existing stale VBD reused instead of a fresh one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from ..bitmap import make_bitmap
from ..errors import MigrationError
from ..net.channel import Channel
from ..net.messages import BitmapMsg, ControlMsg, CPUStateMsg
from ..storage.vbd import VirtualBlockDevice
from ..vm.domain import Domain
from ..vm.host import Host
from ..vm.memory import GuestMemory
from .config import MigrationConfig
from .memcopy import MemoryPreCopier
from .postcopy import PostCopySynchronizer
from .precopy import TRACKING_NAME, DiskPreCopier
from .scheme import MigrationScheme, register_scheme
from .transfer import BlockStreamer, PageStreamer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment

#: Tracking-bitmap name for the IM map (BM_3): writes on the destination
#: after resume, consumed by the next migration back.
IM_TRACKING_NAME = "im"


@register_scheme
class ThreePhaseMigration(MigrationScheme):
    """One whole-system live migration, source → destination."""

    name = "tpm"
    supports_abort = True
    uses_im = True

    def __init__(
        self,
        env: "Environment",
        domain: Domain,
        source: Host,
        destination: Host,
        fwd_channel: Channel,
        rev_channel: Channel,
        config: Optional[MigrationConfig] = None,
        initial_indices: Optional[np.ndarray] = None,
        dest_vbd: Optional[VirtualBlockDevice] = None,
        workload_name: str = "unknown",
        extra_im_bitmaps: Optional[dict] = None,
        resume: bool = False,
    ) -> None:
        super().__init__(env, domain, source, destination, fwd_channel,
                         rev_channel, config, workload_name)
        #: IM: blocks the first iteration must transfer (None = all).
        self.initial_indices = initial_indices
        #: IM: reuse this stale VBD on the destination (None = fresh one).
        self.dest_vbd = dest_vbd
        #: Multi-host IM (the paper's future work, via Migrator): divergence
        #: bitmaps against *other* stale hosts, re-registered on the
        #: destination driver before resume so no post-resume write is
        #: missed.  They stayed registered on the source driver through
        #: pre-copy, so pre-resume writes are already in them.
        self.extra_im_bitmaps = extra_im_bitmaps or {}
        #: True when retrying a failed attempt: the disk pre-copy adopts
        #: the surviving ``"precopy"`` bitmap instead of registering a
        #: fresh one and copying the whole device.
        self.resume = resume
        self._block_streamer: Optional[BlockStreamer] = None
        self._src_driver = None
        #: Adaptive transfer stack (all None unless the config enables
        #: them): multifd sub-channel fan-out, per-stream delta caches,
        #: and the auto-converge throttle controller.
        self._multifd = None
        self._disk_delta = None
        self._page_delta = None
        self._converge = None
        #: Durable bitmap store backing this attempt (persist_bitmap only).
        self._store = None
        #: Destination VBD of the in-flight attempt (for the failure path).
        self._dest_vbd_inflight: Optional[VirtualBlockDevice] = None
        self.report.incremental = initial_indices is not None

    # -- template hooks ----------------------------------------------------

    def _span_attrs(self) -> dict:
        return dict(incremental=self.report.incremental, resume=self.resume)

    def _end_attrs(self) -> dict:
        return dict(total_migration_time=self.report.total_migration_time,
                    downtime=self.report.downtime,
                    migrated_bytes=self.report.migrated_bytes)

    # ------------------------------------------------------------------

    def _execute(self) -> Generator:
        env = self.env
        domain = self.domain
        cfg = self.config
        report = self.report
        tracer = env.tracer

        src_vbd = self.source.vbd_of(domain.domain_id)
        src_driver = self._src_driver = self.source.driver_of(
            domain.domain_id)
        dest_vbd: Optional[VirtualBlockDevice] = None
        self._notify_phase("init")
        init_span = tracer.begin("phase:init", category="phase")

        # A network failure anywhere before the commit point tears the
        # migration down with the guest untouched on the source; the
        # write-tracking bitmap is *kept* so a retry can be incremental
        # (the base class converts it into a stamped MigrationFailed).

        # -- initialisation: ask the destination to prepare a VBD ------
        yield from self.fwd.send(ControlMsg("prepare-vbd"),
                                 category="control", limited=False)
        yield self.fwd.recv()  # destination consumes the request
        if self.dest_vbd is None:
            dest_vbd = self.destination.prepare_vbd(
                src_vbd.nblocks, src_vbd.block_size, data=src_vbd.has_data)
        else:
            dest_vbd = self.dest_vbd
            if (dest_vbd.nblocks, dest_vbd.block_size) != (
                    src_vbd.nblocks, src_vbd.block_size):
                raise MigrationError(
                    "stale destination VBD geometry does not match source")
        self._dest_vbd_inflight = dest_vbd
        yield from self.rev.send(ControlMsg("vbd-ready"),
                                 category="control", limited=False)
        yield self.rev.recv()  # source consumes the acknowledgement

        # -- phase 1a: iterative disk pre-copy ------------------------
        self._notify_phase("precopy-disk")
        tracer.end(init_span)
        disk_span = tracer.begin("phase:precopy-disk", category="phase")
        report.precopy_disk_started_at = env.now
        # -- adaptive transfer stack (docs/TRANSFER.md; all default off) --
        multifd = None
        if cfg.multifd_channels > 1:
            from ..net.multifd import MultiFD

            multifd = self._multifd = MultiFD(env, self.fwd,
                                              cfg.multifd_channels)
            # Register the sub-channels so the report's byte ledger and
            # the cluster conservation audit see every striped byte.
            self.extra_channels.extend(multifd.channels)
        disk_delta = page_delta = None
        if cfg.delta_cache_mb > 0:
            from ..net.delta import DeltaCache
            from ..units import MiB

            cache_nbytes = cfg.delta_cache_mb * MiB
            disk_delta = self._disk_delta = DeltaCache(
                cache_nbytes, src_vbd.block_size,
                delta_ratio=cfg.delta_ratio,
                encode_throughput=cfg.delta_throughput, name="delta.disk")
            if cfg.include_memory:
                page_delta = self._page_delta = DeltaCache(
                    cache_nbytes, domain.memory.page_size,
                    delta_ratio=cfg.delta_ratio,
                    encode_throughput=cfg.delta_throughput,
                    name="delta.mem")
        converge = None
        if cfg.auto_converge:
            from .converge import AutoConvergeController

            converge = self._converge = AutoConvergeController(
                env, domain, cfg)
        block_streamer = BlockStreamer(
            env, self.source.disk, src_vbd, self.destination.disk,
            dest_vbd, self.fwd, cfg, multifd=multifd, delta=disk_delta)
        self._block_streamer = block_streamer
        initial_indices = self.initial_indices
        if (initial_indices is None and cfg.guest_aware
                and self.dest_vbd is None and not self.resume):
            # Guest-aware first iteration (§VII): never-written blocks
            # are all-zero on the source and on the fresh destination
            # VBD alike, so only the allocated set needs to cross the
            # wire.  Only valid against a *fresh* destination — a stale
            # IM copy may hold old data in blocks that look unallocated
            # here.
            initial_indices = src_vbd.allocated_indices()
            report.extra["guest_aware_skipped_blocks"] = int(
                src_vbd.nblocks - initial_indices.size)
        store = None
        if cfg.persist_bitmap:
            store = self._store = self.source.bitmap_store(
                domain.domain_id, purpose="precopy",
                nbits=src_vbd.nblocks,
                policy=cfg.persist_sync_policy,
                flush_every=cfg.persist_flush_every,
                region_bits=cfg.persist_region_bits,
                snapshot_every=cfg.persist_snapshot_every)
            if not store.is_open:
                # A fresh session: everything the first iteration will
                # move is pending.  A retry finds the prior attempt's (or
                # crash recovery's) session already open and keeps it.
                store.open_session(None if self.resume
                                   else initial_indices)

            def confirm_clear(indices, _store=store, _driver=src_driver):
                # Blocks the destination confirmed are no longer pending —
                # unless the guest re-dirtied them after the chunk was
                # read, in which case the live bitmap still marks them.
                if not _store.is_open:
                    return
                if _driver.has_tracking(TRACKING_NAME):
                    live = _driver.tracking_bitmap(TRACKING_NAME)
                    indices = indices[~live.test_many(indices)]
                if indices.size:
                    _store.record_clear(indices)

            block_streamer.chunk_written = confirm_clear
        precopier = DiskPreCopier(
            env, src_driver, block_streamer, cfg,
            initial_indices=initial_indices,
            abort_requested=lambda: self._abort_requested,
            resume=self.resume, store=store, converge=converge)
        report.disk_iterations = yield from precopier.run()
        if precopier.adopted_recovered:
            report.extra["recovered_from_persistence"] = True
        report.precopy_disk_ended_at = env.now
        tracer.end(disk_span,
                   iterations=len(report.disk_iterations),
                   retransferred_blocks=report.retransferred_blocks)
        if self._abort_requested:
            return (yield from self._abort(src_driver,
                                           memory_logging=False))

        # -- phase 1b: iterative memory pre-copy ----------------------
        self._notify_phase("precopy-mem")
        shadow_memory: Optional[GuestMemory] = None
        mem_span = tracer.begin("phase:precopy-mem", category="phase")
        report.precopy_mem_started_at = env.now
        if cfg.include_memory:
            shadow_memory = GuestMemory(domain.memory.npages,
                                        domain.memory.page_size,
                                        clock=domain.memory.clock)
            page_streamer = PageStreamer(env, domain.memory,
                                         shadow_memory, self.fwd, cfg,
                                         multifd=multifd, delta=page_delta)
            memcopier = MemoryPreCopier(env, domain.memory, page_streamer,
                                        cfg)
            report.mem_rounds = yield from memcopier.run()
        report.precopy_mem_ended_at = env.now
        tracer.end(mem_span, rounds=len(report.mem_rounds))
        if self._abort_requested:
            return (yield from self._abort(
                src_driver, memory_logging=cfg.include_memory))

        # -- phase 2: freeze-and-copy -------------------------------------
        self._committed = True
        self._notify_phase("freeze")
        freeze_span = tracer.begin("phase:freeze", category="phase")
        if converge is not None:
            # The guest suspends now and must resume unthrottled on the
            # destination; the pre-copy the throttle served is over.
            converge.release()
        domain.suspend()
        report.suspended_at = env.now
        tracer.instant("suspend", category="freeze")
        # Drain guest I/O already queued at the disk so its writes are
        # applied (and bitmap-tracked) before the final harvest.
        yield from src_driver.quiesce()
        if cfg.suspend_overhead > 0:
            yield env.timeout(cfg.suspend_overhead)

        cpu_snapshot = None
        if cfg.include_memory and shadow_memory is not None:
            final_dirty = domain.memory.stop_logging()
            pages = final_dirty.dirty_indices()
            report.final_dirty_pages = int(pages.size)
            page_streamer = PageStreamer(env, domain.memory, shadow_memory,
                                         self.fwd, cfg,
                                         multifd=multifd, delta=page_delta)
            yield from page_streamer.stream(pages, category="memory",
                                            limited=False)
            # Capture the register state *now*, while the guest is frozen
            # on the source — this snapshot is what the CPUStateMsg ships
            # and what the destination must resume from.
            cpu_snapshot = domain.cpu.capture()
            yield from self.fwd.send(
                CPUStateMsg(domain.cpu.state_nbytes), category="cpu",
                limited=False)
            yield self.fwd.recv()  # destination receives the CPU state
            if not shadow_memory.identical_to(domain.memory):
                raise MigrationError(
                    "destination memory inconsistent at end of freeze")

        # Harvest the final block-bitmap and ship it (the *only* disk
        # synchronization data the downtime pays for).
        final_bitmap = src_driver.stop_tracking(TRACKING_NAME)
        if self._store is not None and self._store.is_open:
            # Committed: the source copy is now the stale one, so the
            # pending set is moot.  Mark the store clean — a crash after
            # this point has nothing to recover (post-copy failures are a
            # different, non-retriable failure class).
            self._store.complete()
        report.remaining_dirty_blocks = final_bitmap.count()
        report.bitmap_nbytes = final_bitmap.serialized_nbytes()
        env.metrics.gauge("tpm.remaining_dirty_blocks").set(
            report.remaining_dirty_blocks)
        tracer.instant("bitmap:shipped", category="freeze",
                       dirty_blocks=report.remaining_dirty_blocks,
                       bitmap_nbytes=report.bitmap_nbytes)
        yield from self.fwd.send(
            BitmapMsg(final_bitmap.nbits, final_bitmap.dirty_indices(),
                      final_bitmap.serialized_nbytes()),
            category="bitmap", limited=False)
        bitmap_msg = yield self.fwd.recv()  # destination receives BM_2

        # Move the domain: detach from the source, attach on the
        # destination, adopt the received memory image.
        self.source.detach_domain(domain.domain_id)
        dst_driver = self.destination.attach_domain(domain, dest_vbd)
        if cfg.include_memory and shadow_memory is not None:
            domain.cpu.restore(cpu_snapshot)
            domain.memory = shadow_memory

        # BM_2: the destination's copy of the shipped bitmap;
        # BM_1: the source keeps `final_bitmap` itself.
        transferred_bitmap = make_bitmap(bitmap_msg.nbits,
                                         cfg.bitmap_layout,
                                         leaf_bits=cfg.leaf_bits)
        transferred_bitmap.set_many(bitmap_msg.dirty_indices)

        # BM_3: new writes on the destination, for a later IM (§V).
        if cfg.track_incremental:
            dst_driver.start_tracking(
                IM_TRACKING_NAME,
                make_bitmap(dest_vbd.nblocks, cfg.bitmap_layout,
                            leaf_bits=cfg.leaf_bits))
        # Carried bitmaps (divergence maps, backup-chain tracking) follow
        # the domain regardless of IM tracking — a backup chain must not
        # silently stop accumulating deltas because IM is off.
        for name, bitmap in self.extra_im_bitmaps.items():
            dst_driver.start_tracking(name, bitmap)

        synchronizer = PostCopySynchronizer(
            env, self.source.disk, src_vbd, self.destination.disk, dest_vbd,
            dst_driver, self.fwd, self.rev,
            source_bitmap=final_bitmap,
            transferred_bitmap=transferred_bitmap,
            config=cfg)
        # The interceptor must be live *before* the first guest request.
        dst_driver.interceptor = synchronizer.intercept

        if cfg.resume_overhead > 0:
            yield env.timeout(cfg.resume_overhead)
        domain.resume()
        report.resumed_at = env.now
        tracer.instant("resume", category="freeze",
                       downtime=report.resumed_at - report.suspended_at)
        tracer.end(freeze_span,
                   final_dirty_pages=report.final_dirty_pages,
                   remaining_dirty_blocks=report.remaining_dirty_blocks,
                   bitmap_nbytes=report.bitmap_nbytes)

        # -- phase 3: post-copy push-and-pull -----------------------------
        self._notify_phase("postcopy")
        postcopy_span = tracer.begin("phase:postcopy", category="phase")
        report.postcopy = yield from synchronizer.run()
        report.ended_at = report.postcopy.ended_at
        # The phase logically ends at synchronization, which can precede
        # the current clock (worker processes wind down afterwards).
        tracer.end(postcopy_span, at=report.postcopy.ended_at,
                   pushed=report.postcopy.pushed_blocks,
                   pulled=report.postcopy.pulled_blocks,
                   dropped=report.postcopy.dropped_blocks,
                   stalled_reads=report.postcopy.stalled_reads)

        # -- wire accounting & verification --------------------------------
        report.bytes_by_category = self._ledger_delta(self._ledger_before)
        self._stamp_transfer_extras()
        if cfg.verify_consistency:
            verify_span = tracer.begin("phase:verify", category="phase")
            # A guest write may have cancelled a transfer (clearing BM_2,
            # so the pushed copy was dropped) while its own disk apply is
            # still in flight.  Such a block looks inconsistent until the
            # apply lands (at which point the IM bitmap explains it), so
            # retry briefly rather than quiescing — a zero-think-time
            # guest never drains, but these transients always resolve.
            verify_started = env.now
            deadline = verify_started + cfg.verify_retry_budget
            while True:
                unexplained = self._unexplained_diff(src_vbd, dest_vbd,
                                                     dst_driver)
                if unexplained.size == 0:
                    break
                if env.now >= deadline:
                    preview = unexplained[:10].tolist()
                    suffix = ", ..." if unexplained.size > 10 else ""
                    tracer.close_open(error="inconsistent after migration")
                    raise MigrationError(
                        f"{unexplained.size} blocks inconsistent after "
                        f"migration (waited "
                        f"{env.now - verify_started:.3f}s); offending "
                        f"blocks: {preview}{suffix}")
                yield env.timeout(cfg.verify_retry_interval)
            report.consistency_verified = True
            tracer.end(verify_span, verified=True)
        return report

    # ------------------------------------------------------------------

    def _stamp_transfer_extras(self) -> None:
        """Record adaptive-transfer-stack statistics in ``report.extra``.

        Only keys for features that were actually enabled appear, so the
        default run's report is unchanged field-for-field.
        """
        extra = self.report.extra
        if self._multifd is not None:
            extra["multifd_channels"] = self._multifd.nchannels
            extra["multifd_bytes_by_channel"] = [
                chan.total_bytes for chan in self._multifd.channels]
        if self._disk_delta is not None:
            extra["delta_disk"] = self._disk_delta.summary()
        if self._page_delta is not None:
            extra["delta_mem"] = self._page_delta.summary()
        if self._converge is not None:
            summary = self._converge.summary()
            extra["auto_converge_steps"] = summary["steps"]
            extra["auto_converge_final_factor"] = summary["final_factor"]
            extra["auto_converge_log"] = summary["log"]

    def _abort(self, src_driver, memory_logging: bool) -> Generator:
        """Tear the migration down with the domain untouched on the source.

        Write tracking stops, the destination is told to discard the
        partial copy, and the report is stamped as aborted.  The guest
        never noticed anything.
        """
        report = self.report
        src_driver.stop_tracking(TRACKING_NAME)
        if self._converge is not None:
            self._converge.release()  # guest stays: unthrottle it
        if self._store is not None and self._store.is_open:
            self._store.complete()  # cancelled on purpose: nothing pending
        if memory_logging and self.domain.memory.logging:
            self.domain.memory.stop_logging()
        yield from self.fwd.send(ControlMsg("migration-aborted"),
                                 category="control", limited=False)
        yield self.fwd.recv()  # destination acknowledges and discards
        report.extra["aborted"] = True
        report.ended_at = self.env.now
        report.bytes_by_category = self._ledger_delta(self._ledger_before)
        self._stamp_transfer_extras()
        self.env.tracer.instant("migration:aborted", category="migration",
                                phase=self._phase)
        self.env.tracer.close_open(aborted=True)
        return report

    def _on_failure(self, exc) -> Optional[VirtualBlockDevice]:
        """Failure bookkeeping on top of the base-class path.

        The guest keeps running on the source untouched.  Crucially the
        ``"precopy"`` tracking bitmap is **left registered**: it absorbs
        the blocks the failed batch never confirmed at the destination
        plus every write during the retry backoff, so the next attempt is
        an incremental migration over exactly the out-of-date set.
        """
        surviving = 0
        keep_vbd = None
        if self._converge is not None:
            # The guest keeps running on the source; never leave it
            # throttled across the retry backoff.
            self._converge.release()
        if (self._src_driver is not None
                and self._src_driver.has_tracking(TRACKING_NAME)):
            bitmap = self._src_driver.tracking_bitmap(TRACKING_NAME)
            if self._block_streamer is not None:
                pending = self._block_streamer.unconfirmed_indices()
                if pending.size:
                    bitmap.set_many(pending)
            surviving = bitmap.count()
            keep_vbd = self._dest_vbd_inflight
        elif (self.source.crashed and self._store is not None
              and self._store.recoverable):
            # The crash destroyed the in-memory bitmap, but the persisted
            # snapshot+journal can rebuild a conservative pending set once
            # the host restarts — keep the partial destination copy so
            # that retry is still incremental.
            keep_vbd = self._dest_vbd_inflight
            self.report.extra["persisted_bitmap_recoverable"] = True
        self.report.extra["surviving_dirty_blocks"] = int(surviving)
        self._stamp_transfer_extras()
        return keep_vbd

    def _failure_attrs(self) -> dict:
        return dict(surviving_dirty_blocks=self.report.extra.get(
            "surviving_dirty_blocks", 0))

    def _unexplained_diff(self, src_vbd: VirtualBlockDevice,
                          dest_vbd: VirtualBlockDevice, dst_driver):
        """Blocks that differ between the disks *without* a recorded guest
        write explaining them.  Must be empty for a consistent migration
        (destination may legitimately diverge only where BM_3 marks)."""
        diff = src_vbd.diff_blocks(dest_vbd)
        if diff.size == 0 or not self.config.track_incremental:
            return diff
        im_bitmap = dst_driver.tracking_bitmap(IM_TRACKING_NAME)
        return diff[~im_bitmap.test_many(diff)]
