"""High-level migration façade and Incremental-Migration bookkeeping (§V).

:class:`Migrator` owns the network topology between hosts and the state
needed for IM: after a migration, the copy of the disk left on the old
source is remembered as a *stale copy*, and the destination driver keeps
tracking guest writes in the IM bitmap (BM_3).  When the domain later
migrates back to a host that still holds a stale copy, only the BM_3
blocks are transferred in the first pre-copy iteration.

As in the paper, IM by default acts only between the primary destination
and the source machine: migrating to a third host invalidates the
remembered stale copies for that domain.  Constructing the Migrator with
``multi_host_im=True`` enables the paper's stated *future work* — "local
disk storage version maintenance to facilitate IM ... among any recently
used physical machines": one divergence bitmap is maintained per stale
host and carried across hops, so a VM that travelled A→B→C can still
return to A incrementally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..errors import MigrationError, StorageError
from ..net.channel import Channel
from ..net.compression import Compressor
from ..net.link import DuplexLink
from ..net.ratelimit import NullLimiter, TokenBucket
from ..storage.vbd import VirtualBlockDevice
from ..units import Gbps
from ..vm.domain import Domain
from ..vm.host import Host
from .config import MigrationConfig
from .metrics import MigrationReport
from .tpm import IM_TRACKING_NAME, ThreePhaseMigration

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment, Process


class Migrator:
    """Coordinates migrations among a set of hosts on a network."""

    def __init__(self, env: "Environment",
                 config: Optional[MigrationConfig] = None,
                 multi_host_im: bool = False) -> None:
        self.env = env
        self.config = config if config is not None else MigrationConfig()
        #: Enable the paper's future-work extension: IM back to *any*
        #: recently used host, not just the immediately previous one.
        self.multi_host_im = multi_host_im
        #: (host_a.name, host_b.name) -> DuplexLink (forward = a->b).
        self._links: dict[tuple[str, str], DuplexLink] = {}
        self._hosts: dict[str, Host] = {}
        #: (domain_id, host_name) -> stale VBD left behind on that host.
        self._stale: dict[tuple[int, str], VirtualBlockDevice] = {}
        #: domain_id -> name of the host the domain most recently left
        #: (the host its "im" bitmap diverges from).
        self._im_source: dict[int, str] = {}
        #: All reports produced, in order.
        self.history: list[MigrationReport] = []
        #: domain_id -> in-flight migration (for :meth:`abort`).
        self.active_migrations: dict[int, "ThreePhaseMigration"] = {}

    # -- topology ----------------------------------------------------------

    def connect(self, a: Host, b: Host, bandwidth: float = 1 * Gbps,
                latency: float = 100e-6) -> DuplexLink:
        """Join two hosts with a full-duplex link."""
        self._hosts[a.name] = a
        self._hosts[b.name] = b
        link = DuplexLink(self.env, bandwidth, latency,
                          name=f"{a.name}<->{b.name}")
        self._links[(a.name, b.name)] = link
        return link

    def link_between(self, src: Host, dst: Host) -> tuple:
        """``(data_link, reverse_link)`` for a migration src → dst."""
        link = self._links.get((src.name, dst.name))
        if link is not None:
            return link.forward, link.backward
        link = self._links.get((dst.name, src.name))
        if link is not None:
            return link.backward, link.forward
        raise MigrationError(
            f"no link between {src.name!r} and {dst.name!r}")

    # -- migration -------------------------------------------------------

    def migrate(self, domain: Domain, destination: Host,
                config: Optional[MigrationConfig] = None,
                workload_name: str = "unknown") -> Generator:
        """Migrate ``domain`` to ``destination``; returns the report.

        ``yield from`` inside a process (or use :meth:`migrate_process`).
        Automatically chooses incremental migration when the destination
        still holds a stale copy of the domain's disk and the current host
        has been tracking writes since the last migration.
        """
        cfg = config if config is not None else self.config
        source = domain.host
        if source is None:
            raise MigrationError(f"{domain} is not running on any host")
        if destination is source:
            raise MigrationError("destination must differ from the source")

        fwd_link, rev_link = self.link_between(source, destination)
        limiter = (TokenBucket(self.env, cfg.rate_limit, cfg.rate_limit_burst)
                   if cfg.rate_limit else NullLimiter())
        compressor = (Compressor(ratio=cfg.compression_ratio)
                      if cfg.compress else None)
        fwd = Channel(self.env, fwd_link, limiter=limiter,
                      name=f"mig:{source.name}->{destination.name}",
                      compressor=compressor)
        rev = Channel(self.env, rev_link,
                      name=f"mig:{destination.name}->{source.name}")

        # Incremental? -- needs a stale copy at the destination AND a live
        # divergence bitmap on the current host recording writes since the
        # domain last left that destination.
        src_driver = source.driver_of(domain.domain_id)
        divergence = self._collect_divergence(domain, src_driver)

        initial_indices = None
        dest_vbd = None
        stale_key = (domain.domain_id, destination.name)
        if stale_key in self._stale and destination.name in divergence:
            dest_vbd = self._stale.pop(stale_key)
            initial_indices = divergence.pop(
                destination.name).dirty_indices()

        # Multi-host IM: divergence maps against the *other* stale hosts
        # keep tracking on the source through pre-copy (they are still
        # registered there) and are re-registered on the destination by
        # TPM before resume, so they never miss a write.
        extra_im = ({f"{IM_TRACKING_NAME}:{host}": bitmap
                     for host, bitmap in divergence.items()}
                    if self.multi_host_im else {})

        src_vbd = source.vbd_of(domain.domain_id)
        migration = ThreePhaseMigration(
            self.env, domain, source, destination, fwd, rev, cfg,
            initial_indices=initial_indices, dest_vbd=dest_vbd,
            workload_name=workload_name, extra_im_bitmaps=extra_im)
        self.active_migrations[domain.domain_id] = migration
        try:
            report = yield from migration.run()
        finally:
            self.active_migrations.pop(domain.domain_id, None)

        if report.extra.get("aborted"):
            # Nothing moved: restore the stale-copy entry an IM attempt
            # consumed (its divergence bitmap stayed registered; it may
            # now over-approximate, which only costs retransfers).
            if dest_vbd is not None:
                self._stale[stale_key] = dest_vbd
            self.history.append(report)
            return report

        # Bookkeeping for the next IM: the disk left on the old source is
        # now a stale copy.  Without multi-host IM only it stays valid
        # (paper: IM acts between the primary destination and the source).
        if not self.multi_host_im:
            self._stale = {key: vbd for key, vbd in self._stale.items()
                           if key[0] != domain.domain_id}
        self._stale[(domain.domain_id, source.name)] = src_vbd
        self._im_source[domain.domain_id] = source.name

        self.history.append(report)
        return report

    def abort(self, domain: Domain) -> bool:
        """Cancel ``domain``'s in-flight migration, if still possible."""
        migration = self.active_migrations.get(domain.domain_id)
        if migration is None:
            return False
        return migration.request_abort()

    def _collect_divergence(self, domain: Domain, src_driver) -> dict:
        """Divergence bitmaps living on the current host's driver, keyed by
        the stale-copy host they diverge from."""
        divergence: dict = {}
        previous = self._im_source.get(domain.domain_id)
        if previous is not None:
            try:
                divergence[previous] = src_driver.tracking_bitmap(
                    IM_TRACKING_NAME)
            except StorageError:
                pass
        if self.multi_host_im:
            for dom_id, host_name in list(self._stale):
                if dom_id != domain.domain_id or host_name == previous:
                    continue
                try:
                    divergence[host_name] = src_driver.tracking_bitmap(
                        f"{IM_TRACKING_NAME}:{host_name}")
                except StorageError:
                    pass
        return divergence

    def migrate_process(self, domain: Domain, destination: Host,
                        config: Optional[MigrationConfig] = None,
                        workload_name: str = "unknown") -> "Process":
        """Spawn :meth:`migrate` as a process; run it with ``env.run``."""
        return self.env.process(
            self.migrate(domain, destination, config, workload_name),
            name=f"migrate:{domain.name}->{destination.name}")

    def has_stale_copy(self, domain: Domain, host: Host) -> bool:
        """True if ``host`` holds a stale disk copy usable for IM."""
        return (domain.domain_id, host.name) in self._stale
