"""High-level migration façade and Incremental-Migration bookkeeping (§V).

:class:`Migrator` owns the network topology between hosts and the state
needed for IM: after a migration, the copy of the disk left on the old
source is remembered as a *stale copy*, and the destination driver keeps
tracking guest writes in the IM bitmap (BM_3).  When the domain later
migrates back to a host that still holds a stale copy, only the BM_3
blocks are transferred in the first pre-copy iteration.

As in the paper, IM by default acts only between the primary destination
and the source machine: migrating to a third host invalidates the
remembered stale copies for that domain.  Constructing the Migrator with
``multi_host_im=True`` enables the paper's stated *future work* — "local
disk storage version maintenance to facilitate IM ... among any recently
used physical machines": one divergence bitmap is maintained per stale
host and carried across hops, so a VM that travelled A→B→C can still
return to A incrementally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..errors import MigrationError, MigrationFailed, StorageError
from ..persist.backup import BACKUP_TRACKING_PREFIX
from ..net.channel import Channel
from ..net.compression import Compressor
from ..net.link import DuplexLink
from ..net.ratelimit import NullLimiter, TokenBucket
from ..net.topology import Topology
from ..storage.vbd import VirtualBlockDevice
from ..units import Gbps
from ..vm.domain import Domain
from ..vm.host import Host
from .config import MigrationConfig
from .metrics import MigrationReport
from .precopy import TRACKING_NAME
from .scheme import MigrationScheme, get_scheme
from .tpm import IM_TRACKING_NAME, ThreePhaseMigration

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment, Process


class Migrator:
    """Coordinates migrations among a set of hosts on a network."""

    def __init__(self, env: "Environment",
                 config: Optional[MigrationConfig] = None,
                 multi_host_im: bool = False) -> None:
        self.env = env
        self.config = config if config is not None else MigrationConfig()
        #: Enable the paper's future-work extension: IM back to *any*
        #: recently used host, not just the immediately previous one.
        self.multi_host_im = multi_host_im
        #: The cluster network graph.  Hosts joined through switches get
        #: multi-hop routes automatically; see :class:`~repro.net.topology.
        #: Topology`.
        self.topology = Topology(env)
        #: (domain_id, host_name) -> stale VBD left behind on that host.
        self._stale: dict[tuple[int, str], VirtualBlockDevice] = {}
        #: domain_id -> name of the host the domain most recently left
        #: (the host its "im" bitmap diverges from).
        self._im_source: dict[int, str] = {}
        #: (domain_id, host_name) -> partially populated VBD left on that
        #: host by a *failed* migration, reusable by an incremental retry
        #: while the source keeps the surviving tracking bitmap.
        self._partial: dict[tuple[int, str], VirtualBlockDevice] = {}
        #: Set by :meth:`~repro.faults.injector.FaultInjector.inject`;
        #: migrations register it for phase-triggered faults.
        self.fault_injector = None
        #: All reports produced, in order (failed attempts included).
        self.history: list[MigrationReport] = []
        #: domain_id -> in-flight migration (for :meth:`abort`).
        self.active_migrations: dict[int, MigrationScheme] = {}
        #: The most recently constructed migration object (any scheme);
        #: gives experiments access to scheme-specific state (e.g. the
        #: on-demand baseline's residual-dependency counters).
        self.last_migration: Optional[MigrationScheme] = None
        #: Every migration object ever constructed, in order — keeps the
        #: per-channel byte ledgers reachable for cluster-level
        #: conservation audits (see :mod:`repro.cluster.accounting`).
        self.migrations: list[MigrationScheme] = []

    # -- topology ----------------------------------------------------------

    @property
    def _links(self) -> dict[tuple[str, str], DuplexLink]:
        """Compat view of the topology's link table (fault injector)."""
        return self.topology.links

    @property
    def _hosts(self) -> dict[str, Host]:
        """Compat view of the topology's host table (fault injector)."""
        return self.topology.hosts

    def connect(self, a: Host, b: Host, bandwidth: float = 1 * Gbps,
                latency: float = 100e-6) -> DuplexLink:
        """Join two hosts (or switches, by name) with a full-duplex link.

        Reconnecting an already-connected pair returns the existing link
        when the parameters match and raises on a conflict — it never
        silently replaces a link carrying in-flight channels.
        """
        return self.topology.connect(a, b, bandwidth, latency)

    def link_between(self, src: Host, dst: Host) -> tuple:
        """``(data_link, reverse_link)`` for a migration src → dst.

        Directly connected hosts get the raw directional links; hosts
        joined through switches get store-and-forward
        :class:`~repro.net.topology.RoutedPath` objects.
        """
        return self.topology.endpoints(src, dst)

    # -- migration -------------------------------------------------------

    def migrate(self, domain: Domain, destination: Host,
                config: Optional[MigrationConfig] = None,
                workload_name: str = "unknown",
                scheme: str = "tpm",
                scheme_kwargs: Optional[dict] = None) -> Generator:
        """Migrate ``domain`` to ``destination``; returns the report.

        ``yield from`` inside a process (or use :meth:`migrate_process`).
        ``scheme`` selects any registered migration scheme (``"tpm"``,
        ``"freeze-and-copy"``, ``"on-demand"``, ``"delta-queue"``,
        ``"shared-storage"`` or an alias); every scheme runs through the
        same harness, so history recording, fault injection, retry, and
        tracing behave identically across them.  ``scheme_kwargs`` is
        passed to the scheme's constructor (e.g. ``throttle_watermark``
        for the delta baseline).

        With the default TPM scheme, incremental migration is chosen
        automatically when the destination still holds a stale copy of
        the domain's disk and the current host has been tracking writes
        since the last migration.
        """
        cfg = config if config is not None else self.config
        scheme_cls = get_scheme(scheme)
        source = domain.host
        if source is None:
            raise MigrationError(f"{domain} is not running on any host")
        if destination is source:
            raise MigrationError("destination must differ from the source")
        if source.crashed or destination.crashed:
            victim = source.name if source.crashed else destination.name
            report = MigrationReport(scheme=scheme_cls.name,
                                     workload=workload_name)
            report.started_at = report.ended_at = self.env.now
            report.extra["failed"] = True
            report.extra["failure"] = f"host {victim!r} is down"
            report.extra["failed_phase"] = "init"
            self.history.append(report)
            raise MigrationFailed(
                f"cannot migrate {domain}: host {victim!r} is down",
                report=report)

        fwd_link, rev_link = self.link_between(source, destination)
        limiter = (TokenBucket(self.env, cfg.rate_limit, cfg.rate_limit_burst)
                   if cfg.rate_limit else NullLimiter())
        compressor = (Compressor(ratio=cfg.compression_ratio,
                                 ratios=cfg.compression_ratios)
                      if cfg.compress else None)
        fwd = Channel(self.env, fwd_link, limiter=limiter,
                      name=f"mig:{source.name}->{destination.name}",
                      compressor=compressor)
        rev = Channel(self.env, rev_link,
                      name=f"mig:{destination.name}->{source.name}")

        kwargs = dict(scheme_kwargs) if scheme_kwargs else {}
        partial_key = (domain.domain_id, destination.name)
        stale_key = (domain.domain_id, destination.name)
        dest_vbd = None
        src_vbd = source.vbd_of(domain.domain_id)
        if scheme_cls.uses_im:
            src_driver = source.driver_of(domain.domain_id)

            # Retry of a failed migration? -- needs the surviving pre-copy
            # tracking bitmap on the source AND the partial copy the failed
            # attempt left at this destination.  The bitmap stays registered
            # (adopted atomically by the pre-copier), so no write between
            # the failure and here is ever missed.
            resume = False
            if src_driver.has_tracking(TRACKING_NAME):
                partial = self._partial.pop(partial_key, None)
                if partial is not None:
                    resume = True
                    dest_vbd = partial
                else:
                    # The surviving bitmap describes a partial copy
                    # elsewhere; against this destination it is useless.
                    # Start clean.
                    src_driver.stop_tracking(TRACKING_NAME)
                    self._drop_partials(domain.domain_id)

            # Incremental? -- needs a stale copy at the destination AND a
            # live divergence bitmap on the current host recording writes
            # since the domain last left that destination.
            divergence = self._collect_divergence(domain, src_driver)

            initial_indices = None
            if (not resume and stale_key in self._stale
                    and destination.name in divergence):
                dest_vbd = self._stale.pop(stale_key)
                initial_indices = divergence.pop(
                    destination.name).dirty_indices()

            # Multi-host IM: divergence maps against the *other* stale
            # hosts keep tracking on the source through pre-copy (they are
            # still registered there) and are re-registered on the
            # destination by TPM before resume, so they never miss a write.
            extra_im = ({f"{IM_TRACKING_NAME}:{host}": bitmap
                         for host, bitmap in divergence.items()}
                        if self.multi_host_im else {})

            # Backup-chain tracking bitmaps follow the domain: they stay
            # registered on the source through pre-copy and re-register on
            # the destination before resume, so the chain keeps
            # accumulating deltas across the migration (the tp-qemu
            # backup-with-migration scenario).
            for name in src_driver.tracking_names():
                if name.startswith(BACKUP_TRACKING_PREFIX):
                    extra_im[name] = src_driver.tracking_bitmap(name)

            kwargs.update(initial_indices=initial_indices,
                          dest_vbd=dest_vbd, extra_im_bitmaps=extra_im,
                          resume=resume)

        migration = scheme_cls(
            self.env, domain, source, destination, fwd, rev, cfg,
            workload_name=workload_name, **kwargs)
        self.last_migration = migration
        self.migrations.append(migration)
        if self.fault_injector is not None:
            migration.phase_observers.append(self.fault_injector.on_phase)
        self.active_migrations[domain.domain_id] = migration
        try:
            report = yield from migration.run()
        except MigrationFailed as failure:
            if failure.dest_vbd is not None:
                self._partial[partial_key] = failure.dest_vbd
            if failure.report is not None:
                self.history.append(failure.report)
            raise
        finally:
            self.active_migrations.pop(domain.domain_id, None)

        if report.extra.get("aborted"):
            # Nothing moved: restore the stale-copy entry an IM attempt
            # consumed (its divergence bitmap stayed registered; it may
            # now over-approximate, which only costs retransfers).
            if dest_vbd is not None:
                self._stale[stale_key] = dest_vbd
            self.history.append(report)
            return report

        # A completed migration supersedes any partial copy left around by
        # earlier failed attempts of this domain.
        self._drop_partials(domain.domain_id)

        if scheme_cls.uses_im:
            # Bookkeeping for the next IM: the disk left on the old source
            # is now a stale copy.  Without multi-host IM only it stays
            # valid (paper: IM acts between the primary destination and the
            # source).
            if not self.multi_host_im:
                self._stale = {key: vbd for key, vbd in self._stale.items()
                               if key[0] != domain.domain_id}
            self._stale[(domain.domain_id, source.name)] = src_vbd
            self._im_source[domain.domain_id] = source.name
        else:
            # A non-IM scheme moved the domain without maintaining any
            # divergence bitmaps: every remembered stale copy of this
            # domain's disk is now unusable for incremental migration.
            self._stale = {key: vbd for key, vbd in self._stale.items()
                           if key[0] != domain.domain_id}
            self._im_source.pop(domain.domain_id, None)

        self.history.append(report)
        return report

    def abort(self, domain: Domain) -> bool:
        """Cancel ``domain``'s in-flight migration, if still possible."""
        migration = self.active_migrations.get(domain.domain_id)
        if migration is None:
            return False
        return migration.request_abort()

    def _drop_partials(self, domain_id: int) -> None:
        for key in [k for k in self._partial if k[0] == domain_id]:
            del self._partial[key]

    def discard_partial(self, domain: Domain) -> None:
        """Forget the recovery state of ``domain``'s failed migration.

        Drops the partial destination copies and stops the surviving
        pre-copy tracking bitmap, forcing the next attempt to start from
        scratch.  Only call between attempts, never mid-migration.
        """
        self._drop_partials(domain.domain_id)
        if domain.host is not None:
            driver = domain.host.driver_of(domain.domain_id)
            if driver.has_tracking(TRACKING_NAME):
                driver.stop_tracking(TRACKING_NAME)

    def _collect_divergence(self, domain: Domain, src_driver) -> dict:
        """Divergence bitmaps living on the current host's driver, keyed by
        the stale-copy host they diverge from."""
        divergence: dict = {}
        previous = self._im_source.get(domain.domain_id)
        if previous is not None:
            try:
                divergence[previous] = src_driver.tracking_bitmap(
                    IM_TRACKING_NAME)
            except StorageError:
                pass
        if self.multi_host_im:
            for dom_id, host_name in list(self._stale):
                if dom_id != domain.domain_id or host_name == previous:
                    continue
                try:
                    divergence[host_name] = src_driver.tracking_bitmap(
                        f"{IM_TRACKING_NAME}:{host_name}")
                except StorageError:
                    pass
        return divergence

    def migrate_process(self, domain: Domain, destination: Host,
                        config: Optional[MigrationConfig] = None,
                        workload_name: str = "unknown",
                        scheme: str = "tpm",
                        scheme_kwargs: Optional[dict] = None) -> "Process":
        """Spawn :meth:`migrate` as a process; run it with ``env.run``."""
        return self.env.process(
            self.migrate(domain, destination, config, workload_name,
                         scheme=scheme, scheme_kwargs=scheme_kwargs),
            name=f"migrate:{domain.name}->{destination.name}")

    def has_stale_copy(self, domain: Domain, host: Host) -> bool:
        """True if ``host`` holds a stale disk copy usable for IM."""
        return (domain.domain_id, host.name) in self._stale

    def has_partial_copy(self, domain: Domain, host: Host) -> bool:
        """True if ``host`` holds a failed attempt's partial disk copy."""
        return (domain.domain_id, host.name) in self._partial


class MigrationRetrier:
    """Re-runs failed migrations with exponential backoff.

    The retry is *incremental* by default: the source's surviving
    write-tracking bitmap (kept registered across the failure, still
    absorbing guest writes during the backoff) becomes the first
    iteration's transfer set, and the destination's partial copy is
    reused — §V's incremental-migration machinery repurposed as fault
    tolerance.  With ``incremental=False`` every attempt starts from
    scratch, which is the baseline the benchmark compares against.
    """

    def __init__(self, migrator: Migrator, max_attempts: int = 3,
                 initial_backoff: float = 0.5, backoff_factor: float = 2.0,
                 incremental: bool = True, max_backoff: float = 60.0,
                 wait_for_restart: bool = False) -> None:
        if max_attempts < 1:
            raise MigrationError("max_attempts must be >= 1")
        if initial_backoff < 0:
            raise MigrationError("initial_backoff cannot be negative")
        if backoff_factor < 1.0:
            raise MigrationError("backoff_factor must be >= 1")
        if max_backoff <= 0:
            raise MigrationError("max_backoff must be positive")
        self.migrator = migrator
        self.env = migrator.env
        self.max_attempts = max_attempts
        self.initial_backoff = initial_backoff
        self.backoff_factor = backoff_factor
        self.incremental = incremental
        #: Ceiling on the exponential backoff: without it, large
        #: ``max_attempts`` produce absurd simulated waits (0.5 * 2**20 s).
        self.max_backoff = max_backoff
        #: After the backoff, additionally wait for a crashed source or
        #: destination to restart before re-attempting — the crash-recovery
        #: path (pointless against hosts that never restart, hence opt-in).
        self.wait_for_restart = wait_for_restart

    def migrate(self, domain: Domain, destination: Host,
                config: Optional[MigrationConfig] = None,
                workload_name: str = "unknown",
                scheme: str = "tpm",
                scheme_kwargs: Optional[dict] = None,
                deadline: Optional[float] = None,
                replace_destination=None,
                on_attempt_failure=None) -> Generator:
        """Migrate with retries; returns the final attempt's report.

        ``yield from`` inside a process.  Any registered ``scheme`` may
        be retried, though only IM-aware schemes (TPM) resume
        incrementally — the others restart from scratch each attempt.
        The report carries the retry accounting: ``attempts``,
        ``failed_attempts``, ``backoff_time``.  Raises
        :class:`~repro.errors.MigrationFailed` once ``max_attempts``
        attempts have all died.

        The three optional hooks are the cluster scheduler's recovery
        surface: ``deadline`` (absolute simulated time; once passed, no
        further attempt starts), ``on_attempt_failure(attempt,
        destination, failure)`` called after each failed attempt, and
        ``replace_destination(domain, destination, attempt, failure)``
        called before each re-attempt — returning a different
        :class:`~repro.vm.host.Host` redirects the retry there (the
        partial-copy table is keyed per destination, so a replacement
        target automatically starts clean while the source keeps its
        surviving tracking bitmap).
        """
        failures: list[MigrationReport] = []
        backoff_total = 0.0
        delay = min(self.initial_backoff, self.max_backoff)
        for attempt in range(1, self.max_attempts + 1):
            self.env.metrics.counter("retry.attempts").inc()
            try:
                report = yield from self.migrator.migrate(
                    domain, destination, config, workload_name,
                    scheme=scheme, scheme_kwargs=scheme_kwargs)
            except MigrationFailed as failure:
                if failure.report is not None:
                    failures.append(failure.report)
                if on_attempt_failure is not None:
                    on_attempt_failure(attempt, destination, failure)
                if attempt == self.max_attempts:
                    self.env.tracer.instant("retry:gave-up",
                                            category="retry",
                                            attempts=attempt)
                    raise MigrationFailed(
                        f"migration of {domain} failed {attempt} times; "
                        f"giving up", report=failure.report) from failure
                if not self.incremental:
                    self.migrator.discard_partial(domain)
                with self.env.tracer.span("retry:backoff", category="retry",
                                          attempt=attempt, delay=delay,
                                          incremental=self.incremental):
                    self.env.metrics.gauge("retry.backoff_delay").set(delay)
                    if delay > 0:
                        yield self.env.timeout(delay)
                backoff_total += delay
                delay = min(delay * self.backoff_factor, self.max_backoff)
                if self.wait_for_restart:
                    source = domain.host
                    if source is not None and source.crashed:
                        yield from source.wait_until_up()
                    if destination.crashed:
                        yield from destination.wait_until_up()
                if deadline is not None and self.env.now >= deadline:
                    self.env.tracer.instant("retry:deadline",
                                            category="retry",
                                            attempts=attempt,
                                            deadline=deadline)
                    raise MigrationFailed(
                        f"migration of {domain} abandoned after {attempt} "
                        f"attempt(s): deadline {deadline:.3f}s passed",
                        report=failure.report) from failure
                if replace_destination is not None:
                    replacement = replace_destination(
                        domain, destination, attempt, failure)
                    if replacement is not None \
                            and replacement is not destination:
                        destination = replacement
                continue
            report.attempts = attempt
            report.failed_attempts = failures
            report.backoff_time = backoff_total
            return report

    def migrate_process(self, domain: Domain, destination: Host,
                        config: Optional[MigrationConfig] = None,
                        workload_name: str = "unknown",
                        scheme: str = "tpm",
                        scheme_kwargs: Optional[dict] = None) -> "Process":
        """Spawn :meth:`migrate` as a process; run it with ``env.run``."""
        return self.env.process(
            self.migrate(domain, destination, config, workload_name,
                         scheme=scheme, scheme_kwargs=scheme_kwargs),
            name=f"retry-migrate:{domain.name}->{destination.name}")
