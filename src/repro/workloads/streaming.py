"""Low-latency video streaming server (paper §VI-C-2).

A Samba share serves a ~210 MB video to one client at under 500 kbit/s.
The access pattern is a slow sequential read with a rare log write — the
write rate is so low that only two pre-copy iterations are needed and a
handful of blocks reach post-copy.  The interesting metric is *latency*:
playback is fluent iff every read completes well before the player's
buffer drains, which this workload records per read.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..units import KiB
from .base import Workload
from .iomodel import FreshAppendModel, MemoryDirtier, SequentialModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class VideoStreamServer(Workload):
    """Streams a video file sequentially at a fixed bit rate."""

    name = "video"

    def __init__(
        self,
        seed: int = 0,
        #: Client consumption rate in bytes/second (< 500 kbit/s).
        stream_rate: float = 60 * KiB,
        #: Bytes fetched per read (player buffer refill).
        read_chunk: int = 64 * KiB,
        #: Seconds between access-log writes.
        log_interval: float = 1.3,
        #: Video file location (blocks).
        video_region: tuple[int, int] = (100_000, 53_760),  # ~210 MiB
        #: Log file location (blocks).
        log_region: tuple[int, int] = (4_000_000, 4_096),
        memory_dirtier: MemoryDirtier | None = None,
        #: Playback stalls if a read takes longer than this (player buffer).
        stall_threshold: float = 2.0,
    ) -> None:
        super().__init__(seed)
        self.stream_rate = stream_rate
        self.read_chunk = read_chunk
        self.log_interval = log_interval
        self.stall_threshold = stall_threshold
        self.video = SequentialModel(video_region[0], video_region[1],
                                     extent_blocks=max(read_chunk // (4 * KiB), 1))
        self.log = FreshAppendModel(log_region[0], log_region[1],
                                    extent_blocks=1, rewrite_prob=0.05)
        self.memory = memory_dirtier
        #: Reads that exceeded the stall threshold (observable glitches).
        self.stalls = 0

    #: Sequential video extents prefetched per batched draw.
    PREFETCH_EXTENTS = 16

    def run(self, env: "Environment") -> Generator:
        rng = self.rng
        next_log = env.now + self.log_interval
        period = self.read_chunk / self.stream_rate
        # The video walk is deterministic (no RNG), so extents can be
        # drawn in batches ahead of use without changing anything.
        batch_firsts = batch_counts = None
        bpos = 0
        while True:
            yield from self.domain.ensure_running()
            start = env.now

            if batch_firsts is None or bpos == batch_firsts.size:
                batch_firsts, batch_counts = self.video.next_extents(
                    self.PREFETCH_EXTENTS, rng)
                bpos = 0
            first = int(batch_firsts[bpos])
            nblocks = int(batch_counts[bpos])
            bpos += 1
            yield from self.read(first, nblocks)
            yield from self.serve_network(self.read_chunk)
            latency = env.now - start
            self.record("read_latency", latency)
            if latency > self.stall_threshold:
                self.stalls += 1
            self.account(self.read_chunk)

            if env.now >= next_log:
                lf, ln = self.log.next_extent(rng)
                yield from self.write(lf, ln)
                next_log = env.now + self.log_interval

            if self.memory is not None:
                yield from self.dirty_memory(self.memory, period)

            elapsed = env.now - start
            if elapsed < period:
                yield env.timeout(period - elapsed)


def default_video_memory(npages: int = 131_072) -> MemoryDirtier:
    """A streaming server dirties little memory (buffers only)."""
    return MemoryDirtier(npages, wss_pages=1_500, pages_per_second=400.0,
                         hot_prob=0.95)
