"""Block-address models for synthetic workloads.

The migration algorithms care about three properties of a write stream:
its *rate*, its *footprint* (how many distinct blocks it touches), and its
*rewrite locality* (the fraction of writes that hit previously written
blocks — 11 % for a kernel build, 25.2 % for SPECweb banking, 35.6 % for
Bonnie++ per the paper's §IV-A-2 measurement).  These models let each
workload dial those properties explicitly.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..errors import ReproError


class AddressModel(abc.ABC):
    """Produces block extents ``(first_block, nblocks)`` within a region."""

    def __init__(self, region_start: int, region_blocks: int,
                 extent_blocks: int = 1) -> None:
        if region_blocks <= 0:
            raise ReproError(f"region must be non-empty, got {region_blocks}")
        if extent_blocks < 1:
            raise ReproError(f"extent must be >= 1 block, got {extent_blocks}")
        if extent_blocks > region_blocks:
            raise ReproError("extent larger than the region")
        self.region_start = int(region_start)
        self.region_blocks = int(region_blocks)
        self.extent_blocks = int(extent_blocks)

    @abc.abstractmethod
    def next_extent(self, rng: np.random.Generator) -> tuple[int, int]:
        """The next ``(first_block, nblocks)`` to access."""

    def next_extents(self, n: int,
                     rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """The next ``n`` extents as ``(firsts, counts)`` int64 arrays.

        Draws exactly the same values, in the same order, as ``n``
        sequential :meth:`next_extent` calls — callers may freely mix the
        two without perturbing the random stream.  Subclasses whose draws
        have no value-dependent control flow override this with a
        vectorized version; the default loops.
        """
        if n < 0:
            raise ReproError(f"cannot draw {n} extents")
        firsts = np.empty(n, dtype=np.int64)
        counts = np.empty(n, dtype=np.int64)
        for i in range(n):
            firsts[i], counts[i] = self.next_extent(rng)
        return firsts, counts

    def _clamp(self, offset: int) -> int:
        """Clamp a region-relative offset so the extent fits."""
        return min(max(offset, 0), self.region_blocks - self.extent_blocks)


class SequentialModel(AddressModel):
    """Walks the region front to back, wrapping around (streaming I/O)."""

    def __init__(self, region_start: int, region_blocks: int,
                 extent_blocks: int = 1) -> None:
        super().__init__(region_start, region_blocks, extent_blocks)
        self._cursor = 0
        #: Completed full passes over the region.
        self.passes = 0

    def next_extent(self, rng: np.random.Generator) -> tuple[int, int]:
        if self._cursor + self.extent_blocks > self.region_blocks:
            self._cursor = 0
            self.passes += 1
        first = self.region_start + self._cursor
        self._cursor += self.extent_blocks
        return first, self.extent_blocks

    def next_extents(self, n: int,
                     rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        # No randomness: the whole walk (wrap points included) is closed
        # form.  The cursor is always a whole number of extents, a pass
        # holds ``region_blocks // ext`` of them, and a full cursor wraps
        # *lazily* on the next draw — all exactly as the scalar path does.
        if n < 0:
            raise ReproError(f"cannot draw {n} extents")
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        ext = self.extent_blocks
        per_pass = self.region_blocks // ext
        pending = self._cursor + ext > self.region_blocks
        v0 = 0 if pending else self._cursor // ext
        steps = (v0 + np.arange(n, dtype=np.int64)) % per_pass
        firsts = self.region_start + steps * ext
        counts = np.full(n, ext, dtype=np.int64)
        if pending:
            self.passes += 1 + (n - 1) // per_pass
        else:
            self.passes += (v0 + n - 1) // per_pass
        self._cursor = (int(steps[-1]) + 1) * ext
        return firsts, counts

    def rewind(self) -> None:
        self._cursor = 0


class UniformModel(AddressModel):
    """Uniformly random extents over the region (random seeks)."""

    def next_extent(self, rng: np.random.Generator) -> tuple[int, int]:
        offset = int(rng.integers(0, self.region_blocks - self.extent_blocks + 1))
        return self.region_start + offset, self.extent_blocks

    def next_extents(self, n: int,
                     rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        # One sized draw consumes the identical random stream as ``n``
        # scalar ``integers()`` calls (PCG64 draws per element either way).
        if n < 0:
            raise ReproError(f"cannot draw {n} extents")
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        offsets = rng.integers(0, self.region_blocks - self.extent_blocks + 1,
                               size=n)
        firsts = self.region_start + offsets.astype(np.int64, copy=False)
        counts = np.full(n, self.extent_blocks, dtype=np.int64)
        return firsts, counts


class ZipfModel(AddressModel):
    """Zipf-distributed block popularity (heavy-tailed access skew).

    Block ranks follow ``P(rank k) ~ 1/k^alpha`` with the ranks scattered
    deterministically over the region (so the hot blocks are not all
    physically adjacent, unlike :class:`HotspotModel`).
    """

    def __init__(self, region_start: int, region_blocks: int,
                 extent_blocks: int = 1, alpha: float = 1.2) -> None:
        super().__init__(region_start, region_blocks, extent_blocks)
        if alpha <= 1.0:
            raise ReproError(f"zipf alpha must be > 1, got {alpha}")
        self.alpha = alpha
        # Deterministic rank -> offset permutation (seeded, not per-call).
        perm_rng = np.random.default_rng(0xC0FFEE)
        self._rank_to_offset = perm_rng.permutation(region_blocks)

    def next_extent(self, rng: np.random.Generator) -> tuple[int, int]:
        # Rejection-free: draw until the rank fits the region (zipf has
        # unbounded support; the tail beyond the region is re-drawn).
        for _ in range(64):
            rank = int(rng.zipf(self.alpha)) - 1
            if rank < self.region_blocks:
                break
        else:
            rank = int(rng.integers(0, self.region_blocks))
        offset = int(self._rank_to_offset[rank])
        return self.region_start + self._clamp(offset), self.extent_blocks


class HotspotModel(AddressModel):
    """A hot sub-region absorbs most accesses; the rest spread uniformly.

    With probability ``hot_prob`` the extent lands uniformly inside the
    first ``hot_fraction`` of the region; otherwise anywhere.  A classic
    80/20-style skew knob.
    """

    def __init__(self, region_start: int, region_blocks: int,
                 extent_blocks: int = 1, hot_fraction: float = 0.1,
                 hot_prob: float = 0.8) -> None:
        super().__init__(region_start, region_blocks, extent_blocks)
        if not 0 < hot_fraction <= 1:
            raise ReproError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
        if not 0 <= hot_prob <= 1:
            raise ReproError(f"hot_prob must be in [0, 1], got {hot_prob}")
        self.hot_blocks = max(int(region_blocks * hot_fraction),
                              self.extent_blocks)
        self.hot_prob = hot_prob

    def next_extent(self, rng: np.random.Generator) -> tuple[int, int]:
        if rng.random() < self.hot_prob:
            limit = self.hot_blocks
        else:
            limit = self.region_blocks
        offset = int(rng.integers(0, max(limit - self.extent_blocks, 0) + 1))
        return self.region_start + self._clamp(offset), self.extent_blocks


class FreshAppendModel(AddressModel):
    """Mostly-fresh writes with a controlled rewrite fraction.

    With probability ``rewrite_prob`` the extent rewrites a recently
    written block (drawn from a sliding window over the last writes);
    otherwise it appends at the frontier.  Once the frontier has advanced
    past the window, the achieved rewrite locality converges to exactly
    ``rewrite_prob`` — the knob the paper's locality numbers calibrate.
    """

    def __init__(self, region_start: int, region_blocks: int,
                 extent_blocks: int = 1, rewrite_prob: float = 0.25,
                 window_blocks: Optional[int] = None) -> None:
        super().__init__(region_start, region_blocks, extent_blocks)
        if not 0 <= rewrite_prob < 1:
            raise ReproError(f"rewrite_prob must be in [0, 1), got {rewrite_prob}")
        self.rewrite_prob = rewrite_prob
        self.window_blocks = (window_blocks if window_blocks is not None
                              else max(region_blocks // 16, extent_blocks))
        self._frontier = 0

    def next_extent(self, rng: np.random.Generator) -> tuple[int, int]:
        if self._frontier > 0 and rng.random() < self.rewrite_prob:
            window_lo = max(self._frontier - self.window_blocks, 0)
            window_hi = max(self._frontier - self.extent_blocks, window_lo)
            offset = int(rng.integers(window_lo, window_hi + 1))
            return self.region_start + self._clamp(offset), self.extent_blocks
        offset = self._frontier
        self._frontier += self.extent_blocks
        if self._frontier + self.extent_blocks > self.region_blocks:
            # Region exhausted: keep appending from the start (everything
            # becomes a rewrite, as for a long-running service).
            self._frontier = 0
        return self.region_start + self._clamp(offset), self.extent_blocks


class MemoryDirtier:
    """Writable-working-set model for guest memory dirtying.

    Each call to :meth:`pages` returns page indices to touch: a hot set of
    ``wss_pages`` absorbs ``hot_prob`` of the traffic, the remainder
    scatters over all of memory.  Keeping the WSS small relative to RAM is
    what lets iterative memory pre-copy converge (Clark et al.).
    """

    def __init__(self, npages: int, wss_pages: int, pages_per_second: float,
                 hot_prob: float = 0.9) -> None:
        if not 0 < wss_pages <= npages:
            raise ReproError("WSS must be within memory")
        if pages_per_second < 0:
            raise ReproError("dirty rate cannot be negative")
        self.npages = int(npages)
        self.wss_pages = int(wss_pages)
        self.pages_per_second = float(pages_per_second)
        self.hot_prob = float(hot_prob)

    def pages(self, dt: float, rng: np.random.Generator) -> np.ndarray:
        """Pages dirtied over an interval of ``dt`` seconds."""
        count = rng.poisson(self.pages_per_second * dt)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        hot = rng.random(count) < self.hot_prob
        out = np.empty(count, dtype=np.int64)
        nhot = int(hot.sum())
        if nhot:
            out[:nhot] = rng.integers(0, self.wss_pages, size=nhot)
        if count - nhot:
            out[nhot:] = rng.integers(0, self.npages, size=count - nhot)
        return out
