"""Workload framework: guest applications driving I/O and memory traffic.

A :class:`Workload` is a simulation process bound to a :class:`Domain`.
It issues disk requests through the domain (so they traverse blkback and
are intercepted/tracked like real guest I/O), dirties guest memory, and
records application-level throughput into a :class:`Timeline` — the series
the paper's Figures 5 and 6 plot.

Workloads are *closed-loop*: each operation completes before the next
begins, so disk contention with the migration slows the application
naturally, exactly as Bonnie++ slows in the paper's Figure 6.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from ..errors import ReproError
from ..sim import Interrupt, Timeline
from ..vm.domain import Domain
from .iomodel import MemoryDirtier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment, Process


class Workload(abc.ABC):
    """Base class for guest applications."""

    #: Short identifier used as the timeline-series prefix.
    name: str = "workload"

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)
        self.domain: Optional[Domain] = None
        self.timeline: Optional[Timeline] = None
        self.process: Optional["Process"] = None
        #: Optional egress NIC for client-facing traffic.  When it is the
        #: same link the migration uses, service responses contend with
        #: migration data — the situation the paper's "secondary NIC"
        #: suggestion (§IV-A-4) avoids.
        self.service_link = None
        #: Aggregate counters.
        self.ops = 0
        self.bytes_processed = 0
        #: Callbacks fired with the 0-based pass index when a phased
        #: workload (e.g. Bonnie++) starts a new benchmark pass.
        self.pass_observers: list = []

    # -- lifecycle -----------------------------------------------------------

    def bind(self, domain: Domain, timeline: Optional[Timeline] = None,
             service_link=None) -> None:
        """Attach to the domain whose guest this workload plays."""
        self.domain = domain
        self.timeline = timeline
        self.service_link = service_link

    def start(self, env: "Environment") -> "Process":
        """Spawn the workload loop as a simulation process."""
        if self.domain is None:
            raise ReproError(f"workload {self.name!r} is not bound to a domain")
        self.process = env.process(self._guarded_run(env),
                                   name=f"workload:{self.name}")
        return self.process

    def stop(self) -> None:
        """Interrupt the workload loop (end of an experiment)."""
        if self.process is not None and self.process.is_alive:
            self.process.interrupt("stop")

    def _guarded_run(self, env: "Environment") -> Generator:
        try:
            yield from self.run(env)
        except Interrupt:
            return

    @abc.abstractmethod
    def run(self, env: "Environment") -> Generator:
        """The guest's main loop; yields simulation events forever."""

    # -- helpers for subclasses -------------------------------------------

    def fire_pass_start(self, index: int) -> None:
        """Notify observers that benchmark pass ``index`` is starting."""
        for observer in self.pass_observers:
            observer(index)

    def record(self, series: str, value: float) -> None:
        """Record a throughput/latency sample under ``name:series``."""
        if self.timeline is not None:
            self.timeline.record(f"{self.name}:{series}", value)

    def account(self, nbytes: int, series: str = "throughput") -> None:
        """Count ``nbytes`` of application-level progress."""
        self.ops += 1
        self.bytes_processed += nbytes
        self.record(series, nbytes)

    def read(self, block: int, nblocks: int = 1) -> Generator:
        """Guest disk read (gated on the domain running)."""
        return self.domain.read(block, nblocks)

    def write(self, block: int, nblocks: int = 1) -> Generator:
        """Guest disk write (gated on the domain running)."""
        return self.domain.write(block, nblocks)

    def write_batch(self, extents) -> Generator:
        """Coalesced guest writes: one disk reservation for the whole batch.

        Opt-in — coalescing pays a single seek for the batch and therefore
        *changes simulated timing* relative to one :meth:`write` per extent
        (see :meth:`~repro.vm.domain.Domain.write_batch`).
        """
        return self.domain.write_batch(extents)

    def touch(self, pages: np.ndarray) -> Generator:
        """Dirty guest pages, waiting for resume if suspended mid-loop."""
        yield from self.domain.ensure_running()
        self.domain.touch_memory(pages)

    #: Responses are transmitted in segments of this size so that service
    #: and migration traffic interleave on a shared port the way TCP flows
    #: would, instead of one side monopolising the wire per burst.
    SERVICE_SEGMENT_BYTES = 256 * 1024

    def serve_network(self, nbytes: int) -> Generator:
        """Ship ``nbytes`` of responses to clients over the service NIC.

        A no-op when no NIC is modelled; otherwise the transmission time
        (and any contention with migration traffic sharing the link)
        closes the loop on service throughput.
        """
        if self.service_link is None or nbytes <= 0:
            return
        remaining = int(nbytes)
        while remaining > 0:
            segment = min(remaining, self.SERVICE_SEGMENT_BYTES)
            yield from self.service_link.transmit(segment)
            remaining -= segment

    def dirty_memory(self, dirtier: MemoryDirtier, dt: float) -> Generator:
        """Apply a :class:`MemoryDirtier` interval."""
        pages = dirtier.pages(dt, self.rng)
        if pages.size:
            yield from self.touch(pages)

    def mean_throughput(self, t_start: float, t_end: float,
                        series: str = "throughput") -> float:
        """Mean bytes/second recorded in ``[t_start, t_end)``."""
        if self.timeline is None or t_end <= t_start:
            return 0.0
        times, values = self.timeline.series(f"{self.name}:{series}")
        if times.size == 0:
            return 0.0
        mask = (times >= t_start) & (times < t_end)
        return float(values[mask].sum()) / (t_end - t_start)


class IdleWorkload(Workload):
    """A guest that does nothing (baseline for overhead measurements)."""

    name = "idle"

    def __init__(self, seed: int = 0, tick: float = 1.0) -> None:
        super().__init__(seed)
        self.tick = tick

    def run(self, env: "Environment") -> Generator:
        while True:
            yield from self.domain.ensure_running()
            yield env.timeout(self.tick)
