"""Block I/O trace capture and replay.

The synthetic workloads are calibrated to the paper's reported rates, but
a downstream user evaluating migration policies will often want to drive
the testbed with *their own* I/O trace.  This module provides:

* :class:`IOTrace` — a columnar (NumPy) trace of timed block requests,
  with summary statistics and ``.npz`` persistence;
* :class:`TraceRecorder` — captures every request a backend driver
  applies (register before starting the workload);
* :class:`TraceReplay` — a :class:`~repro.workloads.base.Workload` that
  re-issues a trace against a domain with the original timing (optionally
  time-scaled or looped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from ..errors import ReproError
from ..storage.blkback import BackendDriver
from ..storage.block import IOKind, IORequest
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment

#: Column encoding of the operation kind.
KIND_READ = 0
KIND_WRITE = 1


@dataclass
class IOTrace:
    """A timed sequence of block I/O requests (columnar storage)."""

    times: np.ndarray     #: float64 seconds, non-decreasing
    kinds: np.ndarray     #: uint8, KIND_READ or KIND_WRITE
    blocks: np.ndarray    #: int64 first block
    nblocks: np.ndarray   #: int32 extent length

    def __post_init__(self) -> None:
        n = len(self.times)
        for name in ("kinds", "blocks", "nblocks"):
            if len(getattr(self, name)) != n:
                raise ReproError(f"trace column {name!r} length mismatch")
        if n and np.any(np.diff(self.times) < 0):
            raise ReproError("trace times must be non-decreasing")

    def __len__(self) -> int:
        return int(len(self.times))

    @property
    def duration(self) -> float:
        """Seconds between the first and last request."""
        if len(self) < 2:
            return 0.0
        return float(self.times[-1] - self.times[0])

    @property
    def read_bytes(self) -> int:
        mask = self.kinds == KIND_READ
        return int(self.nblocks[mask].sum()) * 4096

    @property
    def write_bytes(self) -> int:
        mask = self.kinds == KIND_WRITE
        return int(self.nblocks[mask].sum()) * 4096

    def rewrite_fraction(self) -> float:
        """Fraction of write operations hitting a previously written block
        (the paper's §IV-A-2 locality metric, computed over the trace)."""
        seen: set[int] = set()
        ops = rewrites = 0
        for kind, block, count in zip(self.kinds, self.blocks, self.nblocks):
            if kind != KIND_WRITE:
                continue
            ops += 1
            extent = range(int(block), int(block + count))
            if any(b in seen for b in extent):
                rewrites += 1
            seen.update(extent)
        return rewrites / ops if ops else 0.0

    def shifted(self, t0: float = 0.0) -> "IOTrace":
        """A copy whose first request happens at ``t0``."""
        offset = (self.times[0] if len(self) else 0.0) - t0
        return IOTrace(self.times - offset, self.kinds.copy(),
                       self.blocks.copy(), self.nblocks.copy())

    # -- persistence -----------------------------------------------------

    def save(self, path) -> None:
        """Write the trace to an ``.npz`` file."""
        np.savez_compressed(path, times=self.times, kinds=self.kinds,
                            blocks=self.blocks, nblocks=self.nblocks)

    @classmethod
    def load(cls, path) -> "IOTrace":
        """Read a trace written by :meth:`save`."""
        with np.load(path) as data:
            return cls(data["times"], data["kinds"], data["blocks"],
                       data["nblocks"])

    @classmethod
    def from_lists(cls, records) -> "IOTrace":
        """Build from an iterable of ``(time, kind, block, nblocks)``."""
        rows = list(records)
        if not rows:
            return cls(np.empty(0), np.empty(0, np.uint8),
                       np.empty(0, np.int64), np.empty(0, np.int32))
        times, kinds, blocks, counts = zip(*rows)
        return cls(np.asarray(times, dtype=np.float64),
                   np.asarray(kinds, dtype=np.uint8),
                   np.asarray(blocks, dtype=np.int64),
                   np.asarray(counts, dtype=np.int32))


class TraceRecorder:
    """Captures every request a driver applies.

    Register before starting the workload::

        recorder = TraceRecorder(env, driver)
        ... run the experiment ...
        trace = recorder.trace()
    """

    def __init__(self, env: "Environment", driver: BackendDriver) -> None:
        self.env = env
        self._rows: list[tuple[float, int, int, int]] = []
        driver.request_observers.append(self._observe)

    def _observe(self, request: IORequest) -> None:
        kind = KIND_WRITE if request.kind is IOKind.WRITE else KIND_READ
        self._rows.append((self.env.now, kind, request.block,
                           request.nblocks))

    def __len__(self) -> int:
        return len(self._rows)

    def trace(self) -> IOTrace:
        """The trace captured so far."""
        return IOTrace.from_lists(self._rows)

    def clear(self) -> None:
        self._rows.clear()


class TraceReplay(Workload):
    """Replays an :class:`IOTrace` against the bound domain.

    Requests are issued at their recorded times (divided by
    ``time_scale``; 2.0 = replay twice as fast).  Replay is *open-loop* in
    arrival times but each request still runs through the full driver
    path, so contention and interception behave exactly as for a live
    workload.  With ``loop=True`` the trace repeats until stopped.
    """

    name = "replay"

    def __init__(self, trace: IOTrace, time_scale: float = 1.0,
                 loop: bool = False, seed: int = 0) -> None:
        super().__init__(seed)
        if time_scale <= 0:
            raise ReproError(f"time_scale must be positive, got {time_scale}")
        self.trace = trace.shifted(0.0)
        self.time_scale = time_scale
        self.loop = loop
        #: Completed replay passes over the trace.
        self.passes = 0

    def run(self, env: "Environment") -> Generator:
        trace = self.trace
        block_size = None
        while True:
            start = env.now
            for i in range(len(trace)):
                due = start + float(trace.times[i]) / self.time_scale
                if env.now < due:
                    yield env.timeout(due - env.now)
                yield from self.domain.ensure_running()
                if block_size is None:
                    block_size = self.domain.vbd.block_size
                kind = (IOKind.WRITE if trace.kinds[i] == KIND_WRITE
                        else IOKind.READ)
                yield from self.domain.io(kind, int(trace.blocks[i]),
                                          int(trace.nblocks[i]))
                self.account(int(trace.nblocks[i]) * block_size)
            self.passes += 1
            if not self.loop:
                return
