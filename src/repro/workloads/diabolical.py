"""Bonnie++-style diabolical I/O server (paper §VI-C-3, Fig. 6).

Bonnie++ cycles through hard-drive/file-system tests over one large file:
per-character output (putc), block output (write(2)), rewrite
(read-modify-write), per-character input (getc), block input, and random
seeks.  It keeps the disk saturated, dirtying blocks faster than almost
any transfer can drain — the paper's worst case.  The throughput of each
phase is recorded as its own series, matching Figure 6's four curves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..units import KiB, MiB
from .base import Workload
from .iomodel import MemoryDirtier, SequentialModel, UniformModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class BonniePlusPlus(Workload):
    """Phased disk benchmark saturating the spindle."""

    name = "bonnie"

    def __init__(
        self,
        seed: int = 0,
        #: Test-file region (blocks).  1 GiB = 262144 blocks of 4 KiB,
        #: Bonnie's default of 2x RAM for a 512 MiB guest.
        file_region: tuple[int, int] = (500_000, 262_144),
        #: Per-character phases are CPU-bound: cap their throughput.
        putc_rate: float = 46 * MiB,
        getc_rate: float = 50 * MiB,
        #: I/O sizes.  Per-character phases flush in smaller buffered ops
        #: than the 1 MiB block phases (this ratio also sets the fresh-vs-
        #: rewrite op mix the §IV-A-2 locality study measures).
        char_op_bytes: int = 128 * KiB,
        block_op_bytes: int = 1 * MiB,
        seeks_per_pass: int = 2_000,
        #: Fraction of random seeks that write the block back (Bonnie
        #: rewrites ~10 % of seeked blocks).
        seek_write_fraction: float = 0.1,
        memory_dirtier: MemoryDirtier | None = None,
    ) -> None:
        super().__init__(seed)
        self.file_region = file_region
        self.putc_rate = putc_rate
        self.getc_rate = getc_rate
        self.char_op_bytes = char_op_bytes
        self.block_op_bytes = block_op_bytes
        self.seeks_per_pass = seeks_per_pass
        self.seek_write_fraction = seek_write_fraction
        self.memory = memory_dirtier
        #: Completed full benchmark passes.
        self.passes = 0

    # -- phase helpers -------------------------------------------------------

    def _seq(self, extent_bytes: int) -> SequentialModel:
        block_size = self.domain.vbd.block_size
        return SequentialModel(self.file_region[0], self.file_region[1],
                               extent_blocks=max(extent_bytes // block_size, 1))

    def _phase_sequential(self, env, series: str, extent_bytes: int,
                          do_read: bool, do_write: bool,
                          cpu_rate: float | None) -> Generator:
        """One pass over the file; records throughput under ``series``."""
        model = self._seq(extent_bytes)
        steps = self.file_region[1] // model.extent_blocks
        block_size = self.domain.vbd.block_size
        # The sequential walk consumes no randomness, so the whole pass
        # can be drawn upfront in one vectorized call.
        firsts, counts = model.next_extents(steps, self.rng)
        for i in range(steps):
            yield from self.domain.ensure_running()
            start = env.now
            first, nblocks = int(firsts[i]), int(counts[i])
            if do_read:
                yield from self.read(first, nblocks)
            if do_write:
                yield from self.write(first, nblocks)
            nbytes = nblocks * block_size
            self.account(nbytes, series=series)
            if self.memory is not None:
                yield from self.dirty_memory(self.memory, env.now - start)
            if cpu_rate is not None:
                # Per-character processing throttles the op below disk speed.
                budget = nbytes / cpu_rate
                elapsed = env.now - start
                if elapsed < budget:
                    yield env.timeout(budget - elapsed)

    def _phase_seeks(self, env) -> Generator:
        block_size = self.domain.vbd.block_size
        model = UniformModel(self.file_region[0], self.file_region[1],
                             extent_blocks=1)
        for _ in range(self.seeks_per_pass):
            yield from self.domain.ensure_running()
            first, nblocks = model.next_extent(self.rng)
            yield from self.read(first, nblocks)
            if self.rng.random() < self.seek_write_fraction:
                yield from self.write(first, nblocks)
            self.account(nblocks * block_size, series="seeks")

    # -- main loop -------------------------------------------------------

    def run(self, env: "Environment") -> Generator:
        while True:
            self.fire_pass_start(self.passes)
            # putc: sequential per-character write (CPU-throttled).
            yield from self._phase_sequential(
                env, "putc", self.char_op_bytes,
                do_read=False, do_write=True, cpu_rate=self.putc_rate)
            # write(2): sequential block rewrite of the same file.
            yield from self._phase_sequential(
                env, "write", self.block_op_bytes,
                do_read=False, do_write=True, cpu_rate=None)
            # rewrite: read-modify-write.
            yield from self._phase_sequential(
                env, "rewrite", self.block_op_bytes,
                do_read=True, do_write=True, cpu_rate=None)
            # getc: sequential per-character read (CPU-throttled).
            yield from self._phase_sequential(
                env, "getc", self.char_op_bytes,
                do_read=True, do_write=False, cpu_rate=self.getc_rate)
            # random seeks.
            yield from self._phase_seeks(env)
            self.passes += 1


def default_bonnie_memory(npages: int = 131_072) -> MemoryDirtier:
    """Bonnie++ dirties buffers steadily but has a modest WSS."""
    return MemoryDirtier(npages, wss_pages=4_000, pages_per_second=1_500.0,
                         hot_prob=0.9)
