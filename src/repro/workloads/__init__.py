"""Guest workloads used to evaluate migration (paper §VI-B).

The paper's three evaluation workloads — a dynamic web server (SPECweb
banking), a low-latency video stream server, and a diabolical I/O server
(Bonnie++) — plus a kernel build for the write-locality study and an idle
guest for overhead baselines.
"""

from .base import IdleWorkload, Workload
from .diabolical import BonniePlusPlus, default_bonnie_memory
from .iomodel import (
    AddressModel,
    FreshAppendModel,
    HotspotModel,
    MemoryDirtier,
    SequentialModel,
    UniformModel,
    ZipfModel,
)
from .kernelbuild import KernelBuild, default_kernelbuild_memory
from .streaming import VideoStreamServer, default_video_memory
from .traces import IOTrace, TraceRecorder, TraceReplay
from .webserver import SpecWebBanking, default_specweb_memory

__all__ = [
    "AddressModel",
    "BonniePlusPlus",
    "FreshAppendModel",
    "HotspotModel",
    "IOTrace",
    "IdleWorkload",
    "KernelBuild",
    "TraceRecorder",
    "TraceReplay",
    "MemoryDirtier",
    "SequentialModel",
    "SpecWebBanking",
    "UniformModel",
    "VideoStreamServer",
    "Workload",
    "ZipfModel",
    "default_bonnie_memory",
    "default_kernelbuild_memory",
    "default_specweb_memory",
    "default_video_memory",
]
