"""Linux-kernel-build workload (paper §IV-A-2 locality study).

``make`` over a kernel tree reads many small sources and writes many small
object files; the paper measured that about 11 % of its write operations
rewrite previously written blocks.  The build alternates compile bursts
(reads + object writes) with link steps (larger writes rewriting outputs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..units import KiB
from .base import Workload
from .iomodel import FreshAppendModel, MemoryDirtier, UniformModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class KernelBuild(Workload):
    """Compile-burst workload with 11 % write locality."""

    name = "kernelbuild"

    def __init__(
        self,
        seed: int = 0,
        #: Compile steps per second (one object file each).
        compiles_per_second: float = 30.0,
        #: Source-tree region read during compiles (blocks).
        source_region: tuple[int, int] = (0, 200_000),
        #: Build-output region (blocks).
        output_region: tuple[int, int] = (200_000, 100_000),
        object_blocks: int = 4,       #: ~16 KiB object files
        source_read_blocks: int = 8,  #: ~32 KiB of headers+source per step
        rewrite_prob: float = 0.11,
        tick: float = 0.1,
        memory_dirtier: MemoryDirtier | None = None,
    ) -> None:
        super().__init__(seed)
        self.compiles_per_second = compiles_per_second
        self.tick = tick
        self.reads = UniformModel(source_region[0], source_region[1],
                                  extent_blocks=source_read_blocks)
        self.writes = FreshAppendModel(output_region[0], output_region[1],
                                       extent_blocks=object_blocks,
                                       rewrite_prob=rewrite_prob)
        self.memory = memory_dirtier

    def run(self, env: "Environment") -> Generator:
        rng = self.rng
        block_size = None
        while True:
            yield from self.domain.ensure_running()
            if block_size is None:
                block_size = self.domain.vbd.block_size
            start = env.now
            nsteps = rng.poisson(self.compiles_per_second * self.tick)
            for _ in range(nsteps):
                rf, rn = self.reads.next_extent(rng)
                yield from self.read(rf, rn)
                wf, wn = self.writes.next_extent(rng)
                yield from self.write(wf, wn)
                self.account(wn * block_size)
            if self.memory is not None:
                yield from self.dirty_memory(self.memory, self.tick)
            elapsed = env.now - start
            if elapsed < self.tick:
                yield env.timeout(self.tick - elapsed)


def default_kernelbuild_memory(npages: int = 131_072) -> MemoryDirtier:
    """Compilers churn memory quickly over a moderate WSS."""
    return MemoryDirtier(npages, wss_pages=8_000, pages_per_second=4_000.0,
                         hot_prob=0.85)
