"""SPECweb2005-Banking-style dynamic web server (paper §VI-C-1, Fig. 5).

The banking workload serves dynamic pages to a fixed population of
connections.  Responses are built mostly from memory (page cache, session
state), so service throughput is largely insensitive to disk contention —
that is why the paper's Figure 5 shows no visible dip during migration.
What the disk *does* see is a steady trickle of session/log writes "in
bursts", with about 25.2 % of write operations rewriting previously
written blocks (§IV-A-2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..units import KiB, MiB
from .base import Workload
from .iomodel import FreshAppendModel, MemoryDirtier, UniformModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class SpecWebBanking(Workload):
    """Closed population of banking clients against one VM."""

    name = "specweb"

    def __init__(
        self,
        seed: int = 0,
        connections: int = 100,
        requests_per_second: float = 600.0,
        mean_response_bytes: int = 120 * KiB,
        #: Fraction of response bytes that miss the page cache and hit disk.
        disk_read_fraction: float = 0.02,
        #: Average session/log write operations per second (bursty).
        write_ops_per_second: float = 2.5,
        write_blocks_per_op: int = 4,
        rewrite_prob: float = 0.252,
        #: Disk region holding site data (blocks).
        data_region: tuple[int, int] = (0, 2_000_000),
        #: Disk region receiving session/log writes (blocks).
        log_region: tuple[int, int] = (2_000_000, 120_000),
        tick: float = 0.1,
        memory_dirtier: MemoryDirtier | None = None,
        #: Coalesce each tick's burst of session/log writes into one disk
        #: reservation.  Opt-in: changes simulated timing (one seek per
        #: burst instead of one per write), so results are not comparable
        #: with the default sequential submission.
        coalesce_writes: bool = False,
    ) -> None:
        super().__init__(seed)
        self.connections = connections
        self.requests_per_second = requests_per_second
        self.mean_response_bytes = mean_response_bytes
        self.disk_read_fraction = disk_read_fraction
        self.write_ops_per_second = write_ops_per_second
        self.write_blocks_per_op = write_blocks_per_op
        self.tick = tick
        self.reads = UniformModel(data_region[0], data_region[1],
                                  extent_blocks=16)
        self.writes = FreshAppendModel(
            log_region[0], log_region[1],
            extent_blocks=write_blocks_per_op,
            rewrite_prob=rewrite_prob)
        self.memory = memory_dirtier
        self.coalesce_writes = coalesce_writes

    def run(self, env: "Environment") -> Generator:
        rng = self.rng
        while True:
            yield from self.domain.ensure_running()
            tick_start = env.now

            # Serve this tick's requests: response bytes come from memory;
            # a small fraction misses the cache and reads the disk.
            nreq = rng.poisson(self.requests_per_second * self.tick)
            response_bytes = int(nreq * self.mean_response_bytes
                                 * rng.lognormal(0.0, 0.15))
            miss_bytes = int(response_bytes * self.disk_read_fraction)
            block_size = self.domain.vbd.block_size
            if miss_bytes > 0:
                # Uniform extents are fixed-size, so the number of misses
                # is known upfront; one batched draw replaces the per-read
                # draws without perturbing the random stream.
                ext_bytes = self.reads.extent_blocks * block_size
                nops = (miss_bytes + ext_bytes - 1) // ext_bytes
                firsts, counts = self.reads.next_extents(nops, rng)
                for i in range(nops):
                    yield from self.read(int(firsts[i]), int(counts[i]))

            # Ship the responses to the clients (NIC contention, if any).
            yield from self.serve_network(response_bytes)

            # Bursty session/log writes.
            nwrites = rng.poisson(self.write_ops_per_second * self.tick)
            if nwrites:
                firsts, counts = self.writes.next_extents(nwrites, rng)
                if self.coalesce_writes and nwrites > 1:
                    yield from self.write_batch(
                        zip(firsts.tolist(), counts.tolist()))
                else:
                    for i in range(nwrites):
                        yield from self.write(int(firsts[i]), int(counts[i]))

            if self.memory is not None:
                yield from self.dirty_memory(self.memory, self.tick)

            self.account(response_bytes)
            # Close the loop: whatever part of the tick the I/O did not
            # consume is CPU/idle time.
            elapsed = env.now - tick_start
            if elapsed < self.tick:
                yield env.timeout(self.tick - elapsed)


def default_specweb_memory(npages: int = 131_072) -> MemoryDirtier:
    """Memory dirtying typical of a busy dynamic web server on 512 MiB."""
    return MemoryDirtier(npages, wss_pages=6_000, pages_per_second=2_500.0,
                         hot_prob=0.9)
