"""Local disk storage substrate: VBDs, the physical disk model, and blkback.

This is the subsystem the paper migrates.  The
:class:`~repro.storage.vbd.VirtualBlockDevice` holds content (generation
stamps, optionally real bytes), :class:`~repro.storage.disk.PhysicalDisk`
models spindle bandwidth and contention, and
:class:`~repro.storage.blkback.BackendDriver` is the interception point
where dirty tracking and post-copy pulling happen.
"""

from .block import IOKind, IORequest, read, write
from .blkback import BackendDriver
from .disk import PhysicalDisk
from .vbd import GenerationClock, VirtualBlockDevice

__all__ = [
    "BackendDriver",
    "GenerationClock",
    "IOKind",
    "IORequest",
    "PhysicalDisk",
    "VirtualBlockDevice",
    "read",
    "write",
]
