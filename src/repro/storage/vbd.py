"""Virtual Block Device (VBD) — the migrated local disk storage.

Substitution note (see DESIGN.md §2): instead of 40 GB of real bytes, each
block carries a **write-generation stamp** — a ``uint64`` drawn from a
monotonically increasing :class:`GenerationClock` shared by every disk in an
experiment.  Two disks hold identical content for block *N* exactly when
their stamps for *N* are equal, so migration consistency checks are exact
and O(n) regardless of disk size.  An optional byte-backed mode stores real
data for small disks, letting integrity tests verify actual content
end-to-end.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConsistencyError, StorageError
from ..units import BLOCK_SIZE


class GenerationClock:
    """Issues globally unique, monotonically increasing write generations.

    Share one clock between the source and destination disks of an
    experiment (and across repeated migrations, for IM) so that stamp
    equality always means "same version of the block".
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 1) -> None:
        self._next = int(start)

    def tick(self, count: int = 1) -> int:
        """Reserve ``count`` generations; returns the first one."""
        first = self._next
        self._next += count
        return first

    @property
    def current(self) -> int:
        """The next generation that will be issued."""
        return self._next


class VirtualBlockDevice:
    """A disk image addressed in fixed-size blocks.

    Parameters
    ----------
    nblocks:
        Number of blocks on the device.
    block_size:
        Bytes per block (default 4 KiB, the paper's bit granularity).
    clock:
        Shared :class:`GenerationClock`; a private one is created if omitted.
    data:
        If True, also keep real bytes per block (small disks only) so that
        integrity tests can checksum actual content.
    """

    def __init__(
        self,
        nblocks: int,
        block_size: int = BLOCK_SIZE,
        clock: Optional[GenerationClock] = None,
        data: bool = False,
    ) -> None:
        if nblocks <= 0:
            raise StorageError(f"disk must have at least one block, got {nblocks}")
        if block_size <= 0:
            raise StorageError(f"block size must be positive, got {block_size}")
        self.nblocks = int(nblocks)
        self.block_size = int(block_size)
        self.clock = clock if clock is not None else GenerationClock()
        #: Per-block write generation; 0 = never written (all-zero content).
        self._gen = np.zeros(self.nblocks, dtype=np.uint64)
        self._data: Optional[np.ndarray] = None
        if data:
            self._data = np.zeros((self.nblocks, self.block_size), dtype=np.uint8)

    # -- geometry ----------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total device size in bytes."""
        return self.nblocks * self.block_size

    @property
    def has_data(self) -> bool:
        """True if this device stores real bytes as well as stamps."""
        return self._data is not None

    def _check_extent(self, block: int, nblocks: int) -> None:
        if nblocks < 1:
            raise StorageError(f"extent must cover >= 1 block, got {nblocks}")
        if not (0 <= block and block + nblocks <= self.nblocks):
            raise StorageError(
                f"extent [{block}, {block + nblocks}) outside device of "
                f"{self.nblocks} blocks")

    # -- guest-side I/O ------------------------------------------------------

    def write(self, block: int, nblocks: int = 1,
              payload: Optional[np.ndarray] = None) -> int:
        """Overwrite ``nblocks`` blocks from ``block``; returns first new gen.

        Each written block gets a fresh, unique generation.  In byte mode a
        deterministic pattern derived from the generation fills the block
        unless an explicit ``payload`` (shape ``(nblocks, block_size)``) is
        given.
        """
        self._check_extent(block, nblocks)
        first = self.clock.tick(nblocks)
        if self._data is None and nblocks <= 8:
            # Scalar stamp stores: ~2x cheaper than materialising an arange
            # for the short extents guest writes overwhelmingly are.
            gen = self._gen
            for i in range(nblocks):
                gen[block + i] = first + i
            return first
        self._gen[block:block + nblocks] = np.arange(
            first, first + nblocks, dtype=np.uint64)
        if self._data is not None:
            if payload is not None:
                payload = np.asarray(payload, dtype=np.uint8)
                if payload.shape != (nblocks, self.block_size):
                    raise StorageError(
                        f"payload shape {payload.shape} != "
                        f"({nblocks}, {self.block_size})")
                self._data[block:block + nblocks] = payload
            else:
                # Deterministic content derived from the generation stamp.
                gens = self._gen[block:block + nblocks, None]
                lanes = np.arange(self.block_size, dtype=np.uint64)[None, :]
                self._data[block:block + nblocks] = (
                    (gens * np.uint64(2654435761) + lanes) & np.uint64(0xFF)
                ).astype(np.uint8)
        return first

    def read(self, block: int, nblocks: int = 1) -> np.ndarray:
        """Return the generation stamps of the requested extent (a copy)."""
        self._check_extent(block, nblocks)
        return self._gen[block:block + nblocks].copy()

    def read_data(self, block: int, nblocks: int = 1) -> np.ndarray:
        """Return real bytes for the extent (byte mode only)."""
        if self._data is None:
            raise StorageError("device was created without data backing")
        self._check_extent(block, nblocks)
        return self._data[block:block + nblocks].copy()

    # -- migration-side transfer ---------------------------------------------

    def export_blocks(self, indices: np.ndarray) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Capture ``(stamps, data)`` for the given block numbers.

        This is what the source reads when it pushes or pre-copies blocks.
        """
        indices = self._check_indices(indices)
        stamps = self._gen[indices].copy()
        data = self._data[indices].copy() if self._data is not None else None
        return stamps, data

    def import_blocks(
        self,
        indices: np.ndarray,
        stamps: np.ndarray,
        data: Optional[np.ndarray] = None,
    ) -> None:
        """Install transferred blocks (the destination's disk update)."""
        indices = self._check_indices(indices)
        stamps = np.asarray(stamps, dtype=np.uint64)
        if stamps.shape != indices.shape:
            raise StorageError(
                f"stamps shape {stamps.shape} != indices shape {indices.shape}")
        self._gen[indices] = stamps
        if self._data is not None:
            if data is None:
                raise StorageError(
                    "byte-backed device requires data with imported blocks")
            self._data[indices] = np.asarray(data, dtype=np.uint8)

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        # One reduce checks both bounds: a negative int64 reinterprets as a
        # uint64 far above any valid block number.
        if indices.size and int(indices.view(np.uint64).max()) >= self.nblocks:
            raise StorageError("block indices out of device range")
        return indices

    # -- consistency ---------------------------------------------------------

    def allocated_indices(self) -> np.ndarray:
        """Blocks that have ever been written (generation > 0).

        This is the paper's "track all the writes since the Guest OS
        installation" alternative (§VII): a never-written block is all
        zeroes on any fresh device, so a guest-aware migration can skip it
        entirely.
        """
        return np.flatnonzero(self._gen != 0)

    @property
    def allocated_fraction(self) -> float:
        """Fraction of the device that has ever been written."""
        return float((self._gen != 0).mean())

    def snapshot(self) -> np.ndarray:
        """A copy of all generation stamps (for later diffing)."""
        return self._gen.copy()

    def diff_blocks(self, other: "VirtualBlockDevice") -> np.ndarray:
        """Block numbers whose content differs between the two devices."""
        self._require_same_geometry(other)
        return np.flatnonzero(self._gen != other._gen)

    def identical_to(self, other: "VirtualBlockDevice") -> bool:
        """True iff every block matches (stamps, and bytes in byte mode)."""
        self._require_same_geometry(other)
        if not np.array_equal(self._gen, other._gen):
            return False
        if self._data is not None and other._data is not None:
            return bool(np.array_equal(self._data, other._data))
        return True

    def assert_identical(self, other: "VirtualBlockDevice") -> None:
        """Raise :class:`ConsistencyError` listing mismatched blocks if any."""
        diff = self.diff_blocks(other)
        if diff.size:
            sample = diff[:10].tolist()
            raise ConsistencyError(
                f"{diff.size} blocks differ between devices; first: {sample}")
        if (self._data is not None and other._data is not None
                and not np.array_equal(self._data, other._data)):
            raise ConsistencyError("stamps match but byte contents differ")

    def checksum(self) -> int:
        """Order-sensitive content checksum (stamps; plus bytes in byte mode)."""
        acc = hash(self._gen.tobytes())
        if self._data is not None:
            acc ^= hash(self._data.tobytes())
        return acc

    def _require_same_geometry(self, other: "VirtualBlockDevice") -> None:
        if (self.nblocks, self.block_size) != (other.nblocks, other.block_size):
            raise StorageError(
                f"geometry mismatch: {self.nblocks}x{self.block_size} vs "
                f"{other.nblocks}x{other.block_size}")

    def __repr__(self) -> str:
        mode = "bytes" if self.has_data else "stamps"
        return (f"<VirtualBlockDevice {self.nblocks} x {self.block_size} B "
                f"({mode})>")
