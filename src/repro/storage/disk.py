"""Physical disk bandwidth model.

The migration process and the guest workload share one spindle; contention
between them is what produces the paper's Figure 6 (Bonnie++ throughput
depressed while migration reads the disk at a high rate) and the observation
that "disk I/O throughput is the bottleneck of the whole system" (§VI-C-3).

The model is a single-server queue: one request is serviced at a time, for
``seek_time + nbytes / bandwidth`` seconds.  Requests carry a priority so
guest I/O can be favoured over bulk migration reads if desired.  Migration
code keeps its transfers in modest chunks, so FIFO service naturally
approximates bandwidth sharing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..errors import StorageError
from ..sim import Resource, Timeout
from ..units import MiB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class PhysicalDisk:
    """A bandwidth- and seek-limited disk shared by all users of a host.

    Parameters
    ----------
    env:
        Simulation environment.
    read_bandwidth / write_bandwidth:
        Sustained sequential throughput in bytes/second.
    seek_time:
        Fixed per-operation overhead in seconds (positioning + controller).
    """

    def __init__(
        self,
        env: "Environment",
        read_bandwidth: float = 70 * MiB,
        write_bandwidth: float = 60 * MiB,
        seek_time: float = 0.5e-3,
    ) -> None:
        if read_bandwidth <= 0 or write_bandwidth <= 0:
            raise StorageError("disk bandwidth must be positive")
        if seek_time < 0:
            raise StorageError("seek time cannot be negative")
        self.env = env
        self.read_bandwidth = float(read_bandwidth)
        self.write_bandwidth = float(write_bandwidth)
        self.seek_time = float(seek_time)
        self._server = Resource(env, capacity=1)
        #: Lifetime counters.
        self.bytes_read = 0
        self.bytes_written = 0
        self.ops = 0
        self.busy_time = 0.0

    def service_time(self, nbytes: int, is_write: bool) -> float:
        """Time to service one operation of ``nbytes`` (excluding queueing)."""
        bandwidth = self.write_bandwidth if is_write else self.read_bandwidth
        return self.seek_time + nbytes / bandwidth

    def io(self, nbytes: int, is_write: bool, priority: int = 0) -> Generator:
        """Simulate one disk operation; ``yield from`` inside a process.

        Queues behind other operations (lower ``priority`` is served first)
        and then occupies the disk for the operation's service time.
        """
        if nbytes < 0:
            raise StorageError(f"negative I/O size {nbytes}")
        # try/finally rather than the context-manager form: this runs once
        # per simulated I/O and the protocol calls are pure overhead here.
        server = self._server
        grant = server.request(priority)
        try:
            yield grant
            duration = self.seek_time + nbytes / (
                self.write_bandwidth if is_write else self.read_bandwidth)
            yield Timeout(self.env, duration)
            self.busy_time += duration
        finally:
            server.release(grant)
        self.ops += 1
        if is_write:
            self.bytes_written += nbytes
        else:
            self.bytes_read += nbytes

    def read(self, nbytes: int, priority: int = 0) -> Generator:
        """Generator helper for a read of ``nbytes``."""
        return self.io(nbytes, is_write=False, priority=priority)

    def write(self, nbytes: int, priority: int = 0) -> Generator:
        """Generator helper for a write of ``nbytes``."""
        return self.io(nbytes, is_write=True, priority=priority)

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for the spindle."""
        return self._server.queue_length

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the disk spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(self.busy_time / elapsed, 1.0)

    def __repr__(self) -> str:
        return (f"<PhysicalDisk r={self.read_bandwidth / MiB:.0f} MiB/s "
                f"w={self.write_bandwidth / MiB:.0f} MiB/s>")
