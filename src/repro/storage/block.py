"""Block I/O request types.

The paper (§IV-A-3) defines an I/O request as the triple ``R<O, N, VM>``:
the operation (READ/WRITE), the operated block number, and the ID of the
domain that submitted it.  We extend it with a contiguous block count so
that multi-block requests (the common case for real workloads) are one
object, and with bookkeeping fields used by the pending-queue logic.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..errors import StorageError
from ..units import BLOCK_SIZE

_request_ids = itertools.count(1)


class IOKind(enum.Enum):
    """The operation ``O`` of the paper's request triple."""

    READ = "read"
    WRITE = "write"


@dataclass(slots=True)
class IORequest:
    """The paper's ``R<O, N, VM>`` with a block count.

    ``block`` is the first block number (``N``), ``nblocks`` the contiguous
    extent, and ``domain_id`` the submitting domain (``VM``).
    """

    kind: IOKind
    block: int
    nblocks: int = 1
    domain_id: int = 0
    block_size: int = BLOCK_SIZE
    #: Unique id, used to match pulled blocks back to pending requests.
    request_id: int = field(default_factory=_request_ids.__next__)
    #: Simulated time at which the request was submitted (set by blkback).
    issue_time: float = -1.0

    def __post_init__(self) -> None:
        if self.block < 0:
            raise StorageError(f"negative block number {self.block}")
        if self.nblocks < 1:
            raise StorageError(f"request must cover >= 1 block, got {self.nblocks}")

    @property
    def nbytes(self) -> int:
        """Bytes moved by this request."""
        return self.nblocks * self.block_size

    @property
    def last_block(self) -> int:
        """The final block number touched (inclusive)."""
        return self.block + self.nblocks - 1

    def blocks(self) -> range:
        """All block numbers covered by this request."""
        return range(self.block, self.block + self.nblocks)

    def is_write(self) -> bool:
        return self.kind is IOKind.WRITE

    def is_read(self) -> bool:
        return self.kind is IOKind.READ

    def __repr__(self) -> str:
        return (f"<IORequest #{self.request_id} {self.kind.value} "
                f"blocks[{self.block}:{self.block + self.nblocks}] "
                f"dom{self.domain_id}>")


def read(block: int, nblocks: int = 1, domain_id: int = 0,
         block_size: int = BLOCK_SIZE) -> IORequest:
    """Convenience constructor for a READ request."""
    return IORequest(IOKind.READ, block, nblocks, domain_id, block_size)


def write(block: int, nblocks: int = 1, domain_id: int = 0,
          block_size: int = BLOCK_SIZE) -> IORequest:
    """Convenience constructor for a WRITE request."""
    return IORequest(IOKind.WRITE, block, nblocks, domain_id, block_size)
