"""The backend block driver (Xen's ``blkback``), where the paper's hooks live.

In Xen's split-driver model every DomainU disk request passes through the
backend driver in Domain0.  The paper modifies ``blkback`` to (a) intercept
writes and mark dirtied blocks in the block-bitmap, and (b) during post-copy
on the destination, intercept *all* requests so reads of still-dirty blocks
can be pulled from the source.  This class is that driver for the simulated
testbed: one instance per host, fronting the host's physical disk and the
attached VBDs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional

from ..bitmap.base import BlockBitmap
from ..errors import StorageError
from .block import IOKind, IORequest
from .disk import PhysicalDisk
from .vbd import VirtualBlockDevice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment

#: An interceptor receives a request and yields sim events; it returns True
#: if it fully handled the request (timing included), False to fall through
#: to direct submission.
Interceptor = Callable[[IORequest], Generator]
#: Observers are called synchronously after a write is applied.
WriteObserver = Callable[[IORequest], None]


class BackendDriver:
    """Intercepting block backend for one host."""

    def __init__(
        self,
        env: "Environment",
        disk: PhysicalDisk,
        vbd: VirtualBlockDevice,
        tracking_op_overhead: float = 0.0,
    ) -> None:
        self.env = env
        self.disk = disk
        self.vbd = vbd
        #: Named dirty bitmaps updated on every applied write.  Multiple maps
        #: can be live at once (e.g. the pre-copy iteration map and the IM
        #: map BM_3 both track during post-copy).
        self._tracking: dict[str, BlockBitmap] = {}
        #: Post-copy hook; when set, every guest request is routed through it.
        self.interceptor: Optional[Interceptor] = None
        #: Synchronous write observers (locality analysis, throughput logs).
        self.write_observers: list[WriteObserver] = []
        #: Synchronous observers of *every* applied request (trace capture).
        self.request_observers: list[WriteObserver] = []
        #: Extra simulated latency charged per tracked write operation — the
        #: cost of marking the bitmap (Table III's overhead, normally ~0).
        self.tracking_op_overhead = float(tracking_op_overhead)
        #: Set while the host is crashed: in-flight requests are discarded
        #: instead of applied (a dead host completes no I/O), which keeps a
        #: write racing the crash from dirtying state nobody tracks.
        self.crashed = False
        #: Counters.
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: Requests submitted but not yet completed.
        self._inflight = 0
        self._drained: list = []

    # -- dirty tracking ------------------------------------------------------

    def start_tracking(self, name: str, bitmap: BlockBitmap) -> None:
        """Begin recording writes into ``bitmap`` under ``name``."""
        if bitmap.nbits != self.vbd.nblocks:
            raise StorageError(
                f"bitmap covers {bitmap.nbits} blocks but VBD has "
                f"{self.vbd.nblocks}")
        if name in self._tracking:
            raise StorageError(f"tracking bitmap {name!r} already registered")
        self._tracking[name] = bitmap

    def stop_tracking(self, name: str) -> BlockBitmap:
        """Stop recording into (and return) the named bitmap."""
        try:
            return self._tracking.pop(name)
        except KeyError:
            raise StorageError(f"no tracking bitmap named {name!r}") from None

    def swap_tracking(self, name: str, fresh: BlockBitmap) -> BlockBitmap:
        """Atomically replace the named bitmap; returns the old one.

        This is the per-iteration handoff: blkd takes the iteration's dirty
        map while blkback starts recording the next iteration into a reset
        map (paper §IV-B).
        """
        old = self.stop_tracking(name)
        self.start_tracking(name, fresh)
        return old

    def tracking_bitmap(self, name: str) -> BlockBitmap:
        try:
            return self._tracking[name]
        except KeyError:
            raise StorageError(f"no tracking bitmap named {name!r}") from None

    def has_tracking(self, name: str) -> bool:
        """True when a bitmap is registered under ``name``."""
        return name in self._tracking

    def tracking_names(self) -> list[str]:
        """Names of all registered tracking bitmaps."""
        return sorted(self._tracking)

    def drop_tracking(self) -> None:
        """Discard every tracking bitmap (a host crash loses in-memory
        state; durable stores are what recovery reads instead)."""
        self._tracking.clear()

    @property
    def is_tracking(self) -> bool:
        return bool(self._tracking)

    # -- request path ----------------------------------------------------

    def submit(self, request: IORequest) -> Generator:
        """Serve one guest request; ``yield from`` inside a process."""
        env = self.env
        request.issue_time = env.now
        self._inflight += 1
        try:
            if self.interceptor is not None:
                handled = yield from self.interceptor(request)
                if handled:
                    return
            # Inlined serve_direct(): one less generator frame on the path
            # every guest I/O takes (serve_direct stays for the post-copy
            # receiver, which performs its own timing).
            if self._tracking and request.kind is IOKind.WRITE:
                overhead = self.tracking_op_overhead
                if overhead:
                    yield env.timeout(overhead)
            yield from self.disk.io(request.nbytes,
                                    request.kind is IOKind.WRITE)
            self.apply(request)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                drained, self._drained = self._drained, []
                for event in drained:
                    event.succeed()

    def submit_coalesced(self, requests: list[IORequest]) -> Generator:
        """Serve several same-kind guest requests under ONE disk reservation.

        Opt-in fast path: the batch pays one queue slot and one seek for
        the whole run instead of one per request, which **changes simulated
        timing** relative to sequential :meth:`submit` calls — callers that
        need bit-identical results must not coalesce.  Falls back to
        sequential submission while a post-copy interceptor is installed
        (interception is defined per request) or for a single request.
        """
        if not requests:
            return
        if self.interceptor is not None or len(requests) == 1:
            for request in requests:
                yield from self.submit(request)
            return
        kind = requests[0].kind
        for request in requests[1:]:
            if request.kind is not kind:
                raise StorageError("cannot coalesce mixed read/write requests")
        env = self.env
        now = env.now
        total_bytes = 0
        for request in requests:
            request.issue_time = now
            total_bytes += request.nbytes
        self._inflight += 1
        try:
            if self._tracking and kind is IOKind.WRITE:
                overhead = self.tracking_op_overhead
                if overhead:
                    yield env.timeout(overhead * len(requests))
            yield from self.disk.io(total_bytes, kind is IOKind.WRITE)
            for request in requests:
                self.apply(request)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                drained, self._drained = self._drained, []
                for event in drained:
                    event.succeed()

    @property
    def inflight(self) -> int:
        """Guest requests currently in flight through this driver."""
        return self._inflight

    def quiesce(self) -> Generator:
        """Wait (``yield from``) until no guest request is in flight.

        The migration calls this right after suspending the domain so that
        writes already queued at the disk are applied — and tracked — before
        the final bitmap is harvested.  Real Xen drains outstanding ring
        requests the same way before saving the domain.
        """
        while self._inflight > 0:
            event = self.env.event()
            self._drained.append(event)
            yield event

    def serve_direct(self, request: IORequest) -> Generator:
        """Timed path to the physical disk, then apply the state change."""
        overhead = (self.tracking_op_overhead
                    if (self._tracking and request.kind is IOKind.WRITE) else 0.0)
        if overhead:
            yield self.env.timeout(overhead)
        yield from self.disk.io(request.nbytes, request.kind is IOKind.WRITE)
        self.apply(request)

    def apply(self, request: IORequest) -> None:
        """Apply a request's state change (no simulated time).

        Split out so the post-copy path can perform the disk timing itself
        (e.g. after a pulled block arrives) and then apply.
        """
        if self.crashed:
            return
        for observer in self.request_observers:
            observer(request)
        if request.kind is IOKind.WRITE:
            self.vbd.write(request.block, request.nblocks)
            for bitmap in self._tracking.values():
                bitmap.set_range(request.block, request.nblocks)
            for observer in self.write_observers:
                observer(request)
            self.writes += 1
            self.bytes_written += request.nbytes
        else:
            self.reads += 1
            self.bytes_read += request.nbytes

    def __repr__(self) -> str:
        hooks = "intercepted" if self.interceptor else "direct"
        return (f"<BackendDriver {hooks}, tracking={sorted(self._tracking)}, "
                f"{self.writes} writes/{self.reads} reads>")
