"""Unit tests for the PhysicalDisk bandwidth model."""

import pytest

from repro.errors import StorageError
from repro.sim import Environment
from repro.storage import PhysicalDisk
from repro.units import MiB


@pytest.fixture
def env():
    return Environment()


class TestServiceTime:
    def test_read_time(self, env):
        disk = PhysicalDisk(env, read_bandwidth=100 * MiB,
                            write_bandwidth=50 * MiB, seek_time=0.001)
        assert disk.service_time(100 * MiB, is_write=False) == pytest.approx(1.001)
        assert disk.service_time(50 * MiB, is_write=True) == pytest.approx(1.001)

    def test_invalid_parameters(self, env):
        with pytest.raises(StorageError):
            PhysicalDisk(env, read_bandwidth=0)
        with pytest.raises(StorageError):
            PhysicalDisk(env, seek_time=-1)


class TestIO:
    def test_single_read(self, env):
        disk = PhysicalDisk(env, read_bandwidth=10 * MiB,
                            write_bandwidth=10 * MiB, seek_time=0)

        def proc(env):
            yield from disk.read(10 * MiB)
            return env.now

        assert env.run(until=env.process(proc(env))) == pytest.approx(1.0)
        assert disk.bytes_read == 10 * MiB
        assert disk.ops == 1

    def test_contention_serializes(self, env):
        disk = PhysicalDisk(env, read_bandwidth=10 * MiB,
                            write_bandwidth=10 * MiB, seek_time=0)
        done = []

        def user(env, name):
            yield from disk.read(10 * MiB)
            done.append((env.now, name))

        env.process(user(env, "a"))
        env.process(user(env, "b"))
        env.run()
        assert done[0][0] == pytest.approx(1.0)
        assert done[1][0] == pytest.approx(2.0)

    def test_priority_favours_guest(self, env):
        disk = PhysicalDisk(env, read_bandwidth=10 * MiB,
                            write_bandwidth=10 * MiB, seek_time=0)
        order = []

        def bulk(env):
            # Two back-to-back bulk ops; the guest op arrives between them.
            yield from disk.read(10 * MiB, priority=5)
            order.append("bulk1")
            yield from disk.read(10 * MiB, priority=5)
            order.append("bulk2")

        def guest(env):
            yield env.timeout(0.5)
            yield from disk.read(1 * MiB, priority=0)
            order.append("guest")

        env.process(bulk(env))
        env.process(guest(env))
        env.run()
        assert order == ["bulk1", "guest", "bulk2"]

    def test_negative_size_rejected(self, env):
        disk = PhysicalDisk(env)

        def proc(env):
            yield from disk.read(-1)

        with pytest.raises(StorageError):
            env.run(until=env.process(proc(env)))

    def test_utilization(self, env):
        disk = PhysicalDisk(env, read_bandwidth=10 * MiB,
                            write_bandwidth=10 * MiB, seek_time=0)

        def proc(env):
            yield from disk.read(5 * MiB)
            yield env.timeout(0.5)

        env.run(until=env.process(proc(env)))
        assert disk.utilization(1.0) == pytest.approx(0.5)
        assert disk.utilization(0) == 0.0

    def test_write_counters(self, env):
        disk = PhysicalDisk(env, seek_time=0)

        def proc(env):
            yield from disk.write(1024)

        env.run(until=env.process(proc(env)))
        assert disk.bytes_written == 1024
        assert disk.bytes_read == 0
