"""Unit tests for the driver's in-flight accounting and quiesce."""

import pytest

from repro.sim import Environment
from repro.storage import (
    BackendDriver,
    PhysicalDisk,
    VirtualBlockDevice,
    write,
)
from repro.units import MiB


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def driver(env):
    disk = PhysicalDisk(env, 10 * MiB, 10 * MiB, seek_time=0)
    return BackendDriver(env, disk, VirtualBlockDevice(1000))


class TestInflight:
    def test_counts_during_service(self, env, driver):
        observed = []

        def guest(env):
            yield from driver.submit(write(0, 256))  # 1 MiB -> 0.1 s

        def watcher(env):
            yield env.timeout(0.05)
            observed.append(driver.inflight)
            yield env.timeout(0.1)
            observed.append(driver.inflight)

        env.process(guest(env))
        env.process(watcher(env))
        env.run()
        assert observed == [1, 0]

    def test_quiesce_waits_for_inflight(self, env, driver):
        done = {}

        def guest(env):
            yield from driver.submit(write(0, 256))

        def migrator(env):
            yield env.timeout(0.01)  # guest op is mid-flight
            yield from driver.quiesce()
            done["at"] = env.now

        env.process(guest(env))
        env.process(migrator(env))
        env.run()
        assert done["at"] == pytest.approx(0.1, abs=1e-6)

    def test_quiesce_immediate_when_idle(self, env, driver):
        def migrator(env):
            yield from driver.quiesce()
            return env.now

        assert env.run(until=env.process(migrator(env))) == 0.0

    def test_multiple_quiescers_all_released(self, env, driver):
        released = []

        def guest(env):
            yield from driver.submit(write(0, 256))

        def waiter(env, name):
            yield env.timeout(0.01)
            yield from driver.quiesce()
            released.append(name)

        env.process(guest(env))
        env.process(waiter(env, "a"))
        env.process(waiter(env, "b"))
        env.run()
        assert sorted(released) == ["a", "b"]

    def test_writes_applied_before_quiesce_returns(self, env, driver):
        """The freeze-phase guarantee: drained writes are on the VBD (and
        in the tracking bitmap) when quiesce returns."""
        from repro.bitmap import FlatBitmap

        bitmap = FlatBitmap(1000)
        driver.start_tracking("precopy", bitmap)
        state = {}

        def guest(env):
            yield from driver.submit(write(7, 256))

        def migrator(env):
            yield env.timeout(0.01)
            yield from driver.quiesce()
            state["stamp"] = int(driver.vbd.read(7)[0])
            state["tracked"] = bitmap.test(7)

        env.process(guest(env))
        env.process(migrator(env))
        env.run()
        assert state["stamp"] > 0
        assert state["tracked"]
