"""Unit tests for the BackendDriver (blkback)."""

import numpy as np
import pytest

from repro.bitmap import FlatBitmap
from repro.errors import StorageError
from repro.sim import Environment
from repro.storage import (
    BackendDriver,
    IOKind,
    PhysicalDisk,
    VirtualBlockDevice,
    read,
    write,
)
from repro.units import MiB


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def driver(env):
    disk = PhysicalDisk(env, read_bandwidth=100 * MiB,
                        write_bandwidth=100 * MiB, seek_time=0)
    vbd = VirtualBlockDevice(100)
    return BackendDriver(env, disk, vbd)


def run_request(env, driver, request):
    def proc(env):
        yield from driver.submit(request)

    env.run(until=env.process(proc(env)))


class TestDirectPath:
    def test_write_updates_vbd(self, env, driver):
        run_request(env, driver, write(5, 2))
        assert driver.vbd.read(5)[0] > 0
        assert driver.vbd.read(6)[0] > 0
        assert driver.writes == 1
        assert driver.bytes_written == 2 * 4096

    def test_read_counts(self, env, driver):
        run_request(env, driver, read(0, 4))
        assert driver.reads == 1
        assert driver.bytes_read == 4 * 4096

    def test_io_takes_disk_time(self, env, driver):
        run_request(env, driver, write(0, 100))  # 400 KiB at 100 MiB/s
        assert env.now == pytest.approx(100 * 4096 / (100 * MiB))

    def test_issue_time_recorded(self, env, driver):
        req = write(0)
        run_request(env, driver, req)
        assert req.issue_time == 0.0


class TestTracking:
    def test_writes_mark_bitmap(self, env, driver):
        bm = FlatBitmap(100)
        driver.start_tracking("precopy", bm)
        run_request(env, driver, write(10, 3))
        assert bm.dirty_indices().tolist() == [10, 11, 12]

    def test_reads_do_not_mark(self, env, driver):
        bm = FlatBitmap(100)
        driver.start_tracking("precopy", bm)
        run_request(env, driver, read(10, 3))
        assert bm.count() == 0

    def test_multiple_bitmaps_all_marked(self, env, driver):
        a, b = FlatBitmap(100), FlatBitmap(100)
        driver.start_tracking("precopy", a)
        driver.start_tracking("im", b)
        run_request(env, driver, write(7))
        assert a.test(7) and b.test(7)

    def test_swap_tracking_returns_old(self, env, driver):
        first = FlatBitmap(100)
        driver.start_tracking("precopy", first)
        run_request(env, driver, write(1))
        fresh = FlatBitmap(100)
        old = driver.swap_tracking("precopy", fresh)
        assert old is first
        assert old.test(1)
        run_request(env, driver, write(2))
        assert fresh.test(2) and not fresh.test(1)

    def test_stop_tracking(self, env, driver):
        bm = FlatBitmap(100)
        driver.start_tracking("x", bm)
        assert driver.stop_tracking("x") is bm
        assert not driver.is_tracking
        with pytest.raises(StorageError):
            driver.stop_tracking("x")

    def test_duplicate_name_rejected(self, driver):
        driver.start_tracking("x", FlatBitmap(100))
        with pytest.raises(StorageError):
            driver.start_tracking("x", FlatBitmap(100))

    def test_size_mismatch_rejected(self, driver):
        with pytest.raises(StorageError):
            driver.start_tracking("x", FlatBitmap(99))

    def test_tracking_overhead_charged(self, env):
        disk = PhysicalDisk(env, read_bandwidth=100 * MiB,
                            write_bandwidth=100 * MiB, seek_time=0)
        vbd = VirtualBlockDevice(100)
        driver = BackendDriver(env, disk, vbd, tracking_op_overhead=0.5)
        driver.start_tracking("x", FlatBitmap(100))
        run_request(env, driver, write(0))
        assert env.now > 0.5

    def test_no_overhead_without_tracking(self, env):
        disk = PhysicalDisk(env, read_bandwidth=100 * MiB,
                            write_bandwidth=100 * MiB, seek_time=0)
        driver = BackendDriver(env, disk, VirtualBlockDevice(100),
                               tracking_op_overhead=0.5)
        run_request(env, driver, write(0))
        assert env.now < 0.5


class TestInterceptor:
    def test_interceptor_can_swallow_request(self, env, driver):
        seen = []

        def interceptor(request):
            seen.append(request.block)
            yield env.timeout(0.1)
            return True  # fully handled

        driver.interceptor = interceptor
        run_request(env, driver, write(3))
        assert seen == [3]
        assert driver.vbd.read(3)[0] == 0  # write never applied

    def test_interceptor_fallthrough(self, env, driver):
        def interceptor(request):
            yield env.timeout(0)
            return False

        driver.interceptor = interceptor
        run_request(env, driver, write(3))
        assert driver.vbd.read(3)[0] > 0


class TestObservers:
    def test_write_observer_called(self, env, driver):
        log = []
        driver.write_observers.append(lambda r: log.append((r.block, r.nblocks)))
        run_request(env, driver, write(4, 2))
        run_request(env, driver, read(4, 2))
        assert log == [(4, 2)]


class TestRequestTypes:
    def test_request_validation(self):
        with pytest.raises(StorageError):
            write(-1)
        with pytest.raises(StorageError):
            write(0, 0)

    def test_request_helpers(self):
        r = read(3, 2, domain_id=7)
        assert r.kind is IOKind.READ
        assert r.is_read() and not r.is_write()
        assert r.nbytes == 8192
        assert r.last_block == 4
        assert list(r.blocks()) == [3, 4]
        assert r.domain_id == 7

    def test_request_ids_unique(self):
        assert write(0).request_id != write(0).request_id


class TestCoalesced:
    @pytest.fixture
    def seeky(self, env):
        disk = PhysicalDisk(env, read_bandwidth=100 * MiB,
                            write_bandwidth=100 * MiB, seek_time=0.01)
        return BackendDriver(env, disk, VirtualBlockDevice(100))

    def run_batch(self, env, driver, requests):
        def proc(env):
            yield from driver.submit_coalesced(requests)

        env.run(until=env.process(proc(env)))

    def test_batch_pays_one_seek(self, env, seeky):
        requests = [write(i * 4, 1) for i in range(5)]
        self.run_batch(env, seeky, requests)
        # One reservation: seek_time + total_bytes / bandwidth, not five
        # seeks.
        expected = 0.01 + 5 * 4096 / (100 * MiB)
        assert env.now == pytest.approx(expected)
        assert seeky.writes == 5
        assert all(seeky.vbd.read(i * 4)[0] > 0 for i in range(5))

    def test_sequential_costs_more(self, env, seeky):
        for i in range(5):
            run_request(env, seeky, write(i * 4, 1))
        assert env.now > 5 * 0.01  # five seeks

    def test_batch_marks_tracking_bitmap(self, env, seeky):
        bitmap = FlatBitmap(100)
        seeky.start_tracking("bm", bitmap)
        self.run_batch(env, seeky, [write(2), write(9, 3)])
        assert bitmap.test(2) and bitmap.test(9) and bitmap.test(11)
        assert bitmap.count() == 4

    def test_mixed_kinds_rejected(self, env, seeky):
        with pytest.raises(StorageError):
            self.run_batch(env, seeky, [write(0), read(1)])

    def test_single_request_equals_submit(self, env, seeky):
        self.run_batch(env, seeky, [write(7)])
        assert env.now == pytest.approx(0.01 + 4096 / (100 * MiB))
        assert seeky.vbd.read(7)[0] > 0

    def test_empty_batch_is_noop(self, env, seeky):
        self.run_batch(env, seeky, [])
        assert env.now == 0.0

    def test_interceptor_forces_sequential_fallback(self, env, seeky):
        seen = []

        def interceptor(request):
            seen.append(request.block)
            yield env.timeout(0.1)
            return True

        seeky.interceptor = interceptor
        self.run_batch(env, seeky, [write(1), write(2), write(3)])
        # Every request went through the interceptor individually.
        assert seen == [1, 2, 3]
        assert env.now == pytest.approx(0.3)

    def test_batch_drains_quiesce_waiters(self, env, seeky):
        order = []

        def batch(env):
            yield from seeky.submit_coalesced([write(0), write(4)])
            order.append("batch")

        def drain(env):
            yield env.timeout(0.001)  # let the batch start first
            yield from seeky.quiesce()
            order.append("drained")

        env.process(batch(env))
        env.process(drain(env))
        env.run()
        assert order == ["batch", "drained"]
