"""Unit tests for VirtualBlockDevice and GenerationClock."""

import numpy as np
import pytest

from repro.errors import ConsistencyError, StorageError
from repro.storage import GenerationClock, VirtualBlockDevice


class TestGenerationClock:
    def test_monotonic(self):
        clock = GenerationClock()
        a = clock.tick()
        b = clock.tick(5)
        c = clock.tick()
        assert a < b < c
        assert c == b + 5

    def test_shared_clock_keeps_stamps_unique(self):
        clock = GenerationClock()
        d1 = VirtualBlockDevice(10, clock=clock)
        d2 = VirtualBlockDevice(10, clock=clock)
        d1.write(0)
        d2.write(0)
        assert d1.read(0)[0] != d2.read(0)[0]


class TestGeometry:
    def test_nbytes(self):
        assert VirtualBlockDevice(10, block_size=4096).nbytes == 40960

    def test_invalid_geometry(self):
        with pytest.raises(StorageError):
            VirtualBlockDevice(0)
        with pytest.raises(StorageError):
            VirtualBlockDevice(10, block_size=0)

    def test_extent_checks(self):
        disk = VirtualBlockDevice(10)
        with pytest.raises(StorageError):
            disk.write(9, 2)
        with pytest.raises(StorageError):
            disk.read(-1)
        with pytest.raises(StorageError):
            disk.write(0, 0)


class TestWriteRead:
    def test_fresh_disk_is_all_zero_generation(self):
        disk = VirtualBlockDevice(5)
        assert disk.read(0, 5).tolist() == [0, 0, 0, 0, 0]

    def test_write_bumps_generation(self):
        disk = VirtualBlockDevice(5)
        disk.write(2)
        gens = disk.read(0, 5)
        assert gens[2] > 0
        assert gens[[0, 1, 3, 4]].tolist() == [0, 0, 0, 0]

    def test_rewrites_get_new_generations(self):
        disk = VirtualBlockDevice(5)
        first = disk.write(1)
        second = disk.write(1)
        assert second > first

    def test_multiblock_write_unique_stamps(self):
        disk = VirtualBlockDevice(10)
        disk.write(0, 10)
        gens = disk.read(0, 10)
        assert len(set(gens.tolist())) == 10


class TestTransfer:
    def test_export_import_roundtrip(self):
        clock = GenerationClock()
        src = VirtualBlockDevice(20, clock=clock)
        dst = VirtualBlockDevice(20, clock=clock)
        src.write(3, 5)
        idx = np.arange(20)
        stamps, data = src.export_blocks(idx)
        assert data is None
        dst.import_blocks(idx, stamps)
        assert dst.identical_to(src)

    def test_partial_import_leaves_diff(self):
        clock = GenerationClock()
        src = VirtualBlockDevice(10, clock=clock)
        dst = VirtualBlockDevice(10, clock=clock)
        src.write(0, 10)
        idx = np.arange(5)
        stamps, _ = src.export_blocks(idx)
        dst.import_blocks(idx, stamps)
        assert dst.diff_blocks(src).tolist() == [5, 6, 7, 8, 9]

    def test_import_shape_mismatch(self):
        disk = VirtualBlockDevice(10)
        with pytest.raises(StorageError):
            disk.import_blocks(np.arange(3), np.zeros(4, dtype=np.uint64))

    def test_import_out_of_range(self):
        disk = VirtualBlockDevice(10)
        with pytest.raises(StorageError):
            disk.import_blocks(np.array([10]), np.array([1], dtype=np.uint64))


class TestByteMode:
    def test_data_roundtrip(self):
        clock = GenerationClock()
        src = VirtualBlockDevice(8, block_size=64, clock=clock, data=True)
        dst = VirtualBlockDevice(8, block_size=64, clock=clock, data=True)
        src.write(1, 3)
        idx = np.arange(8)
        stamps, data = src.export_blocks(idx)
        assert data is not None
        dst.import_blocks(idx, stamps, data)
        assert dst.identical_to(src)
        assert np.array_equal(dst.read_data(1, 3), src.read_data(1, 3))

    def test_explicit_payload(self):
        disk = VirtualBlockDevice(4, block_size=16, data=True)
        payload = np.full((2, 16), 0xAB, dtype=np.uint8)
        disk.write(1, 2, payload=payload)
        assert np.array_equal(disk.read_data(1, 2), payload)

    def test_payload_shape_rejected(self):
        disk = VirtualBlockDevice(4, block_size=16, data=True)
        with pytest.raises(StorageError):
            disk.write(0, 1, payload=np.zeros((1, 8), dtype=np.uint8))

    def test_read_data_without_backing(self):
        disk = VirtualBlockDevice(4)
        with pytest.raises(StorageError):
            disk.read_data(0)

    def test_import_without_data_rejected_in_byte_mode(self):
        disk = VirtualBlockDevice(4, block_size=16, data=True)
        with pytest.raises(StorageError):
            disk.import_blocks(np.array([0]), np.array([5], dtype=np.uint64))


class TestConsistency:
    def test_assert_identical_passes(self):
        clock = GenerationClock()
        a = VirtualBlockDevice(5, clock=clock)
        b = VirtualBlockDevice(5, clock=clock)
        a.assert_identical(b)

    def test_assert_identical_reports_blocks(self):
        clock = GenerationClock()
        a = VirtualBlockDevice(5, clock=clock)
        b = VirtualBlockDevice(5, clock=clock)
        a.write(2)
        with pytest.raises(ConsistencyError, match=r"\[2\]"):
            a.assert_identical(b)

    def test_geometry_mismatch(self):
        with pytest.raises(StorageError):
            VirtualBlockDevice(5).diff_blocks(VirtualBlockDevice(6))

    def test_checksum_changes_on_write(self):
        disk = VirtualBlockDevice(5)
        before = disk.checksum()
        disk.write(0)
        assert disk.checksum() != before

    def test_snapshot_is_copy(self):
        disk = VirtualBlockDevice(5)
        snap = disk.snapshot()
        disk.write(0)
        assert snap[0] == 0
