"""Unit tests for Channel and message accounting."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.net import (
    HEADER_NBYTES,
    BitmapMsg,
    BlockDataMsg,
    Channel,
    ControlMsg,
    CPUStateMsg,
    DeltaMsg,
    Link,
    MemoryPagesMsg,
    PullRequestMsg,
    TokenBucket,
    channel_pair,
)
from repro.sim import Environment
from repro.units import MB


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def chan(env):
    return Channel(env, Link(env, bandwidth=100 * MB, latency=0.01))


class TestMessageSizes:
    def test_block_data(self):
        msg = BlockDataMsg(np.arange(10), np.arange(10), block_size=4096)
        assert msg.nblocks == 10
        assert msg.payload_nbytes == 10 * (4096 + 8)
        assert msg.wire_nbytes == msg.payload_nbytes + HEADER_NBYTES

    def test_bitmap(self):
        msg = BitmapMsg(nbits=100, dirty_indices=np.array([1]),
                        serialized_nbytes=13)
        assert msg.payload_nbytes == 13

    def test_pull_request_is_tiny(self):
        assert PullRequestMsg(5).wire_nbytes < 128

    def test_memory_pages(self):
        msg = MemoryPagesMsg(np.arange(4), np.arange(4), page_size=4096)
        assert msg.npages == 4
        assert msg.payload_nbytes == 4 * 4104

    def test_cpu_state(self):
        assert CPUStateMsg(state_nbytes=8192).payload_nbytes == 8192

    def test_delta(self):
        assert DeltaMsg(3, 2, block_size=4096).payload_nbytes == 2 * 4096 + 16

    def test_control(self):
        assert ControlMsg("go").payload_nbytes == 32
        assert ControlMsg("go", extra_nbytes=100).payload_nbytes == 132


class TestChannel:
    def test_send_recv_roundtrip(self, env, chan):
        def sender(env):
            yield from chan.send(ControlMsg("hello"), category="control")

        def receiver(env):
            msg = yield chan.recv()
            return (msg.tag, env.now)

        env.process(sender(env))
        tag, at = env.run(until=env.process(receiver(env)))
        assert tag == "hello"
        # transmit time + 10 ms latency
        expected = ControlMsg("hello").wire_nbytes / (100 * MB) + 0.01
        assert at == pytest.approx(expected)

    def test_order_preserved(self, env, chan):
        def sender(env):
            for i in range(5):
                yield from chan.send(ControlMsg(f"m{i}"), category="control")

        got = []

        def receiver(env):
            for _ in range(5):
                msg = yield chan.recv()
                got.append(msg.tag)

        env.process(sender(env))
        env.process(receiver(env))
        env.run()
        assert got == [f"m{i}" for i in range(5)]

    def test_ledger_by_category(self, env, chan):
        def sender(env):
            yield from chan.send(ControlMsg("a"), category="control")
            yield from chan.send(
                BlockDataMsg(np.arange(2), np.arange(2)), category="disk")

        env.process(sender(env))
        env.run()
        ledger = chan.ledger()
        assert set(ledger) == {"control", "disk"}
        assert chan.total_bytes == sum(ledger.values())
        assert chan.messages_sent == 2

    def test_rate_limited_send(self, env):
        link = Link(env, bandwidth=100 * MB, latency=0)
        bucket = TokenBucket(env, rate=1 * MB, burst=1)
        chan = Channel(env, link, limiter=bucket)
        msg = BlockDataMsg(np.arange(250), np.arange(250))  # ~1 MB

        def sender(env):
            yield from chan.send(msg, category="disk")
            return env.now

        # Paced by the 1 MB/s bucket, not the 100 MB/s link.
        at = env.run(until=env.process(sender(env)))
        assert at == pytest.approx(msg.wire_nbytes / (1 * MB), rel=0.01)

    def test_unlimited_flag_bypasses_bucket(self, env):
        link = Link(env, bandwidth=100 * MB, latency=0)
        bucket = TokenBucket(env, rate=1, burst=1)  # would take ~forever
        chan = Channel(env, link, limiter=bucket)

        def sender(env):
            yield from chan.send(ControlMsg("x"), category="control",
                                 limited=False)
            return env.now

        assert env.run(until=env.process(sender(env))) < 1.0

    def test_non_message_rejected(self, env, chan):
        def sender(env):
            yield from chan.send("raw string", category="x")

        with pytest.raises(NetworkError):
            env.run(until=env.process(sender(env)))

    def test_pending_count(self, env, chan):
        def sender(env):
            yield from chan.send(ControlMsg("x"), category="c")

        env.process(sender(env))
        env.run()
        assert chan.pending == 1


class TestChannelPair:
    def test_only_forward_is_limited(self, env):
        fwd_link = Link(env, bandwidth=100 * MB, latency=0)
        rev_link = Link(env, bandwidth=100 * MB, latency=0)
        bucket = TokenBucket(env, rate=1 * MB)
        fwd, rev = channel_pair(env, fwd_link, rev_link, limiter=bucket)
        assert fwd.limiter is bucket
        assert not isinstance(rev.limiter, TokenBucket)
