"""Unit and integration tests for the XBZRLE-style delta cache."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.net import BlockDataMsg, DeltaCache
from repro.net.delta import UNIT_LOCATOR_NBYTES
from repro.sim import Environment
from repro.units import KiB, MiB

BLOCK = 4 * KiB


@pytest.fixture
def env():
    return Environment()


def encode(env, cache, indices, stamps=None):
    """Run one encode() to completion; returns the stamped message."""
    indices = np.asarray(indices, dtype=np.int64)
    if stamps is None:
        stamps = np.ones_like(indices)
    msg = BlockDataMsg(indices, np.asarray(stamps), block_size=BLOCK)

    def proc(env):
        yield from cache.encode(env, msg)

    env.run(until=env.process(proc(env)))
    return msg


class TestDeltaCache:
    def test_capacity_from_bytes(self):
        cache = DeltaCache(1 * MiB, BLOCK)
        assert cache.capacity_units == 256
        # Degenerate budgets still hold at least one entry.
        assert DeltaCache(1, BLOCK).capacity_units == 1

    def test_invalid_parameters(self):
        with pytest.raises(NetworkError):
            DeltaCache(0, BLOCK)
        with pytest.raises(NetworkError):
            DeltaCache(1 * MiB, 0)
        with pytest.raises(NetworkError):
            DeltaCache(1 * MiB, BLOCK, delta_ratio=0.5)
        with pytest.raises(NetworkError):
            DeltaCache(1 * MiB, BLOCK, encode_throughput=0)

    def test_first_send_is_all_misses_at_full_size(self, env):
        cache = DeltaCache(1 * MiB, BLOCK)
        msg = encode(env, cache, np.arange(10))
        assert cache.misses == 10 and cache.hits == 0
        assert msg.encoded_nbytes == 10 * (BLOCK + UNIT_LOCATOR_NBYTES)
        assert msg.payload_nbytes == msg.encoded_nbytes
        assert cache.bytes_saved == 0
        # No hits -> the encoder scanned nothing -> no simulated time.
        assert env.now == 0.0

    def test_resend_hits_and_shrinks(self, env):
        cache = DeltaCache(1 * MiB, BLOCK, delta_ratio=8.0)
        encode(env, cache, np.arange(10))
        msg = encode(env, cache, np.arange(10), stamps=np.full(10, 2))
        assert cache.hits == 10
        delta_unit = BLOCK // 8
        assert msg.encoded_nbytes == 10 * (delta_unit + UNIT_LOCATOR_NBYTES)
        assert cache.bytes_saved == 10 * (BLOCK - delta_unit)
        assert env.now > 0.0  # hit units charge encoder CPU

    def test_lru_eviction_falls_back_to_full_send(self, env):
        # Capacity of 4 units; a working set of 8 thrashes it completely.
        cache = DeltaCache(4 * BLOCK, BLOCK)
        encode(env, cache, np.arange(8))
        assert cache.evictions == 4
        assert len(cache) == 4
        # Blocks 0..3 were evicted: re-sending them misses (full size)...
        msg = encode(env, cache, np.arange(4))
        assert cache.hits == 0
        assert msg.encoded_nbytes == 4 * (BLOCK + UNIT_LOCATOR_NBYTES)

    def test_lru_recency_order(self, env):
        cache = DeltaCache(2 * BLOCK, BLOCK)
        encode(env, cache, [1])
        encode(env, cache, [2])
        encode(env, cache, [1])  # refresh 1: now 2 is the coldest
        encode(env, cache, [3])  # evicts 2
        assert cache.hits == 1
        msg = encode(env, cache, [1])
        assert msg.encoded_nbytes < BLOCK  # 1 survived
        msg = encode(env, cache, [2])
        assert msg.encoded_nbytes > BLOCK  # 2 did not

    def test_summary_is_json_friendly(self, env):
        import json

        cache = DeltaCache(1 * MiB, BLOCK)
        encode(env, cache, np.arange(4))
        encode(env, cache, np.arange(4))
        doc = json.loads(json.dumps(cache.summary()))
        assert doc["hits"] == 4 and doc["misses"] == 4
        assert doc["bytes_saved"] > 0


class TestDeltaMigration:
    def test_rewrite_heavy_migration_ships_fewer_bytes(self, make_bed):
        """A guest re-dirtying a small region makes later iterations all
        cache hits, so the delta run moves measurably less wire data."""
        reports = {}
        for label, mb in (("plain", 0.0), ("delta", 8.0)):
            bed = make_bed()
            bed.random_writer(region=(0, 200), interval=5e-4, nblocks=4)
            report = bed.migrate(bed.config.replace(delta_cache_mb=mb))
            assert report.consistency_verified
            reports[label] = report
        assert (reports["delta"].migrated_bytes
                < reports["plain"].migrated_bytes)
        stats = reports["delta"].extra["delta_disk"]
        assert stats["hits"] > 0 and stats["bytes_saved"] > 0
        assert "delta_disk" not in reports["plain"].extra

    def test_byte_mode_content_survives_delta(self, make_bed):
        """Delta encoding changes charged wire bytes only — the simulated
        content still lands whole at the destination."""
        bed = make_bed(nblocks=256, npages=64, data=True)
        report = bed.migrate(bed.config.replace(delta_cache_mb=4.0))
        assert report.consistency_verified

    def test_off_by_default(self, make_bed):
        report = make_bed().migrate()
        assert "delta_disk" not in report.extra
        assert "delta_mem" not in report.extra
