"""Tests for multifd-style parallel sub-channels."""

import pytest

from repro.cluster.accounting import assert_conserved, audit_link_bytes
from repro.core import ThreePhaseMigration
from repro.errors import NetworkError
from repro.net import Channel, Link, MultiFD
from repro.sim import Environment
from repro.units import MB


@pytest.fixture
def env():
    return Environment()


class TestMultiFD:
    def test_requires_at_least_two_channels(self, env):
        link = Link(env, 125 * MB, 50e-6, name="wire")
        base = Channel(env, link, name="mig")
        for bad in (0, 1, -3):
            with pytest.raises(NetworkError):
                MultiFD(env, base, bad)

    def test_subchannels_share_link_limiter_compressor(self, env):
        from repro.net import Compressor, TokenBucket

        link = Link(env, 125 * MB, 50e-6, name="wire")
        base = Channel(env, link, limiter=TokenBucket(env, 10 * MB),
                       name="mig", compressor=Compressor(ratio=2.0))
        mfd = MultiFD(env, base, 4)
        assert len(mfd.channels) == 4
        for chan in mfd.channels:
            assert chan.link is link
            assert chan.limiter is base.limiter
            assert chan.compressor is base.compressor
        assert [c.name for c in mfd.channels] == [
            "mig:fd0", "mig:fd1", "mig:fd2", "mig:fd3"]

    def test_lanes_round_robin(self, env):
        link = Link(env, 125 * MB, 50e-6)
        mfd = MultiFD(env, Channel(env, link), 3)
        chunks = list(range(7))
        lanes = mfd.lanes(chunks)
        assert lanes == [[0, 3, 6], [1, 4], [2, 5]]
        # Reconstruction via the documented position formula.
        rebuilt = [None] * len(chunks)
        for lane_idx, lane in enumerate(lanes):
            for j, chunk in enumerate(lane):
                rebuilt[lane_idx + j * 3] = chunk
        assert rebuilt == chunks


class TestMultiFDMigration:
    def test_striped_migration_is_consistent(self, make_bed):
        bed = make_bed()
        bed.random_writer()
        report = bed.migrate(bed.config.replace(multifd_channels=4))
        assert report.consistency_verified
        per_channel = report.extra["multifd_bytes_by_channel"]
        assert len(per_channel) == 4
        assert all(b > 0 for b in per_channel)

    def test_single_channel_config_has_no_multifd(self, make_bed):
        report = make_bed().migrate()
        assert "multifd_channels" not in report.extra

    def test_byte_conservation_audit(self, bed):
        """Sub-channel ledgers + control channels must sum exactly to the
        shared link's wire counter (the cluster audit invariant)."""
        fwd, rev = bed.channels()
        migration = ThreePhaseMigration(
            bed.env, bed.domain, bed.source, bed.destination, fwd, rev,
            bed.config.replace(multifd_channels=4))

        def proc(env):
            return (yield from migration.run())

        report = bed.env.run(until=bed.env.process(proc(bed.env)))
        assert report.consistency_verified
        # channels includes fwd, rev, and all four sub-channels.
        assert len(migration.channels) == 6
        audits = audit_link_bytes([migration])
        assert audits and all(a.conserved for a in audits)
        assert_conserved([migration])
        # The stripes carried real traffic, not just the base channel.
        assert migration._multifd.total_bytes > 0

    def test_striped_bytes_match_unstriped(self, make_bed):
        """Striping changes scheduling, not payload: with an idle guest the
        byte total equals the single-channel run exactly."""
        totals = {}
        for label, n in (("plain", 1), ("striped", 4)):
            bed = make_bed()
            report = bed.migrate(bed.config.replace(multifd_channels=n))
            assert report.consistency_verified
            totals[label] = report.migrated_bytes
        assert totals["striped"] == totals["plain"]

    def test_byte_mode_content_survives_striping(self, make_bed):
        bed = make_bed(nblocks=256, npages=64, data=True)
        bed.random_writer(region=(0, 128), interval=1e-3, nblocks=2)
        report = bed.migrate(bed.config.replace(multifd_channels=3))
        assert report.consistency_verified
