"""Unit tests for the cluster Topology and multi-hop RoutedPath."""

import pytest

from repro.errors import MigrationError, NetworkError
from repro.net.topology import RoutedPath, Topology
from repro.sim import Environment
from repro.units import Gbps
from repro.vm import Host


@pytest.fixture
def env():
    return Environment()


def hosts(env, *names):
    return [Host(env, name) for name in names]


class TestConnect:
    def test_connect_returns_duplex(self, env):
        topo = Topology(env)
        a, b = hosts(env, "a", "b")
        link = topo.connect(a, b)
        assert topo.duplex_between(a, b) is link
        assert topo.duplex_between(b, a) is link
        assert topo.hosts == {"a": a, "b": b}

    def test_reconnect_same_parameters_returns_existing(self, env):
        topo = Topology(env)
        a, b = hosts(env, "a", "b")
        link = topo.connect(a, b, 1 * Gbps, 1e-4)
        assert topo.connect(a, b, 1 * Gbps, 1e-4) is link
        assert topo.connect(b, a, 1 * Gbps, 1e-4) is link
        assert len(topo.links) == 1

    def test_reconnect_conflicting_parameters_raises(self, env):
        topo = Topology(env)
        a, b = hosts(env, "a", "b")
        topo.connect(a, b, 1 * Gbps)
        with pytest.raises(MigrationError):
            topo.connect(a, b, 2 * Gbps)

    def test_self_connect_rejected(self, env):
        topo = Topology(env)
        (a,) = hosts(env, "a")
        with pytest.raises(MigrationError):
            topo.connect(a, a)

    def test_switch_nodes_are_not_hosts(self, env):
        topo = Topology(env)
        (a,) = hosts(env, "a")
        topo.connect(a, "switch")
        assert "switch" not in topo.hosts
        assert "a" in topo.hosts


class TestRouting:
    def test_direct_route(self, env):
        topo = Topology(env)
        a, b = hosts(env, "a", "b")
        topo.connect(a, b)
        assert topo.route(a, b) == ["a", "b"]

    def test_star_route_crosses_switch(self, env):
        topo = Topology(env)
        a, b, c = hosts(env, "a", "b", "c")
        for h in (a, b, c):
            topo.connect(h, "switch")
        assert topo.route(a, c) == ["a", "switch", "c"]

    def test_shortest_path_wins(self, env):
        topo = Topology(env)
        a, b = hosts(env, "a", "b")
        topo.connect(a, "long1")
        topo.connect("long1", "long2")
        topo.connect("long2", b)
        topo.connect(a, b)  # direct shortcut
        assert topo.route(a, b) == ["a", "b"]

    def test_tie_break_is_deterministic(self, env):
        # Diamond: a-b-d and a-c-d are both two hops; b sorts first.
        topo = Topology(env)
        a, d = hosts(env, "a", "d")
        topo.connect(a, "b")
        topo.connect(a, "c")
        topo.connect("b", d)
        topo.connect("c", d)
        assert topo.route(a, d) == ["a", "b", "d"]

    def test_no_route_raises(self, env):
        topo = Topology(env)
        a, b, c = hosts(env, "a", "b", "c")
        topo.connect(a, b)
        with pytest.raises(MigrationError):
            topo.route(a, c)

    def test_single_hop_endpoints_are_raw_links(self, env):
        topo = Topology(env)
        a, b = hosts(env, "a", "b")
        duplex = topo.connect(a, b)
        fwd, rev = topo.endpoints(a, b)
        assert fwd is duplex.forward and rev is duplex.backward
        fwd2, rev2 = topo.endpoints(b, a)
        assert fwd2 is duplex.backward and rev2 is duplex.forward

    def test_multi_hop_endpoints_are_routed_paths(self, env):
        topo = Topology(env)
        a, b = hosts(env, "a", "b")
        la = topo.connect(a, "sw")
        lb = topo.connect("sw", b)
        fwd, rev = topo.endpoints(a, b)
        assert isinstance(fwd, RoutedPath) and isinstance(rev, RoutedPath)
        assert fwd.hops == (la.forward, lb.forward)
        assert rev.hops == (lb.backward, la.backward)

    def test_duplex_links_between(self, env):
        topo = Topology(env)
        a, b = hosts(env, "a", "b")
        la = topo.connect(a, "sw")
        lb = topo.connect("sw", b)
        assert topo.duplex_links_between(a, b) == [la, lb]


class TestRoutedPath:
    def test_latency_and_bandwidth_aggregate(self, env):
        topo = Topology(env)
        a, b = hosts(env, "a", "b")
        topo.connect(a, "sw", 2 * Gbps, 1e-4)
        topo.connect("sw", b, 1 * Gbps, 3e-4)
        fwd, _ = topo.endpoints(a, b)
        assert fwd.effective_latency == pytest.approx(4e-4)
        assert fwd.bandwidth == 1 * Gbps
        assert fwd.transmission_time(1000) == pytest.approx(
            1000 / (2 * Gbps) + 1000 / (1 * Gbps))

    def test_transmit_charges_every_hop(self, env):
        topo = Topology(env)
        a, b = hosts(env, "a", "b")
        la = topo.connect(a, "sw")
        lb = topo.connect("sw", b)
        fwd, _ = topo.endpoints(a, b)

        def proc(env):
            yield from fwd.transmit(5000)

        env.run(until=env.process(proc(env)))
        assert la.forward.bytes_sent == 5000
        assert lb.forward.bytes_sent == 5000
        assert fwd.bytes_sent == 5000

    def test_empty_path_rejected(self, env):
        with pytest.raises(NetworkError):
            RoutedPath(())


class TestLookaheadCache:
    def _fabric(self, env):
        topo = Topology(env)
        a, b = hosts(env, "a", "b")
        topo.connect(a, "rack0", latency=50e-6)
        topo.connect(b, "rack1", latency=50e-6)
        topo.connect("rack0", "rack1", latency=200e-6)
        return topo

    def test_lookahead_without_fabric_raises(self, env):
        topo = Topology(env)
        a, b = hosts(env, "a", "b")
        topo.connect(a, b)
        # a<->b is host-to-host: no fabric-tier link exists.
        with pytest.raises(MigrationError):
            topo.lookahead()

    def test_lookahead_is_cached(self, env):
        topo = self._fabric(env)
        assert topo.lookahead() == pytest.approx(200e-6)
        assert topo._lookahead_cache == pytest.approx(200e-6)
        # Second call serves the cached bound.
        assert topo.lookahead() == pytest.approx(200e-6)

    def test_connect_invalidates_cache(self, env):
        topo = self._fabric(env)
        assert topo.lookahead() == pytest.approx(200e-6)
        topo.connect("rack0", "core", latency=80e-6)
        assert topo._lookahead_cache is None
        assert topo.lookahead() == pytest.approx(80e-6)

    def test_tag_invalidates_cache(self, env):
        topo = self._fabric(env)
        assert topo.lookahead() == pytest.approx(200e-6)
        # Demote rack1 to a host-tier node: the rack0<->rack1 link leaves
        # the fabric and only rack0<->core remains... none here, so the
        # recompute must raise rather than serve the stale bound.
        topo.tag("rack1", "host")
        assert topo._lookahead_cache is None
        with pytest.raises(MigrationError):
            topo.lookahead()
