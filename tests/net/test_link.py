"""Unit tests for the link model."""

import pytest

from repro.errors import NetworkError
from repro.net import DuplexLink, Link
from repro.sim import Environment
from repro.units import MB, Gbps


@pytest.fixture
def env():
    return Environment()


class TestLink:
    def test_transmission_time(self, env):
        link = Link(env, bandwidth=125 * MB, latency=0)
        assert link.transmission_time(125 * MB) == pytest.approx(1.0)

    def test_transmit_occupies_wire(self, env):
        link = Link(env, bandwidth=100 * MB, latency=0)
        done = []

        def sender(env, name, nbytes):
            yield from link.transmit(nbytes)
            done.append((env.now, name))

        env.process(sender(env, "a", 100 * MB))
        env.process(sender(env, "b", 100 * MB))
        env.run()
        assert done == [(pytest.approx(1.0), "a"), (pytest.approx(2.0), "b")]
        assert link.bytes_sent == 200 * MB

    def test_priority_preempts_queue_order(self, env):
        link = Link(env, bandwidth=100 * MB, latency=0)
        order = []

        def sender(env, name, prio, start):
            yield env.timeout(start)
            yield from link.transmit(50 * MB, priority=prio)
            order.append(name)

        env.process(sender(env, "first", 5, 0))
        env.process(sender(env, "bulk", 5, 0.1))
        env.process(sender(env, "pulled", 0, 0.2))
        env.run()
        assert order == ["first", "pulled", "bulk"]

    def test_invalid_parameters(self, env):
        with pytest.raises(NetworkError):
            Link(env, bandwidth=0)
        with pytest.raises(NetworkError):
            Link(env, latency=-1)

    def test_negative_size_rejected(self, env):
        link = Link(env)

        def proc(env):
            yield from link.transmit(-5)

        with pytest.raises(NetworkError):
            env.run(until=env.process(proc(env)))

    def test_utilization(self, env):
        link = Link(env, bandwidth=100 * MB, latency=0)

        def proc(env):
            yield from link.transmit(50 * MB)
            yield env.timeout(0.5)

        env.run(until=env.process(proc(env)))
        assert link.utilization(1.0) == pytest.approx(0.5)


class TestDuplexLink:
    def test_directions_are_independent(self, env):
        duplex = DuplexLink(env, bandwidth=100 * MB, latency=0)
        done = []

        def fwd(env):
            yield from duplex.forward.transmit(100 * MB)
            done.append(("fwd", env.now))

        def rev(env):
            yield from duplex.backward.transmit(100 * MB)
            done.append(("rev", env.now))

        env.process(fwd(env))
        env.process(rev(env))
        env.run()
        # Full duplex: both complete at t=1, not serialized.
        assert done == [("fwd", pytest.approx(1.0)), ("rev", pytest.approx(1.0))]
        assert duplex.bytes_sent == 200 * MB

    def test_default_rate_is_gigabit(self, env):
        duplex = DuplexLink(env)
        assert duplex.forward.bandwidth == pytest.approx(1 * Gbps)
