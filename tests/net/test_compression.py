"""Unit tests for the wire-compression model."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.net import (
    BlockDataMsg,
    Channel,
    Compressor,
    ControlMsg,
    Link,
)
from repro.sim import Environment
from repro.units import MB, MiB


@pytest.fixture
def env():
    return Environment()


class TestCompressor:
    def test_wire_size(self):
        comp = Compressor(ratio=4.0)
        assert comp.wire_nbytes(4096) == 1024
        assert comp.wire_nbytes(1) == 1  # never below one byte

    def test_empty_payload_costs_nothing_on_the_wire(self):
        # Regression: the one-byte floor used to apply to empty payloads
        # too, inventing a phantom wire byte per zero-length message.
        comp = Compressor(ratio=4.0)
        assert comp.wire_nbytes(0) == 0
        assert comp.wire_nbytes(1) == 1  # the floor still holds above zero

    def test_cpu_times(self):
        comp = Compressor(ratio=2.0, compress_throughput=100 * MiB,
                          decompress_throughput=200 * MiB)
        assert comp.compress_time(100 * MiB) == pytest.approx(1.0)
        assert comp.decompress_time(100 * MiB) == pytest.approx(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(NetworkError):
            Compressor(ratio=0.5)
        with pytest.raises(NetworkError):
            Compressor(compress_throughput=0)


class TestCompressedChannel:
    def make_channel(self, env, bandwidth=10 * MB, ratio=2.0):
        return Channel(env, Link(env, bandwidth, 0),
                       compressor=Compressor(ratio=ratio))

    def test_bulk_payload_shrinks_on_wire(self, env):
        chan = self.make_channel(env)
        msg = BlockDataMsg(np.arange(100), np.arange(100))  # ~400 KiB

        def sender(env):
            yield from chan.send(msg, category="disk")

        env.run(until=env.process(sender(env)))
        assert chan.total_bytes < 0.6 * msg.wire_nbytes
        assert chan.bytes_saved > 0

    def test_small_messages_not_compressed(self, env):
        chan = self.make_channel(env)

        def sender(env):
            yield from chan.send(ControlMsg("x"), category="control")

        env.run(until=env.process(sender(env)))
        assert chan.bytes_saved == 0
        assert chan.total_bytes == ControlMsg("x").wire_nbytes

    def test_faster_on_slow_link(self, env):
        """On a network-bound path, compression cuts the transfer time."""
        msg = BlockDataMsg(np.arange(2560), np.arange(2560))  # ~10 MiB
        times = {}
        for label, compressor in (("plain", None),
                                  ("compressed", Compressor(ratio=2.0))):
            e = Environment()
            chan = Channel(e, Link(e, 5 * MB, 0), compressor=compressor)

            def sender(env):
                yield from chan.send(msg, category="disk")
                return env.now

            times[label] = e.run(until=e.process(sender(e)))
        assert times["compressed"] < 0.7 * times["plain"]

    def test_delivery_stays_fifo(self, env):
        """A small uncompressed message must not overtake a big compressed
        one that is still being decompressed at the receiver."""
        chan = Channel(env, Link(env, 1000 * MB, 0),
                       compressor=Compressor(ratio=2.0,
                                             decompress_throughput=1 * MiB))
        got = []

        def sender(env):
            yield from chan.send(
                BlockDataMsg(np.arange(512), np.arange(512)),
                category="disk")
            yield from chan.send(ControlMsg("after"), category="control")

        def receiver(env):
            for _ in range(2):
                msg = yield chan.recv()
                got.append(type(msg).__name__)

        env.process(sender(env))
        env.process(receiver(env))
        env.run()
        assert got == ["BlockDataMsg", "ControlMsg"]


class TestCompressedMigration:
    def test_compression_helps_rate_limited_migration(self, make_bed):
        times = {}
        from repro.units import MB as _MB

        for label, compress in (("plain", False), ("compressed", True)):
            bed = make_bed()
            cfg = bed.config.replace(rate_limit=4 * _MB, compress=compress)
            report = bed.migrate(cfg)
            assert report.consistency_verified
            times[label] = report.total_migration_time
        assert times["compressed"] < 0.7 * times["plain"]

    def test_compression_moves_less_data(self, make_bed):
        bed = make_bed()
        cfg = bed.config.replace(compress=True)
        report = bed.migrate(cfg)
        assert report.consistency_verified
        # ~8 MiB disk + memory, compressed 2:1 on the bulk categories.
        assert report.migrated_bytes < 0.65 * (bed.vbd.nbytes
                                               + bed.domain.memory.nbytes)


class TestPerKindRatios:
    def test_ratio_for_known_and_unknown_kinds(self):
        comp = Compressor(ratio=2.0, ratios={"memory": 4.0, "disk": 1.5})
        assert comp.ratio_for("memory") == 4.0
        assert comp.ratio_for("disk") == 1.5
        assert comp.ratio_for("control") == 2.0  # falls back to the default
        assert comp.ratio_for(None) == 2.0

    def test_wire_nbytes_uses_kind(self):
        comp = Compressor(ratio=2.0, ratios={"memory": 4.0})
        assert comp.wire_nbytes(4096) == 2048
        assert comp.wire_nbytes(4096, kind="memory") == 1024
        assert comp.wire_nbytes(4096, kind="disk") == 2048

    def test_no_ratios_mapping_behaves_like_before(self):
        plain = Compressor(ratio=3.0)
        assert plain.ratios is None
        assert plain.ratio_for("memory") == 3.0
        assert plain.wire_nbytes(3000, kind="memory") == 1000

    def test_invalid_per_kind_ratio(self):
        with pytest.raises(NetworkError):
            Compressor(ratios={"memory": 0.5})

    def test_channel_applies_per_category_ratio(self, env):
        """The send category selects the compression ratio: identical
        payloads shrink differently on the memory vs disk streams."""
        comp = Compressor(ratio=2.0, ratios={"memory": 8.0, "disk": 2.0})
        chan = Channel(env, Link(env, 125 * MB, 0), compressor=comp)

        def sender(env):
            yield from chan.send(BlockDataMsg(np.arange(512),
                                              np.arange(512)),
                                 category="disk")
            yield from chan.send(BlockDataMsg(np.arange(512),
                                              np.arange(512)),
                                 category="memory")

        env.run(until=env.process(sender(env)))
        disk_bytes = chan.bytes_by_category["disk"]
        mem_bytes = chan.bytes_by_category["memory"]
        assert mem_bytes < disk_bytes
        # 8:1 vs 2:1 on the payload; headers ride uncompressed.
        assert disk_bytes / mem_bytes > 2.5

    def test_migration_with_per_kind_ratios(self, make_bed):
        """Config plumbing: compression_ratios reaches the channel, and a
        high memory ratio shrinks only the memory category."""
        reports = {}
        for label, ratios in (("flat", None), ("split", {"memory": 10.0})):
            bed = make_bed()
            cfg = bed.config.replace(compress=True,
                                     compression_ratios=ratios)
            report = bed.migrate(cfg)
            assert report.consistency_verified
            reports[label] = report
        flat = reports["flat"].bytes_by_category
        split = reports["split"].bytes_by_category
        assert split["memory"] < flat["memory"]
        assert split["disk"] == flat["disk"]
