"""Unit tests for TokenBucket and NullLimiter."""

import pytest

from repro.errors import NetworkError
from repro.net import NullLimiter, TokenBucket
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestTokenBucket:
    def test_burst_passes_immediately(self, env):
        bucket = TokenBucket(env, rate=100, burst=1000)

        def proc(env):
            yield from bucket.consume(1000)
            return env.now

        assert env.run(until=env.process(proc(env))) == 0.0

    def test_sustained_rate_paces_consumers(self, env):
        bucket = TokenBucket(env, rate=100, burst=100)

        def proc(env):
            for _ in range(5):
                yield from bucket.consume(100)
            return env.now

        # First 100 from burst, the other 400 refill at 100/s -> 4 s.
        assert env.run(until=env.process(proc(env))) == pytest.approx(4.0)

    def test_try_consume(self, env):
        bucket = TokenBucket(env, rate=10, burst=50)
        assert bucket.try_consume(50)
        assert not bucket.try_consume(1)
        assert bucket.consumed == 50

    def test_refill_caps_at_burst(self, env):
        bucket = TokenBucket(env, rate=1000, burst=10)

        def proc(env):
            yield from bucket.consume(10)
            yield env.timeout(100)  # long idle; bucket must cap at burst=10
            return bucket.available

        assert env.run(until=env.process(proc(env))) == pytest.approx(10)

    def test_queued_consumers_are_ordered(self, env):
        bucket = TokenBucket(env, rate=100, burst=0.001)
        order = []

        def consumer(env, name, nbytes):
            yield from bucket.consume(nbytes)
            order.append((name, env.now))

        env.process(consumer(env, "a", 100))
        env.process(consumer(env, "b", 100))
        env.run()
        assert order[0][0] == "a"
        assert order[1][0] == "b"
        assert order[1][1] >= order[0][1]

    def test_zero_byte_probe_succeeds_even_in_debt(self, env):
        # Regression: try_consume(0) used to report False whenever the
        # bucket was empty, even though zero bytes always fit.
        bucket = TokenBucket(env, rate=10, burst=50)
        assert bucket.try_consume(50)      # drain the bucket completely
        assert not bucket.try_consume(1)
        assert bucket.try_consume(0)
        assert bucket.consumed == 50       # the probe charged nothing

    def test_invalid_parameters(self, env):
        with pytest.raises(NetworkError):
            TokenBucket(env, rate=0)
        with pytest.raises(NetworkError):
            TokenBucket(env, rate=10, burst=0)

    def test_negative_consume_rejected(self, env):
        bucket = TokenBucket(env, rate=10)
        with pytest.raises(NetworkError):
            bucket.try_consume(-1)


class TestNullLimiter:
    def test_never_delays(self, env):
        limiter = NullLimiter()

        def proc(env):
            yield from limiter.consume(10**12)
            yield env.timeout(0)
            return env.now

        assert env.run(until=env.process(proc(env))) == 0.0
        assert limiter.consumed == 10**12

    def test_try_consume_always_true(self):
        assert NullLimiter().try_consume(10**12)
