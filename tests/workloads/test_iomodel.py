"""Unit tests for address models and the memory dirtier."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.workloads import (
    FreshAppendModel,
    HotspotModel,
    MemoryDirtier,
    SequentialModel,
    UniformModel,
    ZipfModel,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def in_region(model, extent):
    first, nblocks = extent
    return (model.region_start <= first
            and first + nblocks <= model.region_start + model.region_blocks)


class TestValidation:
    def test_empty_region_rejected(self):
        with pytest.raises(ReproError):
            UniformModel(0, 0)

    def test_extent_must_fit(self):
        with pytest.raises(ReproError):
            UniformModel(0, 4, extent_blocks=5)
        with pytest.raises(ReproError):
            UniformModel(0, 4, extent_blocks=0)


class TestSequential:
    def test_walks_in_order(self, rng):
        model = SequentialModel(100, 10, extent_blocks=2)
        extents = [model.next_extent(rng) for _ in range(5)]
        assert extents == [(100, 2), (102, 2), (104, 2), (106, 2), (108, 2)]

    def test_wraps_and_counts_passes(self, rng):
        model = SequentialModel(0, 4, extent_blocks=2)
        for _ in range(4):
            model.next_extent(rng)
        assert model.passes == 1

    def test_rewind(self, rng):
        model = SequentialModel(0, 10, extent_blocks=1)
        model.next_extent(rng)
        model.rewind()
        assert model.next_extent(rng) == (0, 1)


class TestUniform:
    def test_stays_in_region(self, rng):
        model = UniformModel(50, 20, extent_blocks=3)
        for _ in range(200):
            assert in_region(model, model.next_extent(rng))

    def test_covers_region(self, rng):
        model = UniformModel(0, 10, extent_blocks=1)
        seen = {model.next_extent(rng)[0] for _ in range(500)}
        assert seen == set(range(10))


class TestHotspot:
    def test_hot_fraction_dominates(self, rng):
        model = HotspotModel(0, 1000, hot_fraction=0.1, hot_prob=0.9)
        hits = [model.next_extent(rng)[0] for _ in range(2000)]
        hot_hits = sum(1 for h in hits if h < model.hot_blocks)
        assert hot_hits / len(hits) > 0.85

    def test_bounds(self, rng):
        model = HotspotModel(10, 100, extent_blocks=4)
        for _ in range(500):
            assert in_region(model, model.next_extent(rng))

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            HotspotModel(0, 100, hot_fraction=0)
        with pytest.raises(ReproError):
            HotspotModel(0, 100, hot_prob=1.5)


class TestZipf:
    def test_stays_in_region(self, rng):
        model = ZipfModel(100, 500, extent_blocks=3)
        for _ in range(1000):
            assert in_region(model, model.next_extent(rng))

    def test_heavy_tail_concentrates_on_few_blocks(self, rng):
        model = ZipfModel(0, 10_000, alpha=1.5)
        hits = [model.next_extent(rng)[0] for _ in range(3000)]
        from collections import Counter

        top10 = sum(c for _, c in Counter(hits).most_common(10))
        assert top10 / len(hits) > 0.5  # 10 blocks absorb most accesses

    def test_hot_blocks_are_scattered(self, rng):
        """Unlike HotspotModel, popularity is not physically clustered."""
        model = ZipfModel(0, 10_000, alpha=1.5)
        hits = [model.next_extent(rng)[0] for _ in range(2000)]
        from collections import Counter

        top = [b for b, _ in Counter(hits).most_common(5)]
        assert max(top) - min(top) > 1000

    def test_deterministic_permutation(self, rng):
        a = ZipfModel(0, 1000)
        b = ZipfModel(0, 1000)
        assert (a._rank_to_offset == b._rank_to_offset).all()

    def test_invalid_alpha(self):
        with pytest.raises(ReproError):
            ZipfModel(0, 100, alpha=1.0)


class TestFreshAppend:
    def test_rewrite_fraction_converges_to_knob(self, rng):
        model = FreshAppendModel(0, 100_000, extent_blocks=1,
                                 rewrite_prob=0.25)
        seen = set()
        rewrites = ops = 0
        for _ in range(5000):
            first, nblocks = model.next_extent(rng)
            ops += 1
            if first in seen:
                rewrites += 1
            seen.add(first)
        assert rewrites / ops == pytest.approx(0.25, abs=0.03)

    def test_first_write_is_always_fresh(self, rng):
        model = FreshAppendModel(0, 100, rewrite_prob=0.9)
        assert model.next_extent(rng) == (0, 1)

    def test_bounds(self, rng):
        model = FreshAppendModel(5, 50, extent_blocks=4, rewrite_prob=0.3)
        for _ in range(500):
            assert in_region(model, model.next_extent(rng))

    def test_invalid_rewrite_prob(self):
        with pytest.raises(ReproError):
            FreshAppendModel(0, 100, rewrite_prob=1.0)


class TestMemoryDirtier:
    def test_rate_scales_with_dt(self, rng):
        dirtier = MemoryDirtier(10_000, wss_pages=1000,
                                pages_per_second=1000.0)
        total = sum(dirtier.pages(0.1, rng).size for _ in range(100))
        assert total == pytest.approx(10_000, rel=0.15)

    def test_hot_set_dominates(self, rng):
        dirtier = MemoryDirtier(10_000, wss_pages=100,
                                pages_per_second=10_000.0, hot_prob=0.9)
        pages = dirtier.pages(1.0, rng)
        assert (pages < 100).mean() > 0.85

    def test_zero_interval(self, rng):
        dirtier = MemoryDirtier(100, wss_pages=10, pages_per_second=100.0)
        assert dirtier.pages(0.0, rng).size == 0

    def test_pages_in_range(self, rng):
        dirtier = MemoryDirtier(64, wss_pages=8, pages_per_second=5000.0,
                                hot_prob=0.5)
        pages = dirtier.pages(1.0, rng)
        assert pages.min() >= 0 and pages.max() < 64

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            MemoryDirtier(100, wss_pages=0, pages_per_second=1)
        with pytest.raises(ReproError):
            MemoryDirtier(100, wss_pages=200, pages_per_second=1)
        with pytest.raises(ReproError):
            MemoryDirtier(100, wss_pages=10, pages_per_second=-1)


MODEL_FACTORIES = [
    pytest.param(lambda: SequentialModel(100, 37, extent_blocks=4),
                 id="sequential"),
    pytest.param(lambda: UniformModel(0, 500, extent_blocks=8),
                 id="uniform"),
    pytest.param(lambda: ZipfModel(0, 300, extent_blocks=2, alpha=1.3),
                 id="zipf"),
    pytest.param(lambda: HotspotModel(10, 400, extent_blocks=4),
                 id="hotspot"),
    pytest.param(lambda: FreshAppendModel(0, 256, extent_blocks=4,
                                          rewrite_prob=0.3),
                 id="freshappend"),
]


class TestNextExtentsEquivalence:
    """Batched draws must consume the exact stream of scalar draws."""

    @pytest.mark.parametrize("make", MODEL_FACTORIES)
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_interleaved_batched_matches_scalar(self, make, seed):
        scalar_model, batch_model = make(), make()
        scalar_rng = np.random.default_rng(seed)
        batch_rng = np.random.default_rng(seed)
        scalar_draws, batch_draws = [], []
        # Mix batch sizes (including 0 and sizes spanning several wraps
        # of the sequential walk) with single draws on both sides.
        for n in [3, 0, 1, 11, 2, 40, 1]:
            for _ in range(n):
                scalar_draws.append(scalar_model.next_extent(scalar_rng))
            firsts, counts = batch_model.next_extents(n, batch_rng)
            assert firsts.dtype == np.int64 and counts.dtype == np.int64
            batch_draws.extend(zip(firsts.tolist(), counts.tolist()))
        assert scalar_draws == batch_draws
        # The random streams stay aligned: one more scalar draw from each
        # model/rng pair must still agree.
        assert (scalar_model.next_extent(scalar_rng)
                == batch_model.next_extent(batch_rng))

    def test_sequential_state_matches_scalar(self):
        scalar_model = SequentialModel(100, 37, extent_blocks=4)
        batch_model = SequentialModel(100, 37, extent_blocks=4)
        rng = np.random.default_rng(0)
        for _ in range(25):
            scalar_model.next_extent(rng)
        batch_model.next_extents(25, rng)
        assert batch_model.passes == scalar_model.passes
        assert batch_model._cursor == scalar_model._cursor

    @pytest.mark.parametrize("make", MODEL_FACTORIES)
    def test_negative_count_rejected(self, make):
        with pytest.raises(ReproError):
            make().next_extents(-1, np.random.default_rng(0))

    @pytest.mark.parametrize("make", MODEL_FACTORIES)
    def test_zero_count_draws_nothing(self, make):
        model = make()
        rng = np.random.default_rng(5)
        shadow = np.random.default_rng(5)
        firsts, counts = model.next_extents(0, rng)
        assert firsts.size == 0 and counts.size == 0
        # No randomness was consumed.
        assert rng.integers(0, 1 << 30) == shadow.integers(0, 1 << 30)
