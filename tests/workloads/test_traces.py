"""Unit tests for I/O trace capture and replay."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.workloads import IOTrace, KernelBuild, TraceRecorder, TraceReplay
from repro.workloads.traces import KIND_READ, KIND_WRITE


def make_trace():
    return IOTrace.from_lists([
        (0.0, KIND_WRITE, 10, 2),
        (0.5, KIND_READ, 10, 2),
        (1.0, KIND_WRITE, 10, 1),   # rewrite
        (1.5, KIND_WRITE, 50, 4),
    ])


class TestIOTrace:
    def test_columns_and_len(self):
        trace = make_trace()
        assert len(trace) == 4
        assert trace.duration == pytest.approx(1.5)

    def test_byte_accounting(self):
        trace = make_trace()
        assert trace.write_bytes == (2 + 1 + 4) * 4096
        assert trace.read_bytes == 2 * 4096

    def test_rewrite_fraction(self):
        assert make_trace().rewrite_fraction() == pytest.approx(1 / 3)

    def test_empty_trace(self):
        trace = IOTrace.from_lists([])
        assert len(trace) == 0
        assert trace.duration == 0.0
        assert trace.rewrite_fraction() == 0.0

    def test_shifted(self):
        shifted = make_trace().shifted(10.0)
        assert shifted.times[0] == pytest.approx(10.0)
        assert shifted.duration == pytest.approx(1.5)

    def test_non_monotonic_rejected(self):
        with pytest.raises(ReproError):
            IOTrace.from_lists([(1.0, KIND_READ, 0, 1),
                                (0.5, KIND_READ, 0, 1)])

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            IOTrace(np.zeros(2), np.zeros(3, np.uint8),
                    np.zeros(2, np.int64), np.zeros(2, np.int32))

    def test_save_load_roundtrip(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = IOTrace.load(path)
        assert np.array_equal(loaded.times, trace.times)
        assert np.array_equal(loaded.blocks, trace.blocks)
        assert loaded.rewrite_fraction() == trace.rewrite_fraction()


class TestRecorder:
    def test_captures_live_workload(self, bed):
        driver = bed.source.driver_of(bed.domain.domain_id)
        recorder = TraceRecorder(bed.env, driver)
        wl = KernelBuild(seed=3, source_region=(0, 500),
                         output_region=(500, 300))
        wl.bind(bed.domain, bed.timeline)
        wl.start(bed.env)
        bed.env.run(until=3.0)
        wl.stop()
        bed.env.run(until=3.1)
        trace = recorder.trace()
        assert len(trace) == driver.reads + driver.writes
        assert trace.write_bytes == driver.bytes_written
        assert trace.read_bytes == driver.bytes_read

    def test_clear(self, bed):
        driver = bed.source.driver_of(bed.domain.domain_id)
        recorder = TraceRecorder(bed.env, driver)

        def guest(env):
            yield from bed.domain.write(1)

        bed.env.run(until=bed.env.process(guest(bed.env)))
        assert len(recorder) == 1
        recorder.clear()
        assert len(recorder.trace()) == 0


class TestReplay:
    def test_replay_reproduces_footprint(self, make_bed):
        # Record a run on one testbed...
        origin = make_bed()
        driver = origin.source.driver_of(origin.domain.domain_id)
        recorder = TraceRecorder(origin.env, driver)
        wl = KernelBuild(seed=3, source_region=(0, 500),
                         output_region=(500, 300))
        wl.bind(origin.domain, origin.timeline)
        wl.start(origin.env)
        origin.env.run(until=3.0)
        wl.stop()
        origin.env.run(until=3.1)
        trace = recorder.trace()

        # ...replay it on a fresh one: same requests hit the driver.
        target = make_bed()
        replay = TraceReplay(trace)
        replay.bind(target.domain, target.timeline)
        replay.start(target.env)
        target.env.run(until=10.0)
        tdriver = target.source.driver_of(target.domain.domain_id)
        assert replay.passes == 1
        assert tdriver.writes + tdriver.reads == len(trace)
        assert tdriver.bytes_written == trace.write_bytes

    def test_time_scale_speeds_up(self, make_bed):
        trace = make_trace()
        done = {}
        for scale_label, ts in (("slow", 1.0), ("fast", 3.0)):
            bed = make_bed()
            replay = TraceReplay(trace, time_scale=ts)
            replay.bind(bed.domain, bed.timeline)
            proc = replay.start(bed.env)
            bed.env.run(until=proc)
            done[scale_label] = bed.env.now
        assert done["fast"] < done["slow"]

    def test_loop_mode(self, make_bed):
        bed = make_bed()
        replay = TraceReplay(make_trace(), loop=True, time_scale=10.0)
        replay.bind(bed.domain, bed.timeline)
        replay.start(bed.env)
        bed.env.run(until=2.0)
        assert replay.passes >= 2
        replay.stop()
        bed.env.run(until=2.1)

    def test_replay_survives_migration(self, make_bed):
        """A replayed trace keeps running across a live migration."""
        bed = make_bed()
        replay = TraceReplay(make_trace(), loop=True, time_scale=5.0)
        replay.bind(bed.domain, bed.timeline)
        replay.start(bed.env)
        bed.env.run(until=0.5)
        report = bed.migrate()
        assert report.consistency_verified
        replay.stop()
        bed.env.run(until=bed.env.now + 0.1)

    def test_invalid_time_scale(self):
        with pytest.raises(ReproError):
            TraceReplay(make_trace(), time_scale=0)
