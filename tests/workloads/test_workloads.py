"""Unit tests for the concrete guest workloads."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.sim import Environment, Timeline
from repro.workloads import (
    BonniePlusPlus,
    IdleWorkload,
    KernelBuild,
    MemoryDirtier,
    SpecWebBanking,
    VideoStreamServer,
)


def attach(bed, workload):
    workload.bind(bed.domain, bed.timeline)
    workload.start(bed.env)
    return workload


class TestFramework:
    def test_unbound_start_rejected(self, bed):
        wl = IdleWorkload()
        with pytest.raises(ReproError):
            wl.start(bed.env)

    def test_stop_interrupts_cleanly(self, bed):
        wl = attach(bed, IdleWorkload(tick=0.1))
        bed.env.run(until=1.0)
        wl.stop()
        bed.env.run()
        assert not wl.process.is_alive

    def test_account_updates_counters_and_timeline(self, bed):
        wl = IdleWorkload()
        wl.bind(bed.domain, bed.timeline)
        wl.account(1000)
        assert wl.ops == 1
        assert wl.bytes_processed == 1000
        assert bed.timeline.total("idle:throughput") == 1000

    def test_mean_throughput(self, bed):
        wl = IdleWorkload()
        wl.bind(bed.domain, bed.timeline)
        bed.timeline.record_at("idle:throughput", 0.5, 100)
        bed.timeline.record_at("idle:throughput", 1.5, 300)
        assert wl.mean_throughput(0, 2) == pytest.approx(200.0)
        assert wl.mean_throughput(2, 2) == 0.0


class TestSpecWeb:
    def make(self, bed, **kw):
        defaults = dict(seed=3,
                        data_region=(0, 1000),
                        log_region=(1000, 200),
                        memory_dirtier=MemoryDirtier(
                            bed.domain.memory.npages, 64, 200.0))
        defaults.update(kw)
        return attach(bed, SpecWebBanking(**defaults))

    def test_produces_throughput_and_writes(self, bed):
        wl = self.make(bed)
        bed.env.run(until=5.0)
        assert wl.bytes_processed > 0
        driver = bed.source.driver_of(bed.domain.domain_id)
        assert driver.writes > 0
        assert driver.reads > 0

    def test_writes_confined_to_regions(self, bed):
        seen = []
        driver = bed.source.driver_of(bed.domain.domain_id)
        driver.write_observers.append(lambda r: seen.append(r.block))
        self.make(bed)
        bed.env.run(until=5.0)
        assert seen
        assert all(1000 <= b < 1200 for b in seen)

    def test_survives_suspend_resume(self, bed):
        wl = self.make(bed)
        bed.env.run(until=2.0)
        bed.domain.suspend()
        bed.env.run(until=3.0)
        ops_frozen = wl.ops
        bed.env.run(until=3.5)
        assert wl.ops == ops_frozen  # nothing while suspended
        bed.domain.resume()
        bed.env.run(until=5.0)
        assert wl.ops > ops_frozen


class TestVideo:
    def make(self, bed, **kw):
        defaults = dict(seed=3, video_region=(0, 512),
                        log_region=(1500, 32), log_interval=0.5)
        defaults.update(kw)
        return attach(bed, VideoStreamServer(**defaults))

    def test_streams_at_configured_rate(self, bed):
        wl = self.make(bed)
        bed.env.run(until=20.0)
        achieved = wl.bytes_processed / 20.0
        assert achieved == pytest.approx(wl.stream_rate, rel=0.15)

    def test_records_read_latency(self, bed):
        wl = self.make(bed)
        bed.env.run(until=10.0)
        times, values = bed.timeline.series("video:read_latency")
        assert times.size > 0
        assert (values >= 0).all()

    def test_no_stalls_on_idle_disk(self, bed):
        wl = self.make(bed)
        bed.env.run(until=20.0)
        assert wl.stalls == 0

    def test_log_writes_happen(self, bed):
        self.make(bed)
        bed.env.run(until=10.0)
        assert bed.source.driver_of(bed.domain.domain_id).writes > 0


class TestBonnie:
    def make(self, bed, **kw):
        defaults = dict(seed=3, file_region=(0, 512), seeks_per_pass=50)
        defaults.update(kw)
        return attach(bed, BonniePlusPlus(**defaults))

    def test_cycles_through_phases(self, bed):
        wl = self.make(bed)
        bed.env.run(until=30.0)
        for series in ("putc", "write", "rewrite", "getc", "seeks"):
            assert bed.timeline.total(f"bonnie:{series}") > 0, series
        assert wl.passes >= 1

    def test_saturates_disk(self, bed):
        self.make(bed)
        bed.env.run(until=10.0)
        disk = bed.source.disk
        assert disk.utilization(10.0) > 0.5

    def test_putc_respects_cpu_cap(self, bed):
        from repro.units import MiB

        wl = self.make(bed, putc_rate=5 * MiB,
                       file_region=(0, 1280))  # 5 MiB file
        bed.env.run(until=1.0)
        putc_bytes = bed.timeline.total("bonnie:putc")
        assert putc_bytes <= 5 * MiB * 1.2


class TestKernelBuild:
    def test_reads_and_writes(self, bed):
        wl = attach(bed, KernelBuild(seed=3, source_region=(0, 500),
                                     output_region=(500, 300)))
        bed.env.run(until=5.0)
        driver = bed.source.driver_of(bed.domain.domain_id)
        assert driver.writes > 0 and driver.reads > 0
        assert wl.bytes_processed > 0


class TestCoalescedWrites:
    def make(self, bed, **kw):
        defaults = dict(seed=3,
                        data_region=(0, 1000),
                        log_region=(1000, 200),
                        write_ops_per_second=40.0)
        defaults.update(kw)
        return attach(bed, SpecWebBanking(**defaults))

    def test_off_by_default(self, bed):
        wl = self.make(bed)
        assert wl.coalesce_writes is False

    def test_coalesced_run_still_writes_the_log(self, bed):
        seen = []
        driver = bed.source.driver_of(bed.domain.domain_id)
        driver.write_observers.append(lambda r: seen.append(r.block))
        self.make(bed, coalesce_writes=True)
        bed.env.run(until=5.0)
        assert seen
        assert all(1000 <= b < 1200 for b in seen)

    def test_coalescing_saves_disk_time(self, make_bed):
        # Same seed, same draws: the coalesced run pays one seek per
        # write burst, so the disk accumulates less busy time.
        bed = make_bed()
        self.make(bed)
        bed.env.run(until=5.0)
        plain_busy = bed.source.disk.busy_time

        bed2 = make_bed()
        wl = self.make(bed2, coalesce_writes=True)
        bed2.env.run(until=5.0)
        assert wl.ops > 0
        assert bed2.source.disk.busy_time <= plain_busy
