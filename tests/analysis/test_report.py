"""Unit tests for table rendering."""

from repro.analysis import format_table, paper_vs_measured


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.0], ["b", 123456.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        assert "123,456" in lines[3]

    def test_title(self):
        text = format_table(["a"], [[1]], title="Table I")
        assert text.splitlines()[0] == "Table I"
        assert text.splitlines()[1] == "======="

    def test_float_precision_tiers(self):
        text = format_table(["v"], [[0.123456], [12.3456], [1234.56]])
        assert "0.123" in text
        assert "12.3" in text
        assert "1,235" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_numbers_right_aligned(self):
        text = format_table(["n"], [[1], [100]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")


class TestPaperVsMeasured:
    def test_three_columns(self):
        text = paper_vs_measured("Table I", [("downtime (ms)", 60, 42.5)])
        assert "paper" in text
        assert "measured" in text
        assert "60" in text and "42.5" in text
