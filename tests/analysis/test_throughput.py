"""Unit tests for throughput-derived metrics."""

import pytest

from repro.analysis import (
    disruption_time,
    mean_rate,
    performance_overhead,
    stall_free,
)
from repro.sim import Environment, Timeline


@pytest.fixture
def timeline():
    tl = Timeline(Environment())
    # 100 B/s for t in [0, 10), then degraded 40 B/s for [10, 20),
    # then recovered for [20, 30).
    for t in range(10):
        tl.record_at("x", t + 0.5, 100)
    for t in range(10, 20):
        tl.record_at("x", t + 0.5, 40)
    for t in range(20, 30):
        tl.record_at("x", t + 0.5, 100)
    return tl


class TestMeanRate:
    def test_windowed(self, timeline):
        assert mean_rate(timeline, "x", 0, 10) == pytest.approx(100.0)
        assert mean_rate(timeline, "x", 10, 20) == pytest.approx(40.0)

    def test_empty_series(self, timeline):
        assert mean_rate(timeline, "missing", 0, 10) == 0.0

    def test_degenerate_window(self, timeline):
        assert mean_rate(timeline, "x", 5, 5) == 0.0


class TestOverhead:
    def test_overhead_fraction(self, timeline):
        result = performance_overhead(timeline, "x",
                                      migration_window=(10, 20),
                                      baseline_window=(0, 10))
        assert result.relative_throughput == pytest.approx(0.4)
        assert result.overhead_fraction == pytest.approx(0.6)

    def test_no_impact(self, timeline):
        result = performance_overhead(timeline, "x",
                                      migration_window=(20, 30),
                                      baseline_window=(0, 10))
        assert result.overhead_fraction == pytest.approx(0.0)

    def test_zero_baseline(self, timeline):
        result = performance_overhead(timeline, "missing", (0, 1), (1, 2))
        assert result.relative_throughput == 1.0


class TestDisruption:
    def test_counts_degraded_seconds(self, timeline):
        degraded = disruption_time(timeline, "x", window=(0, 30),
                                   baseline_rate=100.0, threshold=0.9)
        assert degraded == pytest.approx(10.0)

    def test_no_disruption(self, timeline):
        assert disruption_time(timeline, "x", window=(0, 10),
                               baseline_rate=100.0) == 0.0

    def test_empty_series_counts_whole_window(self, timeline):
        assert disruption_time(timeline, "missing", window=(0, 5),
                               baseline_rate=100.0) == 5.0

    def test_zero_baseline(self, timeline):
        assert disruption_time(timeline, "x", (0, 10), 0.0) == 0.0


class TestStallFree:
    def test_all_below_threshold(self, timeline):
        assert stall_free(timeline, "x", (0, 30), threshold=200)

    def test_spike_detected(self, timeline):
        timeline.record_at("x", 15.0, 500)
        assert not stall_free(timeline, "x", (0, 30), threshold=200)

    def test_empty_series_is_stall_free(self, timeline):
        assert stall_free(timeline, "missing", (0, 30), threshold=1)
