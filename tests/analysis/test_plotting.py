"""Unit tests for ASCII plotting helpers."""

import numpy as np
import pytest

from repro.analysis import ascii_timeseries, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert len(line) == 5
        assert line[-1] == "█"
        assert line[0] == " "

    def test_flat_zero(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_explicit_vmax_scales(self):
        half = sparkline([5], vmax=10)
        full = sparkline([5], vmax=5)
        assert full == "█"
        assert half != "█"


class TestAsciiTimeseries:
    def test_no_data(self):
        out = ascii_timeseries(np.empty(0), np.empty(0), title="t")
        assert "(no data)" in out

    def test_dimensions(self):
        t = np.linspace(0, 10, 50)
        v = np.sin(t) + 1.5
        out = ascii_timeseries(t, v, width=40, height=6, title="curve")
        lines = out.splitlines()
        assert lines[0] == "curve"
        plot_lines = [l for l in lines if "│" in l or "┤" in l]
        assert len(plot_lines) == 6

    def test_marks_drawn_and_legend(self):
        t = np.linspace(0, 100, 200)
        v = np.ones_like(t)
        out = ascii_timeseries(t, v, width=50, height=4,
                               marks={"start": 25.0})
        assert "|" in out
        assert "| = start" in out

    def test_step_shape_visible(self):
        """A throughput dip must produce visibly lower columns."""
        t = np.linspace(0, 90, 300)
        v = np.where((t > 30) & (t < 60), 10.0, 100.0)
        out = ascii_timeseries(t, v, width=60, height=8)
        top_row = [l for l in out.splitlines() if "┤" in l][0]
        body = top_row.split("┤", 1)[1]
        # The top row is filled at the edges and empty in the dip.
        third = len(body) // 3
        assert "█" in body[:third]
        assert "█" not in body[third + 2:2 * third - 2]

    def test_axis_labels(self):
        t = np.array([0.0, 50.0])
        v = np.array([1.0, 2.0])
        out = ascii_timeseries(t, v, xlabel="seconds", ylabel="MB/s")
        assert "seconds" in out
        assert "y: MB/s" in out
