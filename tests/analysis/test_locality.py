"""Unit tests for the write-locality tracker."""

import pytest

from repro.analysis import WriteLocalityTracker, attach_tracker
from repro.storage import write


class TestTracker:
    def test_all_fresh_writes(self):
        tracker = WriteLocalityTracker(100)
        for b in range(10):
            tracker(write(b))
        stats = tracker.stats()
        assert stats.write_ops == 10
        assert stats.rewrite_ops == 0
        assert stats.op_rewrite_fraction == 0.0

    def test_rewrites_counted(self):
        tracker = WriteLocalityTracker(100)
        tracker(write(5))
        tracker(write(5))
        tracker(write(6))
        stats = tracker.stats()
        assert stats.write_ops == 3
        assert stats.rewrite_ops == 1
        assert stats.op_rewrite_fraction == pytest.approx(1 / 3)

    def test_partial_overlap_is_a_rewrite_op(self):
        tracker = WriteLocalityTracker(100)
        tracker(write(0, 4))
        tracker(write(3, 4))  # block 3 overlaps
        stats = tracker.stats()
        assert stats.rewrite_ops == 1
        assert stats.blocks_rewritten == 1
        assert stats.blocks_written == 8

    def test_block_level_fraction(self):
        tracker = WriteLocalityTracker(100)
        tracker(write(0, 4))
        tracker(write(0, 4))
        stats = tracker.stats()
        assert stats.block_rewrite_fraction == pytest.approx(0.5)
        assert stats.delta_redundancy_blocks == 4

    def test_reset_full(self):
        tracker = WriteLocalityTracker(100)
        tracker(write(1))
        tracker.reset()
        tracker(write(1))
        assert tracker.stats().rewrite_ops == 0

    def test_reset_counters_only_keeps_history(self):
        tracker = WriteLocalityTracker(100)
        tracker(write(1))
        tracker.reset(counters_only=True)
        tracker(write(1))
        stats = tracker.stats()
        assert stats.write_ops == 1
        assert stats.rewrite_ops == 1  # history remembered block 1

    def test_empty_stats(self):
        stats = WriteLocalityTracker(10).stats()
        assert stats.op_rewrite_fraction == 0.0
        assert stats.block_rewrite_fraction == 0.0


class TestAttach:
    def test_attach_observes_driver_writes(self, bed):
        driver = bed.source.driver_of(bed.domain.domain_id)
        tracker = attach_tracker(driver)

        def guest(env):
            yield from bed.domain.write(3)
            yield from bed.domain.write(3)

        bed.env.run(until=bed.env.process(guest(bed.env)))
        assert tracker.stats().write_ops == 2
        assert tracker.stats().rewrite_ops == 1
